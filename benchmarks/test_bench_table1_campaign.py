"""Table 1: dataset statistics of a miniature measurement campaign."""

from conftest import emit

from repro.experiments import format_table, run_table1_campaign


def test_table1_campaign(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1_campaign(
            speedtest_repetitions=2, walking_traces_per_setting=1, web_loads=600
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit("Table 1: dataset statistics", format_table(["Statistic", "Value"], rows))
    stats = result["stats"]
    benchmark.extra_info["speedtests"] = stats.speedtest_count
    benchmark.extra_info["km_walked"] = stats.km_walked

    assert stats.speedtest_count > 0
    assert stats.unique_servers > 1
    assert stats.km_walked > 0
    assert stats.web_page_loads == 600
    assert stats.devices == 3
