"""Fig. 10/25: RRC state inference sweeps for all six configurations.

Paper shape: a low-RTT connected plateau up to the ~10.4 s tail, an
intermediate RRC_INACTIVE plateau only on T-Mobile SA (~10-15 s), then
a high-RTT idle region whose floor is the promotion delay.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_rrc_inference


def test_fig10_rrc_inference(benchmark):
    result = benchmark.pedantic(
        lambda: run_rrc_inference(packets_per_interval=25, seed=1),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit(
        "Fig. 10/25 + Table 7 check: inferred vs configured RRC timers",
        format_table(
            ["network", "apparent tail", "tail inf", "promo true", "promo inf", "INACTIVE?"],
            [
                (
                    r["network"],
                    r["apparent_tail_ms"],
                    round(r["inferred_inactivity_ms"], 0),
                    r["true_promotion_ms"],
                    round(r["inferred_promotion_ms"], 0),
                    "yes" if r["inactive_detected"] else "no",
                )
                for r in rows
            ],
        ),
    )

    by_net = {r["network"]: r for r in rows}
    # Only SA shows RRC_INACTIVE.
    for key, row in by_net.items():
        assert row["inactive_detected"] == (key == "tmobile-sa-lowband")
    # Apparent tails recovered within the 1 s probing resolution (on NSA
    # low-band the apparent tail is the secondary/bracketed timer).
    for row in rows:
        assert abs(row["inferred_inactivity_ms"] - row["apparent_tail_ms"]) <= 1100.0
        assert row["inferred_promotion_ms"] == np.clip(
            row["inferred_promotion_ms"],
            row["true_promotion_ms"] * 0.7,
            row["true_promotion_ms"] * 1.3,
        )

    # Fig. 10's visual: median RTT at 16 s interval far above 2 s interval.
    sweep = result["sweeps"]["verizon-nsa-mmwave"]
    medians = sweep.median_rtt_by_interval()
    benchmark.extra_info["idle_rtt_ms"] = round(medians[max(medians)], 0)
    assert medians[max(medians)] > medians[min(medians)] + 1000.0
