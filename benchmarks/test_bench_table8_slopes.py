"""Table 8: slopes of the throughput-power curves.

Paper values (mW/Mbps): S10 4G 13.38/57.99, S10 mmWave 2.06/5.27,
S20U 4G 14.55/80.21, S20U LB-5G 13.52/29.15, S20U mmWave 1.81/9.42;
uplink slopes 2.2-5.9x the downlink slopes.
"""

from conftest import emit

from repro.experiments import format_table, run_throughput_power

PAPER_SLOPES = {
    ("S20U", "verizon-lte"): (14.55, 80.21),
    ("S20U", "verizon-nsa-lowband"): (13.52, 29.15),
    ("S20U", "verizon-nsa-mmwave"): (1.81, 9.42),
    ("S10", "verizon-lte"): (13.38, 57.99),
    ("S10", "verizon-nsa-mmwave"): (2.06, 5.27),
}


def test_table8_slopes(benchmark):
    def run():
        out = {}
        for device in ("S20U", "S10"):
            keys = [k for (d, k) in PAPER_SLOPES if d == device]
            out[device] = run_throughput_power(
                device_name=device, network_keys=keys, n_points=10, duration_s=5.0, seed=1
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (device, key), (paper_dl, paper_ul) in PAPER_SLOPES.items():
        sweep = results[device]["sweeps"][key]
        rows.append(
            (
                device,
                key,
                paper_dl,
                round(sweep["dl"]["slope"], 2),
                paper_ul,
                round(sweep["ul"]["slope"], 2),
            )
        )
    emit(
        "Table 8: throughput-power slopes (paper vs measured)",
        format_table(["device", "network", "DL paper", "DL meas", "UL paper", "UL meas"], rows),
    )

    for (device, key), (paper_dl, paper_ul) in PAPER_SLOPES.items():
        sweep = results[device]["sweeps"][key]
        measured_dl = sweep["dl"]["slope"]
        measured_ul = sweep["ul"]["slope"]
        assert abs(measured_dl - paper_dl) / paper_dl < 0.35, (device, key)
        assert abs(measured_ul - paper_ul) / paper_ul < 0.35, (device, key)
        # Uplink steeper than downlink (Appendix A.4: 2.2-5.9x).
        assert measured_ul > 1.5 * measured_dl, (device, key)
