"""Fig. 3/4: Verizon mmWave downlink/uplink vs UE-server distance.

Paper shape: multi-connection downlink stays >3 Gbps across all US
servers; single-connection decays with distance; uplink ~220 Mbps in
both modes.
"""

from conftest import emit

from repro.experiments import format_table, run_throughput_vs_distance


def test_fig3_fig4_verizon_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_throughput_vs_distance(
            network_key="verizon-nsa-mmwave",
            device_name="S20U",
            n_servers=10,
            repetitions=8,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit(
        "Fig. 3/4: [Verizon mmWave] p95 throughput vs distance",
        format_table(
            ["server", "km", "rtt", "DL multi", "DL single", "UL multi", "UL single"],
            [
                (
                    r["server"],
                    round(r["distance_km"], 0),
                    round(r["rtt_ms"], 1),
                    round(r["dl_multi_mbps"], 0),
                    round(r["dl_single_mbps"], 0),
                    round(r["ul_multi_mbps"], 0),
                    round(r["ul_single_mbps"], 0),
                )
                for r in rows
            ],
        ),
    )
    benchmark.extra_info["dl_multi_home"] = round(rows[0]["dl_multi_mbps"], 0)

    # Multi-connection >2.8 Gbps at every distance (paper: >3 Gbps).
    assert all(r["dl_multi_mbps"] > 2800.0 for r in rows)
    # Single connection decays: far < near.
    near = rows[0]["dl_single_mbps"]
    far = rows[-1]["dl_single_mbps"]
    assert far < near
    # Uplink ~220 Mbps in both modes.
    assert all(180.0 < r["ul_multi_mbps"] <= 225.0 for r in rows)
