"""Table 7: full RRC parameter recovery by RRC-Probe.

Checks every timer column the probe can observe: UE-inactivity, Long
DRX, idle DRX, and promotion delay, for all six configurations.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table
from repro.rrc.parameters import RRC_PARAMETERS
from repro.rrc.probe import RRCProbe


def test_table7_parameters(benchmark):
    def run():
        results = {}
        for key, params in RRC_PARAMETERS.items():
            probe = RRCProbe(params, seed=5)
            sweep = probe.sweep(np.arange(1.0, 25.0, 1.0), packets_per_interval=30)
            results[key] = sweep.inferred
        return results

    inferred = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for key, params in RRC_PARAMETERS.items():
        inf = inferred[key]
        rows.append(
            (
                key,
                params.secondary_tail_ms or params.inactivity_ms,
                round(inf["inactivity_ms"], 0),
                params.long_drx_ms,
                round(inf["long_drx_ms"], 0),
                params.idle_drx_ms,
                round(inf["idle_drx_ms"], 0),
            )
        )
    emit(
        "Table 7: RRC parameters (true vs inferred)",
        format_table(
            ["network", "tail", "tail^", "longDRX", "longDRX^", "idleDRX", "idleDRX^"],
            rows,
        ),
    )

    for key, params in RRC_PARAMETERS.items():
        inf = inferred[key]
        apparent = params.secondary_tail_ms or params.inactivity_ms
        assert abs(inf["inactivity_ms"] - apparent) <= 1100.0, key
        assert inf["long_drx_ms"] == np.clip(
            inf["long_drx_ms"], params.long_drx_ms * 0.6, params.long_drx_ms * 1.5
        ), key
        assert inf["idle_drx_ms"] == np.clip(
            inf["idle_drx_ms"], params.idle_drx_ms * 0.6, params.idle_drx_ms * 1.4
        ), key
        assert inf["promotion_ms"] == np.clip(
            inf["promotion_ms"],
            params.promotion_delay_ms * 0.7,
            params.promotion_delay_ms * 1.3,
        ), key
