"""Table 2: power during RRC state transitions (tail + 4G->5G switch).

Paper shape: 5G tails cost more than 4G; mmWave's 1092 mW tail is the
extreme; NSA pays a substantial 4G->5G switch power; SA's demotion
passes through a cheap RRC_INACTIVE dwell.
"""

from conftest import emit

from repro.experiments import format_table, run_tail_power
from repro.power.monsoon import MonsoonMonitor
from repro.power.tail import power_timeline_mw


def test_table2_tail_power(benchmark):
    result = benchmark.pedantic(run_tail_power, rounds=1, iterations=1)
    rows = result["rows"]
    emit(
        "Table 2: power during RRC state transitions",
        format_table(
            ["network", "tail mW", "switch mW", "tail energy J"],
            [
                (
                    r["network"],
                    r["tail_mw"],
                    r["switch_mw"] if r["switch_mw"] is not None else "N/A",
                    round(r["tail_energy_j"], 2),
                )
                for r in rows
            ],
        ),
    )
    by_net = {r["network"]: r for r in rows}
    benchmark.extra_info["mmwave_tail_mw"] = by_net["verizon-nsa-mmwave"]["tail_mw"]

    assert by_net["verizon-nsa-mmwave"]["tail_mw"] == 1092.0
    assert by_net["verizon-nsa-mmwave"]["tail_mw"] > by_net["verizon-lte"]["tail_mw"]
    assert by_net["tmobile-nsa-lowband"]["tail_mw"] > by_net["tmobile-lte"]["tail_mw"]
    assert by_net["verizon-nsa-lowband"]["switch_mw"] == 799.0

    # Monsoon capture of the demotion staircase reproduces the energy.
    _times, powers = power_timeline_mw("verizon-nsa-mmwave", horizon_s=14.0)
    monitor = MonsoonMonitor(rate_hz=1000.0, seed=0)
    trace = monitor.measure_series(powers, series_rate_hz=100.0)
    integrated = trace.energy_j()
    assert abs(integrated - by_net["verizon-nsa-mmwave"]["tail_energy_j"]) < 1.5
