"""Fig. 13: power-RSRP-throughput relationship in walking traces.

Paper shape: higher throughput -> higher power; worse RSRP -> higher
power at the same throughput; in Minneapolis the low-band and mmWave
points separate into two clusters.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_walking_power


def test_fig13_power_rsrp_throughput(benchmark):
    def run():
        ann_arbor = run_walking_power(
            device_name="S10",
            network_key="verizon-nsa-mmwave",
            city="Ann Arbor",
            n_traces=4,
            seed=5,
        )
        minneapolis_lb = run_walking_power(
            device_name="S20U",
            network_key="verizon-nsa-lowband",
            city="Minneapolis",
            n_traces=2,
            seed=6,
        )
        minneapolis_mm = run_walking_power(
            device_name="S20U",
            network_key="verizon-nsa-mmwave",
            city="Minneapolis",
            n_traces=2,
            seed=7,
        )
        return ann_arbor, minneapolis_lb, minneapolis_mm

    ann_arbor, mlb, mmm = benchmark.pedantic(run, rounds=1, iterations=1)

    scatter = ann_arbor["scatter"]
    rsrp, tput, power = (
        scatter["rsrp_dbm"],
        scatter["throughput_mbps"],
        scatter["power_mw"],
    )
    active = tput > 1.0

    # Throughput effect at fixed-ish signal.
    good_signal = active & (rsrp > -85.0)
    hi = good_signal & (tput > np.percentile(tput[good_signal], 75))
    lo = good_signal & (tput < np.percentile(tput[good_signal], 25))
    emit(
        "Fig. 13 (Ann Arbor, S10): power by throughput quartile at good RSRP",
        format_table(
            ["group", "mean power W"],
            [
                ("high throughput", round(power[hi].mean() / 1000.0, 2)),
                ("low throughput", round(power[lo].mean() / 1000.0, 2)),
            ],
        ),
    )
    assert power[hi].mean() > power[lo].mean()

    # Signal effect at matched throughput band.
    mid_tput = active & (tput > 200.0) & (tput < 900.0)
    weak = mid_tput & (rsrp < -95.0)
    strong = mid_tput & (rsrp > -85.0)
    if weak.sum() > 20 and strong.sum() > 20:
        assert power[weak].mean() > power[strong].mean()

    # Minneapolis two-cluster structure: low-band cluster sits at lower
    # throughput than the mmWave cluster (the Fig. 13 right panel).
    lb_tput = mlb["scatter"]["throughput_mbps"]
    mm_tput = mmm["scatter"]["throughput_mbps"]
    benchmark.extra_info["lb_cluster_mbps"] = round(float(np.median(lb_tput[lb_tput > 1])), 0)
    benchmark.extra_info["mm_cluster_mbps"] = round(float(np.median(mm_tput[mm_tput > 1])), 0)
    assert np.median(mm_tput[mm_tput > 1]) > 3.0 * np.median(lb_tput[lb_tput > 1])
