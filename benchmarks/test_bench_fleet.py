"""Fleet sweep throughput: simulated UEs per second, end to end.

Times the full city-scale pipeline (docs/fleet.md) — scenario
generation, UE-major 2D-batched kernels, streaming reducers, partial
merge — serially and through the batch-lease engine, and emits
``BENCH_fleet.json`` at the repo root.

Alongside throughput it asserts the pipeline's load-bearing contract:
the sharded-parallel summary is bit-identical to the serial one
(``fleet.shards`` provenance aside), and a shard partial stays small
enough that a million-UE sweep cannot blow up the parent.

Fails if UEs/s drops below **half** the checked-in baseline
(``benchmarks/baselines/BENCH_fleet_baseline.json``). Scale down for
smoke runs with ``BENCH_FLEET_UES`` (CI uses 4000).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import emit, emit_json

from repro.engine import execute
from repro.fleet import FleetSpec, finalize_summary, fleet_jobs, merge_partials

N_UES = int(os.environ.get("BENCH_FLEET_UES", "8000"))
WORKERS = 4
SHARDS = 8
BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "BENCH_fleet_baseline.json"
)
# Throughput regresses if it drops below baseline / this factor.
REGRESSION_FACTOR = 2.0


def _spec() -> FleetSpec:
    return FleetSpec(ues=N_UES, duration_s=120.0)


def _canon(summary: dict) -> str:
    comparable = json.loads(json.dumps(summary))
    comparable["fleet"].pop("shards")
    return json.dumps(comparable, sort_keys=True)


def _run_serial(spec: FleetSpec) -> tuple:
    from repro.fleet import run_fleet

    start = time.perf_counter()
    summary = run_fleet(spec, shards=1)
    return summary, time.perf_counter() - start


def _run_parallel(spec: FleetSpec) -> tuple:
    start = time.perf_counter()
    result = execute(fleet_jobs(spec, shards=SHARDS), workers=WORKERS)
    result.raise_if_failed()
    summary = finalize_summary(
        spec, merge_partials([o.value for o in result.outcomes])
    )
    return summary, time.perf_counter() - start


def _measure() -> dict:
    spec = _spec()
    serial_summary, serial_s = _run_serial(spec)
    parallel_summary, parallel_s = _run_parallel(spec)
    assert _canon(serial_summary) == _canon(parallel_summary), (
        "sharded-parallel fleet summary diverged from serial"
    )
    return {
        "serial_summary": serial_summary,
        "serial_ues_per_s": N_UES / serial_s,
        "parallel_ues_per_s": N_UES / parallel_s,
    }


def test_fleet_ues_per_second(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    spec = _spec()
    summary = measured["serial_summary"]

    # Memory-boundedness: one shard partial (what crosses the process
    # boundary and what the parent accumulates per shard) must stay
    # O(log range), never O(UEs x ticks).
    from repro.fleet import run_shard_job

    partial_bytes = len(json.dumps(run_shard_job(spec.to_dict(), 0, 64)))
    assert partial_bytes < 300_000, partial_bytes

    results = {
        "serial_ues_per_s": round(measured["serial_ues_per_s"], 1),
        "parallel_ues_per_s": round(measured["parallel_ues_per_s"], 1),
        "partial_bytes": partial_bytes,
    }
    payload = {
        "ues": N_UES,
        "ticks": spec.ticks,
        "shards": SHARDS,
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "serial_identity": True,
        "results": results,
    }
    path = emit_json("BENCH_fleet.json", payload)

    walk = summary["groups"]["walk_mmwave_rsrp"]
    emit(
        f"Fleet throughput ({N_UES} UEs x {spec.ticks} ticks)",
        "\n".join(
            [
                f"serial:   {results['serial_ues_per_s']:>9.1f} UEs/s",
                f"parallel: {results['parallel_ues_per_s']:>9.1f} UEs/s "
                f"({SHARDS} shards, {WORKERS} workers)",
                f"partial:  {partial_bytes} bytes/shard",
                f"walk mmWave RSRP p50: {walk['quantiles']['50']:.2f} dBm",
                f"written to {path.name}",
            ]
        ),
    )
    benchmark.extra_info.update(results)

    # Perf-regression gate against the checked-in baseline. UEs/s is
    # wall-clock, so the gate is a generous 2x like the serve bench.
    baseline = json.loads(BASELINE.read_text())["results"]
    for key in ("serial_ues_per_s", "parallel_ues_per_s"):
        floor = baseline[key] / REGRESSION_FACTOR
        assert results[key] >= floor, (
            f"{key} {results[key]:.1f} regressed below {floor:.1f} "
            f"(baseline {baseline[key]} / {REGRESSION_FACTOR})"
        )
