"""Serve throughput: 1000+ concurrent submissions, zero lost jobs.

Stands up a full ``repro.serve`` stack (asyncio HTTP server, fair
scheduler, size-bounded cache) in-process and fires 1000 small-sweep
submissions at it from 32 closed-loop client threads. Asserts the
ISSUE's service-level invariants:

* no job is lost or duplicated — every submitted id settles exactly
  once on the server;
* the shared result cache stays under its byte budget *throughout*
  the run (sampled continuously), not just at the end;
* a drain settles everything and the ledger reconciles.

Headline numbers (throughput, p50/p95 submit-to-result latency, cache
hit/eviction counts) land in ``BENCH_serve.json``, and a no-regression
gate compares them against the checked-in baseline
(``benchmarks/baselines/BENCH_serve_baseline.json``): throughput must
stay above half the baseline and p50 latency below twice it, so
dispatch-layer changes (batch leases, shm transport) cannot quietly
slow the server down.
"""

import json
import pathlib
import threading
import time

from conftest import emit, emit_json

from repro.serve.config import ServeConfig
from repro.serve.http import run_in_thread
from repro.serve.loadgen import run_load

SUBMISSIONS = 1000
CLIENT_THREADS = 32
DISTINCT_SEEDS = 150  # >1 cache entry per budget's worth; most dedupe
CACHE_BUDGET_BYTES = 16 * 1024  # ~100 entries; forces live eviction
TENANTS = 4
BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "BENCH_serve_baseline.json"
)


def test_serve_throughput_and_invariants(tmp_path, benchmark):
    config = ServeConfig(
        data_dir=tmp_path / "serve",
        port=0,
        max_concurrency=8,
        queue_limit=SUBMISSIONS,  # measure throughput, not rejection
        cache_max_bytes=CACHE_BUDGET_BYTES,
    )
    handle = run_in_thread(config)
    cache = handle.core.cache

    # Continuously sample the cache size while the load runs: the
    # budget must hold mid-flight, not only after a final gc.
    budget_violations = []
    samples = []
    stop_sampling = threading.Event()

    def _sample():
        while not stop_sampling.is_set():
            size = cache.size_bytes()
            samples.append(size)
            if size > CACHE_BUDGET_BYTES:
                budget_violations.append(size)
            time.sleep(0.05)

    sampler = threading.Thread(target=_sample, daemon=True)
    sampler.start()

    try:
        load = benchmark.pedantic(
            lambda: run_load(
                handle.url,
                submissions=SUBMISSIONS,
                concurrency=CLIENT_THREADS,
                artifacts=["test.echo"],
                distinct_seeds=DISTINCT_SEEDS,
                tenants=TENANTS,
                wait_timeout=600.0,
            ),
            rounds=1,
            iterations=1,
        )
    finally:
        stop_sampling.set()
        sampler.join(timeout=5)

    # Service-level invariants.
    assert load["completed"] == SUBMISSIONS
    assert load["lost_jobs"] == 0
    assert load["duplicated_jobs"] == 0
    assert load["unsettled_jobs"] == 0
    assert load["error_count"] == 0, load["errors"]
    assert not budget_violations, (
        f"cache exceeded {CACHE_BUDGET_BYTES}B budget: "
        f"peak {max(budget_violations)}B"
    )

    stats = handle.core.stats()
    cache_stats = stats["cache"]
    assert cache_stats["evictions"] > 0  # the budget actually bit
    assert stats["scheduler"]["admitted"] == SUBMISSIONS
    assert stats["scheduler"]["completed"] == SUBMISSIONS

    # Drain: everything settles, nothing orphaned.
    handle.stop(timeout=120)
    counts = handle.core.jobs.counts_by_state()
    assert counts["done"] == SUBMISSIONS
    assert counts["queued"] == counts["running"] == 0

    payload = {
        "submissions": SUBMISSIONS,
        "client_threads": CLIENT_THREADS,
        "server_concurrency": config.max_concurrency,
        "distinct_seeds": DISTINCT_SEEDS,
        "tenants": TENANTS,
        "throughput_jobs_per_s": load["throughput_jobs_per_s"],
        "latency_p50_s": load["latency_p50_s"],
        "latency_p95_s": load["latency_p95_s"],
        "latency_max_s": load["latency_max_s"],
        "elapsed_s": load["elapsed_s"],
        "rejected_retries": load["rejected_retries"],
        "lost_jobs": load["lost_jobs"],
        "duplicated_jobs": load["duplicated_jobs"],
        "cache_budget_bytes": CACHE_BUDGET_BYTES,
        "cache_peak_bytes": max(samples) if samples else 0,
        "cache_evictions": cache_stats["evictions"],
        "cache_entries_final": cache_stats["entries"],
        "jobs_by_state": counts,
    }
    emit_json("BENCH_serve.json", payload)

    # No-regression gate against the checked-in baseline (ratio-based
    # so it holds on slower CI boxes without being toothless).
    baseline = json.loads(BASELINE.read_text())
    throughput_floor = baseline["throughput_jobs_per_s"] / 2.0
    p50_ceiling = baseline["latency_p50_s"] * 2.0
    assert load["throughput_jobs_per_s"] >= throughput_floor, (
        f"serve throughput {load['throughput_jobs_per_s']:.1f} jobs/s "
        f"regressed below {throughput_floor:.1f} "
        f"(baseline {baseline['throughput_jobs_per_s']} / 2)"
    )
    assert load["latency_p50_s"] <= p50_ceiling, (
        f"serve p50 latency {load['latency_p50_s'] * 1000:.1f} ms "
        f"regressed above {p50_ceiling * 1000:.1f} ms "
        f"(baseline {baseline['latency_p50_s'] * 1000:.1f} ms x 2)"
    )
    emit(
        "Serve: 1000 submissions through the job server",
        "\n".join(
            [
                f"submissions      {SUBMISSIONS} "
                f"({CLIENT_THREADS} client threads, "
                f"{config.max_concurrency} server workers)",
                f"throughput       {load['throughput_jobs_per_s']:.1f} jobs/s",
                f"latency p50/p95  {load['latency_p50_s'] * 1000:.1f} / "
                f"{load['latency_p95_s'] * 1000:.1f} ms",
                f"lost/duplicated  {load['lost_jobs']} / "
                f"{load['duplicated_jobs']}",
                f"cache peak       {max(samples) if samples else 0} B "
                f"(budget {CACHE_BUDGET_BYTES} B, "
                f"{cache_stats['evictions']} evictions)",
            ]
        ),
    )
