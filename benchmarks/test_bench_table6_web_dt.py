"""Table 6 + Fig. 22: decision-tree radio interface selection.

Paper shape: M1 (high performance) sends almost everything to 5G
(19 vs 401); from M2 onward the balance flips hard toward 4G
(366/54 -> 420/0 at M5); selection saves 15-66% energy; the M1/M4
trees split on page size and the dynamic-object share.
"""

from conftest import emit

from repro.experiments import format_table, run_web_factors, run_web_selection


def test_table6_interface_selection(benchmark):
    def run():
        factors = run_web_factors(n_sites=1400, seed=1)
        return run_web_selection(dataset=factors["dataset"], seed=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result["rows"]
    emit(
        "Table 6: DT radio interface selection results",
        format_table(
            ["#ID", "Desired QoE", "alpha", "beta", "Use 4G", "Use 5G"], rows
        ),
    )
    emit("Fig. 22a: M1 tree", result["trees"]["M1"])
    emit("Fig. 22b: M4 tree", result["trees"]["M4"])

    reports = result["reports"]
    # M1 mostly 5G; hard flip by M2+; M5 essentially all 4G.
    assert reports["M1"].use_5g > 3 * reports["M1"].use_4g
    assert reports["M2"].use_4g > reports["M2"].use_5g
    assert reports["M5"].use_5g <= 0.05 * reports["M5"].n_test
    # 5G usage monotonically non-increasing from M1 to M5.
    use5 = [reports[m].use_5g for m in ("M1", "M2", "M3", "M4", "M5")]
    assert all(a >= b for a, b in zip(use5, use5[1:]))
    # Energy saving within the paper's 15-66% band for the mid models.
    for model in ("M3", "M4"):
        assert 15.0 <= reports[model].energy_saving_percent <= 70.0
    benchmark.extra_info["m4_energy_saving"] = round(
        reports["M4"].energy_saving_percent, 1
    )
    # Trees stay accurate despite being interpretable (M2 sits right on
    # the flip boundary, the genuinely hardest labeling).
    for model, report in reports.items():
        assert report.accuracy > 0.7, model
