"""Fig. 6/7: T-Mobile SA vs NSA low-band throughput vs distance.

Paper shape: SA downlink and uplink achieve roughly *half* of NSA
(carrier aggregation not yet supported on SA).
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_throughput_vs_distance


def test_fig6_fig7_tmobile_sa_vs_nsa(benchmark):
    def run():
        return {
            "sa": run_throughput_vs_distance(
                network_key="tmobile-sa-lowband", n_servers=8, repetitions=6, seed=1
            ),
            "nsa": run_throughput_vs_distance(
                network_key="tmobile-nsa-lowband", n_servers=8, repetitions=6, seed=1
            ),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sa_rows = result["sa"]["rows"]
    nsa_rows = result["nsa"]["rows"]
    emit(
        "Fig. 6/7: [T-Mobile] SA vs NSA low-band (multi-conn p95)",
        format_table(
            ["km", "SA DL", "NSA DL", "SA UL", "NSA UL"],
            [
                (
                    round(s["distance_km"], 0),
                    round(s["dl_multi_mbps"], 1),
                    round(n["dl_multi_mbps"], 1),
                    round(s["ul_multi_mbps"], 1),
                    round(n["ul_multi_mbps"], 1),
                )
                for s, n in zip(sa_rows, nsa_rows)
            ],
        ),
    )

    sa_dl = np.mean([r["dl_multi_mbps"] for r in sa_rows])
    nsa_dl = np.mean([r["dl_multi_mbps"] for r in nsa_rows])
    sa_ul = np.mean([r["ul_multi_mbps"] for r in sa_rows])
    nsa_ul = np.mean([r["ul_multi_mbps"] for r in nsa_rows])
    benchmark.extra_info["sa_over_nsa_dl"] = round(sa_dl / nsa_dl, 3)

    # SA at roughly half of NSA, both directions.
    assert 0.35 <= sa_dl / nsa_dl <= 0.65
    assert 0.35 <= sa_ul / nsa_ul <= 0.65
