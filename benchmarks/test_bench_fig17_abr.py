"""Fig. 17: QoE of the seven ABR algorithms on 5G vs 4G.

Paper shape: normalized bitrates stay comparable across networks (mean
drop ~3.5%), but stalls blow up on 5G for everything except BBA;
Pensieve has the best 4G QoE yet the worst 5G stall time; robustMPC is
the one algorithm that keeps good QoE on 5G.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_abr_comparison


def test_fig17_abr_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_abr_comparison(n_traces=20, n_chunks=50, duration_s=260, seed=3),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit(
        "Fig. 17: ABR QoE on 5G vs 4G",
        format_table(
            ["ABR", "5G stall %", "5G bitrate", "4G stall %", "4G bitrate"],
            [
                (
                    r["abr"],
                    round(r["stall_5G"], 2),
                    round(r["bitrate_5G"], 3),
                    round(r["stall_4G"], 2),
                    round(r["bitrate_4G"], 3),
                )
                for r in rows
            ],
        ),
    )
    by_abr = {r["abr"]: r for r in rows}

    # Stall inflation on 5G for at least 5 of 7 algorithms.
    worse = sum(1 for r in rows if r["stall_5G"] > r["stall_4G"])
    assert worse >= 5
    benchmark.extra_info["abrs_with_worse_5g_stall"] = worse

    # Pensieve: worst 5G stall, top-tier bitrate.
    stalls_5g = {r["abr"]: r["stall_5G"] for r in rows}
    assert stalls_5g["pensieve"] == max(stalls_5g.values())
    assert by_abr["pensieve"]["bitrate_5G"] >= max(r["bitrate_5G"] for r in rows) - 0.05

    # BBA: low stall on both networks (the conservative outlier).
    assert by_abr["bba"]["stall_5G"] <= np.median(list(stalls_5g.values()))

    # robustMPC in/near the better-QoE region on 5G.
    assert by_abr["robustmpc"]["stall_5G"] < 6.0
    assert by_abr["robustmpc"]["bitrate_5G"] > 0.7

    # fastMPC and Pensieve outside the region on 5G (stall >= 5%).
    assert by_abr["fastmpc"]["stall_5G"] > by_abr["robustmpc"]["stall_5G"]

    # Normalized bitrate drop 5G vs 4G stays small on average.
    drops = [r["bitrate_4G"] - r["bitrate_5G"] for r in rows]
    assert np.mean(drops) < 0.15
    benchmark.extra_info["mean_bitrate_drop"] = round(float(np.mean(drops)), 3)
