"""Fig. 24 (Appendix A.2): Minnesota Speedtest-server survey.

Paper shape: the carrier's own Minneapolis server delivers the best
throughput (>3 Gbps); most third-party servers land ~10% lower; a
band of servers is pinned near 2 Gbps and another near 1 Gbps by
NIC/switch-port limits.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_server_survey


def test_fig24_server_survey(benchmark):
    result = benchmark.pedantic(
        lambda: run_server_survey(seed=0, repetitions=6), rounds=1, iterations=1
    )
    rows = result["rows"]
    emit(
        "Fig. 24: downlink throughput across Minnesota servers",
        format_table(
            ["server", "hosted by", "cap", "DL Mbps"],
            [
                (
                    r["server"],
                    r["hosted_by"],
                    r["cap_mbps"] if r["cap_mbps"] else "-",
                    round(r["dl_mbps"], 0),
                )
                for r in rows
            ],
        ),
    )
    assert len(rows) == 37
    carrier = next(r for r in rows if r["hosted_by"] == "carrier")
    benchmark.extra_info["carrier_dl"] = round(carrier["dl_mbps"], 0)

    # Carrier-hosted server is the best performer.
    assert carrier["dl_mbps"] == max(r["dl_mbps"] for r in rows)
    assert carrier["dl_mbps"] > 2900.0

    # Uncapped third-party servers: ~10% haircut, still far above caps.
    uncapped = [r["dl_mbps"] for r in rows if r["cap_mbps"] is None and r["hosted_by"] != "carrier"]
    assert 0.8 * carrier["dl_mbps"] < np.mean(uncapped) < carrier["dl_mbps"]

    # The 2 Gbps and 1 Gbps bands are visible.
    capped_2g = [r["dl_mbps"] for r in rows if r["cap_mbps"] == 2000.0]
    capped_1g = [r["dl_mbps"] for r in rows if r["cap_mbps"] == 1000.0]
    assert all(1700.0 < v <= 2000.0 for v in capped_2g)
    assert all(800.0 < v <= 1000.0 for v in capped_1g)
