"""Fig. 18: throughput predictors, chunk lengths, interface selection.

Paper shape: (a) better predictors -> better QoE, with the ground-truth
oracle bounding the GBDT predictor from above and harmonic mean last;
(b) shorter chunks buy higher bitrate and better adaptation;
(c) 5G-aware interface selection cuts stalls vs 5G-only while the
no-overhead variant bounds it.
"""

from conftest import emit

from repro.experiments import (
    format_table,
    run_chunk_lengths,
    run_video_interface_selection,
    run_video_predictors,
)


def test_fig18a_predictors(benchmark):
    result = benchmark.pedantic(
        lambda: run_video_predictors(n_traces=16, n_chunks=50, duration_s=260, seed=4),
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig. 18a: fastMPC QoE by throughput predictor",
        format_table(
            ["predictor", "QoE", "normalized"],
            [
                (name, round(result["qoe"][name], 0), round(result["normalized_qoe"][name], 3))
                for name in ("hmMPC", "MPC_GDBT", "truthMPC")
            ],
        ),
    )
    qoe = result["qoe"]
    benchmark.extra_info.update({k: round(v, 0) for k, v in qoe.items()})
    assert qoe["truthMPC"] >= qoe["MPC_GDBT"]
    assert qoe["MPC_GDBT"] > qoe["hmMPC"]


def test_fig18b_chunk_lengths(benchmark):
    result = benchmark.pedantic(
        lambda: run_chunk_lengths(n_traces=14, duration_s=260, seed=5),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit(
        "Fig. 18b: fastMPC QoE by chunk length",
        format_table(
            ["chunk s", "stall %", "normalized bitrate"],
            [
                (r["chunk_s"], round(r["stall_percent"], 2), round(r["normalized_bitrate"], 3))
                for r in rows
            ],
        ),
    )
    by_len = {r["chunk_s"]: r for r in rows}
    # Paper: 1 s chunks give ~21-36% higher bitrate than 2/4 s.
    assert by_len[1.0]["normalized_bitrate"] > by_len[2.0]["normalized_bitrate"]
    assert by_len[2.0]["normalized_bitrate"] > by_len[4.0]["normalized_bitrate"]
    benchmark.extra_info["bitrate_gain_1s_vs_4s"] = round(
        by_len[1.0]["normalized_bitrate"] / by_len[4.0]["normalized_bitrate"] - 1.0, 3
    )


def test_fig18c_interface_selection(benchmark):
    result = benchmark.pedantic(
        lambda: run_video_interface_selection(
            n_pairs=16, n_chunks=50, duration_s=260, seed=6
        ),
        rounds=1,
        iterations=1,
    )
    summary = result["summary"]
    emit(
        "Fig. 18c: interface selection schemes",
        format_table(
            ["scheme", "stall %", "bitrate", "energy J", "switches"],
            [
                (
                    name,
                    round(stats["stall_percent"], 2),
                    round(stats["normalized_bitrate"], 3),
                    round(stats["energy_j"], 1),
                    round(stats["switches"], 2),
                )
                for name, stats in summary.items()
            ],
        ),
    )
    only = summary["5G-only MPC"]
    aware = summary["5G-aware MPC"]
    no_overhead = summary["5G-aware MPC NO"]

    # The switching scheme reduces stalls vs always-5G (paper: 26.9%);
    # the no-overhead variant shows the mechanism's clean effect, and
    # the realistic variant pays a small overhead premium over it
    # (paper: ~4% more stall than the NO variant).
    assert no_overhead["stall_percent"] < only["stall_percent"]
    assert aware["stall_percent"] <= no_overhead["stall_percent"] * 1.15
    benchmark.extra_info["stall_reduction_pct"] = round(
        100.0 * (1.0 - no_overhead["stall_percent"] / only["stall_percent"]), 1
    )
