"""Ablation: DTR vs multi-factor linear power modeling (section 4.5).

The paper's motivation for Decision Tree Regression: "linearly
regressing with multiple factors ... leads to even higher errors",
because the RSRP effect on power is super-linear. This ablation
quantifies the gap on mmWave walking data and confirms linear fitting
is adequate only when the signal effect is mild (low-band).
"""

from conftest import emit

from repro.core.powermodel import (
    FeatureSet,
    LinearPowerModel,
    train_from_walking_traces,
)
from repro.core.powermodel import _stack_traces
from repro.experiments import format_table
from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator


def test_ablation_dtr_vs_linear(benchmark):
    def run():
        rows = []
        for network_key, label in (
            ("verizon-nsa-mmwave", "mmWave"),
            ("verizon-nsa-lowband", "low-band"),
        ):
            generator = WalkingTraceGenerator(
                network=get_network(network_key),
                device=get_device("S20U"),
                seed=13,
            )
            traces = generator.generate_many(8)
            train, test = traces[:6], traces[6:]
            throughput, rsrp, power = _stack_traces(test)
            dtr = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)
            linear = LinearPowerModel("x", features=FeatureSet.TH_SS)
            tr_t, tr_r, tr_p = _stack_traces(train)
            linear.fit(tr_t, tr_r, tr_p)
            rows.append(
                {
                    "band": label,
                    "dtr_mape": dtr.mape(throughput, rsrp, power),
                    "linear_mape": linear.mape(throughput, rsrp, power),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: DTR vs linear multi-factor power model",
        format_table(
            ["band", "DTR MAPE %", "linear MAPE %"],
            [
                (r["band"], round(r["dtr_mape"], 2), round(r["linear_mape"], 2))
                for r in rows
            ],
        ),
    )
    mmwave = next(r for r in rows if r["band"] == "mmWave")
    # The paper's claim bites hardest where RSRP dynamics are wild.
    assert mmwave["linear_mape"] > mmwave["dtr_mape"]
    benchmark.extra_info["mmwave_gap"] = round(
        mmwave["linear_mape"] - mmwave["dtr_mape"], 2
    )
    for r in rows:
        assert r["dtr_mape"] < 6.0
