"""Fig. 14: energy efficiency vs RSRP bins on mmWave walking traces.

Paper shape: as NR-SS-RSRP improves from -110 toward -75 dBm, the
energy per bit falls monotonically (modulo bin noise).
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_walking_power


def test_fig14_efficiency_by_rsrp(benchmark):
    result = benchmark.pedantic(
        lambda: run_walking_power(
            device_name="S10",
            network_key="verizon-nsa-mmwave",
            city="Ann Arbor",
            n_traces=6,
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    bins = [b for b in result["bins"] if b["n"] > 20]
    emit(
        "Fig. 14: energy efficiency by RSRP bin (Ann Arbor, S10)",
        format_table(
            ["RSRP bin (dBm)", "n", "median efficiency (mW/Mbps)"],
            [
                (f"[{int(b['bin'][0])},{int(b['bin'][1])})", b["n"], round(b["efficiency"], 1))
                for b in bins
            ],
        ),
    )
    assert len(bins) >= 4, "need several populated RSRP bins"
    efficiencies = [b["efficiency"] for b in bins]
    benchmark.extra_info["worst_bin"] = round(efficiencies[0], 1)
    benchmark.extra_info["best_bin"] = round(efficiencies[-1], 1)

    # Broad trend: worst (lowest-RSRP) bin much less efficient than the
    # best; mostly monotone along the way.
    assert efficiencies[0] > 2.0 * efficiencies[-1]
    decreasing_pairs = sum(
        1 for a, b in zip(efficiencies, efficiencies[1:]) if a >= b
    )
    assert decreasing_pairs >= len(efficiencies) - 2
