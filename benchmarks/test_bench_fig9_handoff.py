"""Fig. 9: handoff counts while driving, per band configuration.

Paper shape: SA-only 13 handoffs; NSA+LTE 110 (mostly vertical);
LTE-only 30; SA+LTE 38; All Bands 64.
"""

from conftest import emit

from repro.experiments import format_table, run_handoff_drive


def test_fig9_handoffs(benchmark):
    result = benchmark.pedantic(
        lambda: run_handoff_drive(dt_s=0.5, seed=3), rounds=1, iterations=1
    )
    rows = result["rows"]
    emit(
        "Fig. 9: handoffs while driving (10 km)",
        format_table(
            ["configuration", "total", "horizontal", "vertical"],
            [(r["configuration"], r["total"], r["horizontal"], r["vertical"]) for r in rows],
        ),
    )
    totals = {r["configuration"]: r["total"] for r in rows}
    for name, total in totals.items():
        benchmark.extra_info[name] = total

    # Paper ordering.
    assert totals["NSA-5G + LTE"] > totals["All Bands"]
    assert totals["All Bands"] > totals["SA-5G + LTE"]
    assert totals["SA-5G + LTE"] >= totals["LTE only"]
    assert totals["LTE only"] > totals["SA-5G only"]
    # Rough magnitudes (paper: 13 / 110 / 30 / 38 / 64).
    assert 8 <= totals["SA-5G only"] <= 25
    assert 80 <= totals["NSA-5G + LTE"] <= 150
    assert 20 <= totals["LTE only"] <= 45
    # NSA's excess is vertical (paper: ~90 vertical handoffs).
    nsa = next(r for r in rows if r["configuration"] == "NSA-5G + LTE")
    assert nsa["vertical"] > 60
