"""Kernel perf-regression suite: vectorized vs pre-PR scalar hot paths.

Times each vectorized kernel against the scalar reference preserved in
:mod:`repro.kernels.reference` at realistic sizes (a 10 Hz walking
campaign is ~18k ticks), plus the end-to-end walking-trace generator as
the representative figure runner (Fig. 13/14 input). Emits
``BENCH_kernels.json`` at the repo root and fails if any kernel's
speedup regresses below half its checked-in baseline
(``benchmarks/baselines/BENCH_kernels_baseline.json``) — speedup ratios
are compared, not wall-clock, so the check is stable across machines.

Scale down for smoke runs with ``BENCH_KERNELS_STEPS`` (CI uses 6000).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit, emit_json

from repro.kernels import reference as ref
from repro.power.device import S20U
from repro.power.software import SoftwareMonitor
from repro.radio.bands import NR_N261
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget, MODEMS
from repro.radio.signal import RsrpProcess
from repro.traces.walking import WalkingTraceGenerator
from repro.transport.flow import TcpFlow, UdpFlow

N_STEPS = int(os.environ.get("BENCH_KERNELS_STEPS", "18000"))
BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "BENCH_kernels_baseline.json"
)
# A kernel regresses if its speedup drops below baseline / this factor.
REGRESSION_FACTOR = 2.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _distances(n: int) -> np.ndarray:
    rng = np.random.default_rng(99)
    return np.clip(60.0 + np.cumsum(rng.normal(0.0, 1.0, n)), 10.0, 400.0)


def _measure_kernels() -> dict:
    distances = _distances(N_STEPS)
    results = {}

    # RSRP series generation (the tentpole's >=10x target).
    results["rsrp_series"] = {
        "scalar_s": _best_of(
            lambda: ref.rsrp_series_step_loop(
                RsrpProcess(NR_N261, seed=1), distances, 1.4
            )
        ),
        "vector_s": _best_of(
            lambda: RsrpProcess(NR_N261, seed=1).simulate(distances, 1.4)
        ),
    }

    # Link capacity over an RSRP series.
    link = LinkBudget(get_network("verizon-nsa-mmwave"), MODEMS["X55"])
    rsrp = np.linspace(-130.0, -60.0, N_STEPS)
    results["capacity_series"] = {
        "scalar_s": _best_of(lambda: ref.capacity_series_scalar(link, rsrp)),
        "vector_s": _best_of(lambda: link.capacity_series_mbps(rsrp)),
    }

    # Transport flows (per-RTT TCP; per-step UDP).
    tcp_duration = N_STEPS * 0.028
    results["tcp_run"] = {
        "scalar_s": _best_of(
            lambda: ref.tcp_run_scalar(
                TcpFlow(rtt_ms=28.0, seed=2), 2000.0, duration_s=tcp_duration
            )
        ),
        "vector_s": _best_of(
            lambda: TcpFlow(rtt_ms=28.0, seed=2).run(
                2000.0, duration_s=tcp_duration
            )
        ),
    }
    udp_duration = N_STEPS * 0.1
    results["udp_run"] = {
        "scalar_s": _best_of(
            lambda: ref.udp_run_scalar(UdpFlow(), 2000.0, duration_s=udp_duration)
        ),
        "vector_s": _best_of(
            lambda: UdpFlow().run(2000.0, duration_s=udp_duration)
        ),
    }

    # Software power monitor at the paper's 10 Hz.
    sw_duration = N_STEPS / 10.0
    results["software_measure"] = {
        "scalar_s": _best_of(
            lambda: ref.software_measure_scalar(
                SoftwareMonitor(rate_hz=10.0, seed=3),
                lambda t: 2000.0 + 500.0 * np.sin(t / 3.0),
                sw_duration,
            )
        ),
        "vector_s": _best_of(
            lambda: SoftwareMonitor(rate_hz=10.0, seed=3).measure(
                lambda t: 2000.0 + 500.0 * np.sin(t / 3.0), sw_duration
            )
        ),
    }

    # End-to-end: one full walking trace, the Fig. 13/14 runner's unit
    # of work (the >=5x end-to-end target).
    network = get_network("verizon-nsa-mmwave")
    results["walking_trace"] = {
        "scalar_s": _best_of(
            lambda: ref.walking_generate_scalar(
                WalkingTraceGenerator(network=network, device=S20U, seed=4),
                "bench",
            ),
            repeats=2,
        ),
        "vector_s": _best_of(
            lambda: WalkingTraceGenerator(
                network=network, device=S20U, seed=4
            ).generate("bench"),
            repeats=2,
        ),
    }

    for entry in results.values():
        entry["speedup"] = round(entry["scalar_s"] / entry["vector_s"], 2)
        entry["scalar_s"] = round(entry["scalar_s"], 5)
        entry["vector_s"] = round(entry["vector_s"], 5)
    return results


def test_kernel_speedups(benchmark):
    results = benchmark.pedantic(_measure_kernels, rounds=1, iterations=1)
    payload = {"n_steps": N_STEPS, "kernels": results}
    path = emit_json("BENCH_kernels.json", payload)

    lines = [f"{'kernel':<18}{'scalar':>10}{'vector':>10}{'speedup':>9}"]
    for name, entry in results.items():
        lines.append(
            f"{name:<18}{entry['scalar_s']:>9.4f}s{entry['vector_s']:>9.4f}s"
            f"{entry['speedup']:>8.1f}x"
        )
    lines.append(f"written to {path.name}")
    emit(f"Kernel speedups at {N_STEPS} steps", "\n".join(lines))

    for name, entry in results.items():
        benchmark.extra_info[name] = entry["speedup"]

    # The tentpole's acceptance floors.
    assert results["rsrp_series"]["speedup"] >= 10.0, results["rsrp_series"]
    assert results["walking_trace"]["speedup"] >= 5.0, results["walking_trace"]
    for name, entry in results.items():
        assert entry["speedup"] > 1.0, f"{name} slower than scalar: {entry}"

    # Perf-regression gate against the checked-in baseline.
    baseline = json.loads(BASELINE.read_text())["kernels"]
    for name, entry in results.items():
        floor = baseline[name]["speedup"] / REGRESSION_FACTOR
        assert entry["speedup"] >= floor, (
            f"{name} speedup {entry['speedup']}x regressed below "
            f"{floor:.1f}x (baseline {baseline[name]['speedup']}x / "
            f"{REGRESSION_FACTOR})"
        )
