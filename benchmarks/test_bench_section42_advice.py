"""Section 4.2's operational advice, quantified.

The paper concludes from Table 2 that "to save power, traffic patterns
like periodical data transmission or intermittent waking up should be
avoided under 5G. One solution would be forcing the UE to stay in 4G
when high throughput is not needed." This bench reproduces both halves
with the usage-session estimator:

* batching a periodic background workload saves the most on mmWave
  (whose 1.09 W tail re-burns after every little transfer),
* the same light workload is cheapest on 4G regardless of batching.
"""

from conftest import emit

from repro.core.session import (
    UsageSession,
    batched_sync_timeline,
    periodic_sync_timeline,
)
from repro.experiments import format_table

RADIOS = ("verizon-nsa-mmwave", "verizon-nsa-lowband", "verizon-lte")


def test_section42_periodic_traffic_advice(benchmark):
    def run():
        out = {}
        for key in RADIOS:
            session = UsageSession(key)
            out[key] = {
                "periodic": session.simulate(periodic_sync_timeline()),
                "batched": session.simulate(batched_sync_timeline()),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    savings = {}
    for key in RADIOS:
        periodic = results[key]["periodic"].total_energy_j
        batched = results[key]["batched"].total_energy_j
        savings[key] = 100.0 * (1.0 - batched / periodic)
        rows.append(
            (key, round(periodic, 1), round(batched, 1), f"{savings[key]:.0f}%")
        )
    emit(
        "Section 4.2: periodic vs batched background traffic (J)",
        format_table(["radio", "periodic", "batched", "saving"], rows),
    )
    benchmark.extra_info.update({k: round(v, 1) for k, v in savings.items()})

    # Batching always helps, and helps 5G the most (mmWave extreme).
    for key in RADIOS:
        assert savings[key] > 10.0, key
    assert savings["verizon-nsa-mmwave"] > savings["verizon-nsa-lowband"]
    assert savings["verizon-nsa-lowband"] > savings["verizon-lte"]

    # "Stay in 4G when high throughput is not needed": the light
    # periodic workload is cheapest on LTE however it is scheduled.
    for variant in ("periodic", "batched"):
        energies = {k: results[k][variant].total_energy_j for k in RADIOS}
        assert energies["verizon-lte"] == min(energies.values()), variant

    # The 4G->5G switch bursts are a visible part of the periodic cost
    # on NSA (they fire on every wake-up).
    mm_periodic = results["verizon-nsa-mmwave"]["periodic"]
    assert mm_periodic.switches >= 25
    assert mm_periodic.switch_energy_j > 10 * results["verizon-nsa-mmwave"]["batched"].switch_energy_j
