"""Engine scaling: a 4-worker sweep beats serial and matches it bit-for-bit.

Two loads are measured. Wall-clock speedup is asserted on sleep-bound
jobs (``test.sleep``), whose parallelism is independent of how many
cores the CI box happens to have; output identity is asserted on a
fixed set of real artifact runners, which is the property the engine's
seeding model guarantees (see docs/engine.md).
"""

import json

from conftest import emit

from repro.engine import SweepSpec, execute
from repro.experiments.export import to_jsonable

N_JOBS = 8
SLEEP_S = 0.25
REAL_RUNNERS = ["fig2", "fig9", "table2"]


def _sleep_sweep(workers, **engine_kwargs):
    jobs = SweepSpec(
        runners=["test.sleep"],
        base_kwargs={"duration_s": SLEEP_S},
        grid={"value": list(range(N_JOBS))},
        base_seed=0,
    ).expand()
    result = execute(jobs, workers=workers, **engine_kwargs)
    result.raise_if_failed()
    return result


def test_engine_parallel_speedup_and_identity(benchmark):
    serial = _sleep_sweep(workers=1)
    parallel = benchmark.pedantic(
        lambda: _sleep_sweep(workers=4), rounds=1, iterations=1
    )

    real = {
        workers: execute(
            SweepSpec(runners=REAL_RUNNERS, base_seed=17, scale=0.25).expand(),
            workers=workers,
        )
        for workers in (1, 4)
    }

    speedup = serial.elapsed_s / parallel.elapsed_s
    emit(
        "Engine scaling: serial vs 4 workers",
        "\n".join(
            [
                f"sleep sweep ({N_JOBS} x {SLEEP_S}s):",
                f"  serial   {serial.elapsed_s:6.2f}s  ({serial.jobs_per_sec:.2f} jobs/s)",
                f"  4 workers{parallel.elapsed_s:6.2f}s  ({parallel.jobs_per_sec:.2f} jobs/s)",
                f"  speedup  {speedup:6.2f}x",
                f"real sweep ({', '.join(REAL_RUNNERS)}):",
                f"  serial   {real[1].elapsed_s:6.2f}s",
                f"  4 workers{real[4].elapsed_s:6.2f}s",
            ]
        ),
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["serial_s"] = round(serial.elapsed_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel.elapsed_s, 2)

    # Parallel wall-time improvement: 8 x 0.25s of sleep is ≥2s serial;
    # four workers overlap it into ~0.5s. Demand at least 1.5x to stay
    # robust under loaded CI boxes.
    assert serial.elapsed_s >= N_JOBS * SLEEP_S
    assert speedup > 1.5, f"expected >1.5x speedup, got {speedup:.2f}x"

    # Identical outputs, serial vs parallel, on real registered runners.
    for result in real.values():
        assert result.failed_count == 0
    canon = [
        json.dumps(to_jsonable(real[w].values()), sort_keys=True) for w in (1, 4)
    ]
    assert canon[0] == canon[1]


def test_engine_observability_overhead(benchmark, tmp_path):
    """The run ledger must cost < 5% on a sleep-bound sweep.

    The disabled path is the contract the acceptance criteria gate on
    (`if events is not None` guards every emission site, and the
    tracing shim is a shared no-op when no tracer is installed); the
    enabled path writes a full EventLog + manifest — including span
    tracing, which rides the ledger by default — and should still
    disappear into the noise of real jobs.
    """
    from repro.obs.events import EventLog
    from repro.obs.manifest import build_manifest, write_manifest

    plain = benchmark.pedantic(
        lambda: _sleep_sweep(workers=1), rounds=1, iterations=1
    )

    log = EventLog(tmp_path / "events.jsonl")
    observed = _sleep_sweep(workers=1, events=log)
    log.close()
    write_manifest(build_manifest(observed), tmp_path / "run.manifest.json")

    overhead = observed.elapsed_s / plain.elapsed_s - 1.0
    emit(
        "Engine observability overhead (8 x 0.25s sleep, serial)",
        "\n".join(
            [
                f"ledger off {plain.elapsed_s:6.2f}s",
                f"ledger on  {observed.elapsed_s:6.2f}s "
                f"(events + manifest written)",
                f"overhead   {100.0 * overhead:6.2f}%",
            ]
        ),
    )
    benchmark.extra_info["overhead_pct"] = round(100.0 * overhead, 2)
    # sweep pair + start/end per job, plus span pairs: one sweep-root
    # span and a (job, attempt) pair replayed per job.
    assert len(log.events()) == (2 + 2 * N_JOBS) + 2 * (1 + 2 * N_JOBS)
    assert overhead < 0.05, f"observability overhead {100 * overhead:.1f}% >= 5%"


def test_engine_fault_layer_overhead(benchmark):
    """Fault injection disabled must cost < 5% and change nothing.

    The acceptance contract for repro.faults: with no plan attached
    every injection site is one `is None` check, and attaching an
    *empty* plan (the chaos-test baseline) adds only a per-site decide
    over zero specs. Both must vanish into sleep-bound noise, and the
    values must be bit-identical either way.
    """
    from repro.faults import FaultPlan

    bare = benchmark.pedantic(
        lambda: _sleep_sweep(workers=1), rounds=1, iterations=1
    )
    planned = _sleep_sweep(workers=1, faults=FaultPlan())

    overhead = planned.elapsed_s / bare.elapsed_s - 1.0
    emit(
        "Engine fault-layer overhead (8 x 0.25s sleep, serial)",
        "\n".join(
            [
                f"no plan     {bare.elapsed_s:6.2f}s",
                f"empty plan  {planned.elapsed_s:6.2f}s",
                f"overhead    {100.0 * overhead:6.2f}%",
            ]
        ),
    )
    benchmark.extra_info["fault_overhead_pct"] = round(100.0 * overhead, 2)
    canon = [
        json.dumps(to_jsonable(r.values()), sort_keys=True)
        for r in (bare, planned)
    ]
    assert canon[0] == canon[1], "empty fault plan changed sweep output"
    assert overhead < 0.05, f"fault-layer overhead {100 * overhead:.1f}% >= 5%"
