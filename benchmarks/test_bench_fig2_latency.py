"""Fig. 1/2/5: RTT vs UE-server distance per radio technology.

Paper shape: ~6 ms floor on mmWave near the UE's city, roughly doubling
by ~320 km; low-band sits 6-8 ms above mmWave everywhere; LTE another
6-15 ms above 5G; T-Mobile SA and NSA are indistinguishable.
"""

from conftest import emit

from repro.experiments import format_table, run_latency_vs_distance


def test_fig2_latency_vs_distance(benchmark):
    result = benchmark.pedantic(
        lambda: run_latency_vs_distance(n_servers=20, seed=0),
        rounds=1,
        iterations=1,
    )
    series = result["series"]
    mm = dict(series["verizon-nsa-mmwave"])
    lb = dict(series["verizon-nsa-lowband"])
    lte = dict(series["verizon-lte"])
    sa = dict(series["tmobile-sa-lowband"])
    nsa = dict(series["tmobile-nsa-lowband"])

    rows = [
        (round(d, 0), round(mm[d], 1), round(lb[d], 1), round(lte[d], 1))
        for d in sorted(mm)
    ]
    emit(
        "Fig. 2: [Verizon] RTT vs UE-server distance",
        format_table(["distance_km", "mmWave", "low-band", "LTE"], rows),
    )

    distances = sorted(mm)
    benchmark.extra_info["rtt_floor_ms"] = round(mm[distances[0]], 1)

    # Floor ~6 ms; doubling by a few hundred km.
    assert mm[distances[0]] < 10.0
    beyond_320 = [d for d in distances if d > 320.0]
    assert mm[beyond_320[0]] > 2.0 * 6.0 * 0.8
    # Band ordering holds at every distance.
    for d in distances:
        assert mm[d] < lb[d] < lte[d]
    # SA ~ NSA (Fig. 5 finding).
    for d in distances:
        assert abs(sa[d] - nsa[d]) < 5.0
