"""Live streaming + energy-aware ABR over mmWave walks.

Regenerates the two ROADMAP item 3 artifacts at full scale and emits
``BENCH_video.json`` at the repo root:

* the LL-DASH live-QoE table (LoL+/L2A/Stallion) — the qualitative
  shape of "An Experimental Study of Low-Latency Video Streaming over
  5G": mmWave walking links blow live latency well past the target,
  LoL+ holds the best overall QoE;
* the energy-aware ABR's λ sweep — energy falls monotonically with λ
  while bitrate is surrendered from the top of the ladder first, after
  "Improving UE Energy Efficiency through Network-aware Video
  Streaming over 5G".

Also pins the engine contract for the two new runners: a serial sweep
and a parallel one are bit-identical.

Fails if pipeline throughput drops below **half** the checked-in
baseline (``benchmarks/baselines/BENCH_video_baseline.json``), the
same gate every other bench family carries.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit, emit_json

from repro.engine import artifact_jobs, execute
from repro.experiments import format_table, run_energy_abr, run_live_streaming
from repro.experiments.export import to_jsonable

LATENCY_TARGET_S = 3.0
BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "BENCH_video_baseline.json"
)
# Throughput regresses if it drops below baseline / this factor.
REGRESSION_FACTOR = 2.0


def _canon(sweep_result) -> str:
    values = [o.value for o in sweep_result.outcomes]
    return json.dumps(to_jsonable(values), sort_keys=True)


def _measure() -> dict:
    started = time.perf_counter()
    live = run_live_streaming(latency_target_s=LATENCY_TARGET_S)
    energy = run_energy_abr()

    jobs = artifact_jobs(["live", "energy_abr"], scale=0.25)
    serial = execute(jobs, workers=1)
    parallel = execute(jobs, workers=2)
    serial.raise_if_failed()
    parallel.raise_if_failed()
    assert _canon(serial) == _canon(parallel), (
        "live/energy_abr runners diverged between serial and parallel"
    )
    wall_s = time.perf_counter() - started
    return {"live": live, "energy": energy, "wall_s": wall_s}


def test_video_live_and_energy(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    live_rows = measured["live"]["rows"]
    energy_rows = measured["energy"]["rows"]

    emit(
        "LL-DASH live QoE over mmWave walks",
        format_table(
            ["controller", "latency s", "p95 s", "rate dev", "stall %",
             "bitrate", "QoE", "energy J"],
            [
                (
                    r["controller"],
                    round(r["mean_latency_s"], 2),
                    round(r["p95_latency_s"], 2),
                    round(r["rate_deviation"], 3),
                    round(r["stall_percent"], 2),
                    round(r["normalized_bitrate"], 3),
                    round(r["qoe"], 1),
                    round(r["energy_j"], 1),
                )
                for r in live_rows
            ],
        ),
    )
    emit(
        "Energy-aware ABR λ sweep (mmWave, S20U)",
        format_table(
            ["λ", "energy J", "bitrate", "stall %", "QoE"],
            [
                (
                    r["energy_weight"],
                    round(r["energy_j"], 1),
                    round(r["normalized_bitrate"], 3),
                    round(r["stall_percent"], 2),
                    round(r["qoe"], 1),
                )
                for r in energy_rows
            ],
        ),
    )

    # LL-paper shape: mmWave walking blows past the latency target for
    # every controller, and LoL+ holds the best overall QoE.
    by_controller = {r["controller"]: r for r in live_rows}
    for row in live_rows:
        assert row["mean_latency_s"] > LATENCY_TARGET_S
    assert by_controller["LoL+"]["qoe"] == max(r["qoe"] for r in live_rows)
    assert by_controller["LoL+"]["stall_percent"] <= min(
        r["stall_percent"] for r in live_rows
    ) + 1e-9

    # Energy-ABR shape: energy falls monotonically with λ, bitrate is
    # surrendered gradually (intermediate λ strictly between the
    # extremes), and backing off the ladder also calms stalls.
    energies = [r["energy_j"] for r in energy_rows]
    bitrates = [r["normalized_bitrate"] for r in energy_rows]
    assert all(a >= b - 1e-9 for a, b in zip(energies, energies[1:]))
    assert bitrates[0] > bitrates[2] > bitrates[-1]
    assert energy_rows[-1]["stall_percent"] < energy_rows[0]["stall_percent"]
    assert measured["energy"]["energy_saving_frac"] > 0.05

    # Wall-clock throughput: sessions simulated per second across the
    # whole pipeline (live table + λ sweep + both engine sweeps), the
    # number the regression gate below watches.
    sessions = len(live_rows) + len(energy_rows)
    results = {
        "lolp_mean_latency_s": round(by_controller["LoL+"]["mean_latency_s"], 3),
        "lolp_rate_deviation": round(by_controller["LoL+"]["rate_deviation"], 4),
        "lolp_stall_percent": round(by_controller["LoL+"]["stall_percent"], 2),
        "energy_saving_frac": round(measured["energy"]["energy_saving_frac"], 4),
        "bitrate_cost_frac": round(measured["energy"]["bitrate_cost_frac"], 4),
        "pipeline_wall_s": round(measured["wall_s"], 3),
        "sessions_per_s": round(sessions / measured["wall_s"], 3),
    }
    payload = {
        "latency_target_s": LATENCY_TARGET_S,
        "serial_identity": True,
        "live_rows": [
            {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
            for r in live_rows
        ],
        "energy_rows": [
            {k: round(v, 4) for k, v in r.items()} for r in energy_rows
        ],
        "results": results,
    }
    path = emit_json("BENCH_video.json", payload)
    emit(
        "Video benchmark summary",
        "\n".join(
            [
                f"LoL+ mean latency: {results['lolp_mean_latency_s']:.2f} s "
                f"(target {LATENCY_TARGET_S:.0f} s)",
                f"energy saving at max λ: {results['energy_saving_frac']:.1%}",
                f"pipeline: {results['sessions_per_s']:.2f} sessions/s",
                f"written to {path.name}",
            ]
        ),
    )
    benchmark.extra_info.update(results)

    # Perf-regression gate against the checked-in baseline — wall-clock
    # throughput, so the gate is a generous 2x like the other benches.
    baseline = json.loads(BASELINE.read_text())["results"]
    floor = baseline["sessions_per_s"] / REGRESSION_FACTOR
    assert results["sessions_per_s"] >= floor, (
        f"sessions_per_s {results['sessions_per_s']:.2f} regressed below "
        f"{floor:.2f} (baseline {baseline['sessions_per_s']} / "
        f"{REGRESSION_FACTOR})"
    )
