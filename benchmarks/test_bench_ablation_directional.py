"""Ablation: directional (DL, UL, RSRP) vs summed-throughput power
features on mixed-direction workloads.

The paper models each direction with its own sweep; a deployed model
sees mixed traffic. Uplink costs 2.2-5.9x more per Mbps (Table 8), so
a summed-throughput feature is systematically confused on mixed
workloads while the directional variant is not — and on pure-downlink
workloads the two should tie.
"""

import numpy as np
from conftest import emit

from repro.core.powermodel import (
    DirectionalPowerModel,
    FeatureSet,
    train_from_walking_traces,
)
from repro.core.powermodel import _stack_traces
from repro.experiments import format_table
from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator


def _evaluate(uplink_fraction: float, seed: int):
    generator = WalkingTraceGenerator(
        network=get_network("verizon-nsa-mmwave"),
        device=get_device("S20U"),
        uplink_fraction=uplink_fraction,
        seed=seed,
    )
    traces = generator.generate_many(8)
    train, test = traces[:6], traces[6:]
    directional = DirectionalPowerModel.from_walking_traces("x", train)
    summed = train_from_walking_traces("x", train, features=FeatureSet.TH_SS)
    throughput, rsrp, power = _stack_traces(test)
    dl = np.concatenate([t.dl_mbps for t in test])
    ul = np.concatenate([t.ul_mbps for t in test])
    return {
        "uplink_fraction": uplink_fraction,
        "directional_mape": directional.mape(dl, ul, rsrp, power),
        "summed_mape": summed.mape(throughput, rsrp, power),
    }


def test_ablation_directional_features(benchmark):
    rows = benchmark.pedantic(
        lambda: [_evaluate(f, seed=31) for f in (0.0, 0.2, 0.5)],
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation: directional vs summed power-model features",
        format_table(
            ["UL burst fraction", "directional MAPE %", "summed TH+SS MAPE %"],
            [
                (
                    r["uplink_fraction"],
                    round(r["directional_mape"], 2),
                    round(r["summed_mape"], 2),
                )
                for r in rows
            ],
        ),
    )
    by_fraction = {r["uplink_fraction"]: r for r in rows}
    # Pure downlink: the variants tie (within noise).
    pure = by_fraction[0.0]
    assert abs(pure["directional_mape"] - pure["summed_mape"]) < 1.0
    # Mixed traffic: directional wins, and the gap grows with UL share.
    for fraction in (0.2, 0.5):
        row = by_fraction[fraction]
        assert row["directional_mape"] < row["summed_mape"], fraction
    gap_02 = by_fraction[0.2]["summed_mape"] - by_fraction[0.2]["directional_mape"]
    gap_05 = by_fraction[0.5]["summed_mape"] - by_fraction[0.5]["directional_mape"]
    benchmark.extra_info["gap_at_50pct_ul"] = round(gap_05, 2)
    assert gap_05 > 0.5
