"""Fig. 8: single-connection throughput across Azure regions under
different transport settings.

Paper shape: UDP flat at the device ceiling; 8-TCP slightly below UDP;
default-kernel 1-TCP capped near 500 Mbps; tuned 1-TCP recovers
2.1-3x but still trails UDP and decays with distance.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_azure_transport


def test_fig8_azure_transport(benchmark):
    result = benchmark.pedantic(
        lambda: run_azure_transport(seed=0, duration_s=15.0),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    emit(
        "Fig. 8: Azure single-conn throughput by transport setting",
        format_table(
            ["region", "km", "UDP", "TCP-8", "TCP-1 tuned", "TCP-1 default"],
            [
                (
                    r["region"],
                    r["distance_km"],
                    round(r["udp_mbps"], 0),
                    round(r["tcp8_mbps"], 0),
                    round(r["tcp1_tuned_mbps"], 0),
                    round(r["tcp1_default_mbps"], 0),
                )
                for r in rows
            ],
        ),
    )

    gains = [r["tcp1_tuned_mbps"] / r["tcp1_default_mbps"] for r in rows]
    shortfall = np.mean([r["udp_mbps"] - r["tcp1_tuned_mbps"] for r in rows])
    benchmark.extra_info["mean_tuning_gain"] = round(float(np.mean(gains)), 2)
    benchmark.extra_info["udp_vs_tuned_shortfall_mbps"] = round(float(shortfall), 0)

    for r in rows:
        # Ordering per region.
        assert r["udp_mbps"] >= r["tcp8_mbps"] * 0.95
        assert r["tcp8_mbps"] > r["tcp1_tuned_mbps"] * 0.9
        assert r["tcp1_tuned_mbps"] > r["tcp1_default_mbps"]
    # Default kernel capped well below the radio ceiling everywhere.
    assert max(r["tcp1_default_mbps"] for r in rows) < 1500.0
    # Tuning recovers roughly 2.1-3x (paper's headline).
    assert 1.5 <= np.mean(gains) <= 3.5
    # Even tuned 1-TCP falls well short of UDP on average (paper: ~886 Mbps).
    assert shortfall > 300.0
    # Distance decay of TCP (near vs far regions).
    assert rows[-1]["tcp1_tuned_mbps"] < rows[0]["tcp1_tuned_mbps"]
