"""Ablation: interface-watchdog thresholds for 5G-aware streaming.

DESIGN.md calls out the switching policy's thresholds as the design
choice to ablate: too eager (bail on brief dips) wastes switch
overhead and parks the stream on slow 4G; too lazy never escapes a
crater. This sweep shows the interior optimum the defaults sit near.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.selection import (
    StreamingInterfaceSelector,
    _SelectorABR,
    _SwitchingBandwidth,
)
from repro.video.abr.mpc import FastMPC
from repro.video.player import Player
from repro.video.qoe import stall_percent


def _run_policy(pairs, manifest, bail_after_s):
    player = Player(manifest)
    stalls = []
    for trace_5g, trace_4g in pairs:
        bandwidth = _SwitchingBandwidth(
            trace_5g, trace_4g, switch_overhead_s=1.5, bail_after_s=bail_after_s
        )
        selector = _SelectorABR(
            inner=FastMPC(),
            bandwidth=bandwidth,
            avg_4g_mbps=trace_4g.mean_mbps,
            buffer_return_s=10.0,
        )
        result = player.play(selector, bandwidth)
        stalls.append(stall_percent(result.stall_s, result.playback_s))
    return float(np.mean(stalls))


def test_ablation_switch_thresholds(benchmark):
    def run():
        traces_5g, traces_4g = generate_lumos_corpus(
            LumosConfig(n_5g=12, n_4g=12, duration_s=260, seed=6)
        )
        pairs = list(zip(traces_5g, traces_4g))
        manifest = VideoManifest(
            ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=50
        )
        sweep = {}
        for bail_after_s in (0.5, 3.0, 12.0):
            sweep[bail_after_s] = _run_policy(pairs, manifest, bail_after_s)
        baseline_player = Player(manifest)
        baseline = float(
            np.mean(
                [
                    stall_percent(
                        baseline_player.play(FastMPC(), t.throughput_at).stall_s,
                        manifest.duration_s,
                    )
                    for t, _ in pairs
                ]
            )
        )
        return sweep, baseline

    sweep, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: watchdog bail-delay sweep (mean stall %)",
        format_table(
            ["bail_after_s", "stall %"],
            [("5G-only baseline", round(baseline, 2))]
            + [(k, round(v, 2)) for k, v in sweep.items()],
        ),
    )
    benchmark.extra_info.update({str(k): round(v, 2) for k, v in sweep.items()})

    # The default (3 s) should not be worse than both extremes — the
    # interior optimum the design chose.
    default = sweep[3.0]
    assert default <= max(sweep[0.5], sweep[12.0]) + 0.2
    # A far-too-lazy watchdog approaches the 5G-only baseline.
    assert abs(sweep[12.0] - baseline) < max(3.0, 0.5 * baseline)
