"""Benchmark harness configuration.

Every ``benchmarks/test_bench_*`` module regenerates one of the paper's
tables or figures at meaningful scale, prints the regenerated rows (run
with ``-s`` to see them), records headline numbers in
``benchmark.extra_info``, and asserts the paper's qualitative shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import pathlib


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact with a recognisable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


def emit_json(filename: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark artifact at the repo root.

    Used by the kernel perf-regression suite to emit
    ``BENCH_kernels.json`` (uploaded as a CI artifact and compared
    against the checked-in baseline).
    """
    path = pathlib.Path(__file__).resolve().parent.parent / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
