"""Benchmark harness configuration.

Every ``benchmarks/test_bench_*`` module regenerates one of the paper's
tables or figures at meaningful scale, prints the regenerated rows (run
with ``-s`` to see them), records headline numbers in
``benchmark.extra_info``, and asserts the paper's qualitative shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import pathlib


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact with a recognisable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


def emit_json(filename: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark artifact at the repo root.

    Used by the kernel perf-regression suite to emit
    ``BENCH_kernels.json`` (uploaded as a CI artifact and compared
    against the checked-in baseline). With ``$REPRO_ARCHIVE`` set the
    payload also lands in the cross-run archive as a ``kind="bench"``
    record, so ``repro history`` trends benchmark metrics alongside
    sweeps (docs/observability.md).
    """
    path = pathlib.Path(__file__).resolve().parent.parent / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    archive_dir = os.environ.get("REPRO_ARCHIVE")
    if archive_dir:
        try:
            from repro.obs.history import RunArchive, record_from_bench

            RunArchive(archive_dir).append(
                record_from_bench(path.stem, payload)
            )
        except Exception as exc:  # archiving never fails a benchmark
            print(f"warning: could not archive {path.stem}: {exc}")
    return path
