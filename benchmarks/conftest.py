"""Benchmark harness configuration.

Every ``benchmarks/test_bench_*`` module regenerates one of the paper's
tables or figures at meaningful scale, prints the regenerated rows (run
with ``-s`` to see them), records headline numbers in
``benchmark.extra_info``, and asserts the paper's qualitative shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact with a recognisable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
