"""Fig. 23 (Appendix A.1): carrier aggregation boosts peak throughput.

Paper shape: the S20U (X55 modem, 8CC downlink / 2CC uplink) clears
~3 Gbps down while the PX5 (X52, 4CC/1CC) tops out near 2.2 Gbps, a
50-60% improvement from the newer modem.
"""

from conftest import emit

from repro.experiments import format_table, run_carrier_aggregation


def test_fig23_carrier_aggregation(benchmark):
    result = benchmark.pedantic(run_carrier_aggregation, rounds=1, iterations=1)
    rows = result["rows"]
    emit(
        "Fig. 23: 4CC (PX5) vs 8CC (S20U) peak throughput",
        format_table(
            ["device", "modem", "DL CC", "DL cap", "DL single", "DL multi", "UL multi"],
            [
                (
                    r["device"],
                    r["modem"],
                    r["dl_cc"],
                    round(r["dl_mbps"], 0),
                    round(r["dl_single_mbps"], 0),
                    round(r["dl_multi_mbps"], 0),
                    round(r["ul_multi_mbps"], 0),
                )
                for r in rows
            ],
        ),
    )
    by_device = {r["device"]: r for r in rows}
    px5 = by_device["PX5"]
    s20u = by_device["S20U"]
    benchmark.extra_info["px5_dl"] = round(px5["dl_mbps"], 0)
    benchmark.extra_info["s20u_dl"] = round(s20u["dl_mbps"], 0)

    assert s20u["dl_mbps"] > 3000.0
    assert 1900.0 < px5["dl_mbps"] < 2400.0
    # 30-60% improvement from 8CC (paper: 50-60%).
    gain = s20u["dl_mbps"] / px5["dl_mbps"] - 1.0
    assert 0.3 <= gain <= 0.7
    assert s20u["ul_mbps"] > px5["ul_mbps"]
    # The connection-mode dimension: multi >= single on each device, and
    # the modem gap shows in both modes.
    for row in rows:
        assert row["dl_multi_mbps"] >= row["dl_single_mbps"] * 0.95
    assert s20u["dl_multi_mbps"] > px5["dl_multi_mbps"]
