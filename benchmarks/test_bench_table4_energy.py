"""Table 4: energy consumption of the interface-selection schemes.

Paper shape: 5G-aware (474.4 J) < 5G-aware-NO (475.0 J) < 5G-only
(495.0 J) — i.e. ~4.2% saving from the 5G-aware scheme, with the
no-overhead variant essentially tied.
"""

from conftest import emit

from repro.experiments import format_table, run_video_interface_selection


def test_table4_selection_energy(benchmark):
    result = benchmark.pedantic(
        lambda: run_video_interface_selection(
            n_pairs=16, n_chunks=50, duration_s=260, seed=8
        ),
        rounds=1,
        iterations=1,
    )
    summary = result["summary"]
    emit(
        "Table 4: energy by interface-selection scheme",
        format_table(
            ["scheme", "energy J (mean +- std)"],
            [
                (name, f"{stats['energy_j']:.1f} +- {stats['energy_std']:.1f}")
                for name, stats in summary.items()
            ],
        ),
    )
    only = summary["5G-only MPC"]["energy_j"]
    aware = summary["5G-aware MPC"]["energy_j"]
    saving = 100.0 * (1.0 - aware / only)
    benchmark.extra_info["energy_saving_pct"] = round(saving, 2)

    # 5G-aware saves energy vs always-5G (paper: 4.2%).
    assert aware < only
    assert 0.5 <= saving <= 15.0
    # The two 5G-aware variants are close (paper: 474.4 vs 475.0 J).
    no_overhead = summary["5G-aware MPC NO"]["energy_j"]
    assert abs(no_overhead - aware) / aware < 0.05
