"""Tables 3 and 9: software power monitor benchmarking.

Paper shape: the battery-API monitor always under-reports (81-92% of
the Monsoon reading at 1 Hz, 90-95% at 10 Hz), and the act of
monitoring itself costs ~0.65 W at 1 Hz / ~1.1 W at 10 Hz over idle.
"""

from conftest import emit

from repro.experiments import format_table, run_software_monitor


def test_table3_table9_software_monitor(benchmark):
    result = benchmark.pedantic(
        lambda: run_software_monitor(duration_s=25.0, calibration_duration_s=120.0),
        rounds=1,
        iterations=1,
    )
    t9 = result["table9_rows"]
    emit(
        "Table 9: SW/HW relative error by activity",
        format_table(
            ["activity", "@1Hz", "@10Hz"],
            [
                (r["activity"], f"{r['ratio_1hz']:.1%}", f"{r['ratio_10hz']:.1%}")
                for r in t9
            ],
        ),
    )
    t3 = result["table3_rows"]
    emit(
        "Table 3: monitoring overhead",
        format_table(
            ["activity", "average power mW"],
            [(r["activity"], round(r["power_mw"], 1)) for r in t3],
        ),
    )

    for row in t9:
        assert 0.75 <= row["ratio_1hz"] < 1.0, row["activity"]
        assert 0.85 <= row["ratio_10hz"] < 1.02, row["activity"]
        assert row["ratio_10hz"] > row["ratio_1hz"], row["activity"]

    overhead = {r["activity"]: r["power_mw"] for r in t3}
    assert overhead["Monitor on (1Hz)"] - overhead["Idle"] > 500.0
    assert overhead["Monitor on (10Hz)"] > overhead["Monitor on (1Hz)"]
    benchmark.extra_info["overhead_1hz_mw"] = round(
        overhead["Monitor on (1Hz)"] - overhead["Idle"], 0
    )
