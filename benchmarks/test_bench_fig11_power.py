"""Fig. 11/26: throughput vs power for 4G and 5G, with crossovers.

Paper shape: power linear in throughput for every radio; mmWave's line
is flattest but starts highest; crossovers vs 4G at ~187 Mbps DL /
~40 Mbps UL and vs low-band 5G at ~189 / ~123 Mbps (S20U).
"""

from conftest import emit

from repro.experiments import format_table, run_throughput_power


def test_fig11_throughput_power(benchmark):
    result = benchmark.pedantic(
        lambda: run_throughput_power(
            device_name="S20U", n_points=10, duration_s=6.0, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    sweeps = result["sweeps"]
    rows = []
    for key, sweep in sweeps.items():
        rows.append(
            (
                key,
                round(sweep["dl"]["slope"], 2),
                round(sweep["dl"]["intercept"], 0),
                round(sweep["ul"]["slope"], 2),
                round(sweep["ul"]["intercept"], 0),
            )
        )
    emit(
        "Fig. 11: fitted throughput-power lines (S20U)",
        format_table(["network", "DL slope", "DL intercept", "UL slope", "UL intercept"], rows),
    )

    crossings = result["crossovers"]
    cross_rows = [
        (f"{a} vs {b} ({d})", round(v, 1) if v else "none")
        for (a, b, d), v in crossings.items()
    ]
    emit("Fig. 11: crossover points", format_table(["pair", "Mbps"], cross_rows))

    dl_vs_lte = crossings[("verizon-nsa-mmwave", "verizon-lte", "dl")]
    dl_vs_lb = crossings[("verizon-nsa-mmwave", "verizon-nsa-lowband", "dl")]
    ul_vs_lte = crossings[("verizon-nsa-mmwave", "verizon-lte", "ul")]
    ul_vs_lb = crossings[("verizon-nsa-mmwave", "verizon-nsa-lowband", "ul")]
    benchmark.extra_info["dl_crossover_vs_4g"] = round(dl_vs_lte, 1)
    benchmark.extra_info["ul_crossover_vs_4g"] = round(ul_vs_lte, 1)

    # Paper: 187 / 189 Mbps DL, 40 / 123 Mbps UL.
    assert abs(dl_vs_lte - 187.0) < 25.0
    assert abs(dl_vs_lb - 189.0) < 25.0
    assert abs(ul_vs_lte - 40.0) < 10.0
    assert abs(ul_vs_lb - 123.0) < 25.0
    # mmWave has the flattest slope, LTE UL the steepest.
    assert sweeps["verizon-nsa-mmwave"]["dl"]["slope"] < sweeps["verizon-nsa-lowband"]["dl"]["slope"]
    assert sweeps["verizon-lte"]["ul"]["slope"] > sweeps["verizon-lte"]["dl"]["slope"]
