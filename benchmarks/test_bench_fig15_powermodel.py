"""Fig. 15: power-model MAPE comparison across the five settings.

Paper shape: TH+SS (the paper's model) always wins; SS-only is far
worse, especially on mmWave (high-band); TH-only sits between; and the
software monitor, after DTR calibration, reaches comparable MAPE with
10 Hz beating 1 Hz.
"""

from conftest import emit

from repro.experiments import format_table, run_power_models, run_software_monitor


def test_fig15_power_models(benchmark):
    def run():
        models = run_power_models(n_train=6, n_test=2, seed=5)
        software = run_software_monitor(duration_s=15.0, calibration_duration_s=150.0)
        return models, software

    models, software = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = models["rows"]
    emit(
        "Fig. 15 (left): MAPE by model and setting",
        format_table(
            ["setting", "TH+SS", "TH", "SS", "linear TH+SS"],
            [
                (
                    r["setting"],
                    round(r["TH+SS"], 2),
                    round(r["TH"], 2),
                    round(r["SS"], 2),
                    round(r["linear TH+SS"], 2),
                )
                for r in rows
            ],
        ),
    )
    calibration = software["calibration"]
    emit(
        "Fig. 15 (right) / Fig. 16: software monitor calibration",
        format_table(
            ["rate", "MAPE before", "MAPE after"],
            [
                (k, round(v["mape_before"], 2), round(v["mape_after"], 2))
                for k, v in calibration.items()
            ],
        ),
    )

    for row in rows:
        # TH+SS never loses to TH or SS.
        assert row["TH+SS"] <= row["TH"] + 0.3, row["setting"]
        assert row["TH+SS"] < row["SS"], row["setting"]
        # All models stay in the paper's sub-15% MAPE regime.
        assert row["TH+SS"] < 8.0

    # SS is especially bad on mmWave (high-band) settings.
    hb = [r for r in rows if "HB" in r["setting"]]
    lb = [r for r in rows if "LB" in r["setting"]]
    assert all(r["SS"] > 1.4 * r["TH+SS"] for r in hb)

    # DTR beats the linear multi-factor model on mmWave settings.
    assert all(r["linear TH+SS"] > r["TH+SS"] for r in hb)

    # Calibrated software monitor reaches comparable (few-%) MAPE at
    # both rates; the paper's 10Hz-vs-1Hz edge is within run-to-run
    # noise here, so only comparability is asserted.
    assert calibration["SW-10Hz"]["mape_after"] < 5.0
    assert calibration["SW-1Hz"]["mape_after"] < 5.0
    for v in calibration.values():
        assert v["mape_after"] < v["mape_before"]

    benchmark.extra_info["thss_mape_hb"] = round(hb[0]["TH+SS"], 2)
