"""Fig. 19/20/21: web PLT and energy over mmWave 5G vs 4G.

Paper shape: 5G always loads faster, but 4G always consumes less
energy; the PLT gap grows with object count and page size while the
energy gap moves the other way; accepting even a small PLT penalty by
choosing 4G yields large (~70% at <=10% penalty) energy savings.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_web_factors


def test_fig19_21_web_factors(benchmark):
    result = benchmark.pedantic(
        lambda: run_web_factors(n_sites=600, seed=1), rounds=1, iterations=1
    )
    dataset = result["dataset"]

    emit(
        "Fig. 19a: impact of object count",
        format_table(
            ["bucket", "n", "4G PLT", "5G PLT", "4G E(J)", "5G E(J)"],
            [
                (
                    r["bucket"],
                    r["n"],
                    round(r["plt_4g"], 2),
                    round(r["plt_5g"], 2),
                    round(r["energy_4g"], 2),
                    round(r["energy_5g"], 2),
                )
                for r in result["fig19_objects"]
                if r["n"] > 0
            ],
        ),
    )
    emit(
        "Fig. 21: energy saving vs PLT penalty of choosing 4G",
        format_table(
            ["penalty bucket %", "n", "energy saving %"],
            [
                (r["penalty_bucket"], r["n"], round(r["energy_saving_percent"], 1))
                for r in result["fig21"]
            ],
        ),
    )

    # Fig. 20 CDF relationships (rare tiny-page jitter exceptions allowed).
    assert (dataset.plt_5g < dataset.plt_4g).mean() > 0.99
    assert (dataset.energy_4g < dataset.energy_5g).mean() > 0.99
    benchmark.extra_info["median_plt_4g"] = round(float(np.median(dataset.plt_4g)), 2)
    benchmark.extra_info["median_plt_5g"] = round(float(np.median(dataset.plt_5g)), 2)

    # Fig. 19: the 4G-5G PLT gap grows with object count and page size.
    for key in ("fig19_objects", "fig19_size"):
        rows = [r for r in result[key] if r["n"] > 5]
        gaps = [r["plt_4g"] - r["plt_5g"] for r in rows]
        assert gaps[-1] > gaps[0], key
        # Energy points the other way in every bucket.
        assert all(r["energy_5g"] > r["energy_4g"] for r in rows), key

    # Fig. 21: small penalty, large saving; savings shrink with penalty.
    buckets = [r for r in result["fig21"] if r["n"] > 3]
    assert buckets[0]["energy_saving_percent"] > 50.0
    assert buckets[0]["energy_saving_percent"] >= buckets[-1]["energy_saving_percent"]
    benchmark.extra_info["saving_at_small_penalty"] = round(
        buckets[0]["energy_saving_percent"], 1
    )
