"""End-to-end jobs-per-second: batch leases vs process-per-job dispatch.

The dispatch-layer acceptance gate for the batch-lease executor
(docs/performance.md "Dispatch & backends"). Two sweeps are timed
through ``execute()`` at 4 workers under both dispatch modes:

* ``test.sleep`` at 0s — pure dispatch overhead, the "kill per-job
  overhead" headline. Batch leases must deliver >=10x jobs/s over the
  process-per-job path.
* ``fig2`` repetitions at small scale — a real artifact runner whose
  ~0.3 ms of compute rides along. On a multi-core box the workers
  overlap that compute and the >=10x gate applies; on a single-core
  box child compute serializes with parent dispatch, capping the
  achievable ratio near (per-job overhead / compute), so the floor
  drops to 4x there (the measured ratio is still recorded honestly).

Bit-identity is asserted alongside throughput: serial, per-job, and
batched dispatch must produce byte-identical JSON for the fig2 sweep.

Emits ``BENCH_engine_jps.json`` at the repo root and fails if either
sweep's batch/per-job ratio regresses below half its checked-in
baseline (``benchmarks/baselines/BENCH_engine_jps_baseline.json``) —
ratios, not wall-clock, so the gate is stable across machines.

Scale down for smoke runs with ``BENCH_JPS_JOBS`` (CI uses 192; below
~128 jobs the 4 warm-worker spawns stop amortizing and the ratios
degrade for reasons that have nothing to do with dispatch).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import emit, emit_json

from repro.engine import SweepSpec, execute
from repro.engine.shm import active_segments
from repro.experiments.export import to_jsonable

N_JOBS = int(os.environ.get("BENCH_JPS_JOBS", "256"))
WORKERS = 4
FIG2_SCALE = 0.05
IDENTITY_JOBS = 16
BASELINE = (
    pathlib.Path(__file__).resolve().parent
    / "baselines"
    / "BENCH_engine_jps_baseline.json"
)
# A sweep regresses if its ratio drops below baseline / this factor.
REGRESSION_FACTOR = 2.0
MULTI_CORE = (os.cpu_count() or 1) >= 2


def _sweep(runners, n, **kwargs) -> list:
    return SweepSpec(
        runners=runners, repetitions=n, base_seed=11, **kwargs
    ).expand()


def _jobs_per_sec(jobs, dispatch: str, repeats: int = 2) -> float:
    """Best-of-``repeats`` throughput for one dispatch mode."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute(jobs, workers=WORKERS, dispatch=dispatch)
        best = min(best, time.perf_counter() - start)
        result.raise_if_failed()
    return len(jobs) / best


def _measure() -> dict:
    sweeps = {
        "sleep": _sweep(
            ["test.sleep"], N_JOBS, base_kwargs={"duration_s": 0.0}
        ),
        "fig2": _sweep(["fig2"], N_JOBS, scale=FIG2_SCALE),
    }
    results = {}
    for name, jobs in sweeps.items():
        per_job = _jobs_per_sec(jobs, "per-job")
        batch = _jobs_per_sec(jobs, "batch")
        results[name] = {
            "n_jobs": len(jobs),
            "per_job_jps": round(per_job, 1),
            "batch_jps": round(batch, 1),
            "ratio": round(batch / per_job, 2),
        }
    return results


def test_engine_jobs_per_second(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Dispatch must never change results: serial == per-job == batch,
    # byte-for-byte, on the default (numpy64) backend.
    identity_jobs = _sweep(["fig2"], IDENTITY_JOBS, scale=FIG2_SCALE)
    canon = {}
    for mode, workers in (
        ("serial", 1), ("per-job", WORKERS), ("batch", WORKERS),
    ):
        result = execute(identity_jobs, workers=workers, dispatch=(
            "auto" if workers == 1 else mode
        ))
        result.raise_if_failed()
        canon[mode] = json.dumps(to_jsonable(result.values()), sort_keys=True)
    assert canon["serial"] == canon["per-job"] == canon["batch"]
    # The batched runs must not leak shared-memory segments.
    assert active_segments() == ()

    payload = {
        "n_jobs": N_JOBS,
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "fig2_scale": FIG2_SCALE,
        "serial_identity": True,
        "sweeps": results,
    }
    path = emit_json("BENCH_engine_jps.json", payload)

    lines = [f"{'sweep':<8}{'per-job':>12}{'batch':>12}{'ratio':>8}"]
    for name, entry in results.items():
        lines.append(
            f"{name:<8}{entry['per_job_jps']:>10.1f}/s"
            f"{entry['batch_jps']:>10.1f}/s{entry['ratio']:>7.1f}x"
        )
    lines.append(f"written to {path.name}")
    emit(
        f"Engine dispatch throughput ({N_JOBS} jobs, {WORKERS} workers)",
        "\n".join(lines),
    )
    for name, entry in results.items():
        benchmark.extra_info[f"{name}_ratio"] = entry["ratio"]

    # The tentpole's acceptance floors.
    assert results["sleep"]["ratio"] >= 10.0, results["sleep"]
    fig2_floor = 10.0 if MULTI_CORE else 4.0
    assert results["fig2"]["ratio"] >= fig2_floor, (
        f"fig2 batch/per-job ratio {results['fig2']['ratio']}x below "
        f"{fig2_floor}x floor (cpus={os.cpu_count()}): {results['fig2']}"
    )

    # Perf-regression gate against the checked-in baseline.
    baseline = json.loads(BASELINE.read_text())["sweeps"]
    for name, entry in results.items():
        floor = baseline[name]["ratio"] / REGRESSION_FACTOR
        assert entry["ratio"] >= floor, (
            f"{name} dispatch ratio {entry['ratio']}x regressed below "
            f"{floor:.1f}x (baseline {baseline[name]['ratio']}x / "
            f"{REGRESSION_FACTOR})"
        )
