"""Fig. 12/27: throughput vs energy efficiency (log-log).

Paper shape: energy-per-bit falls with throughput for every radio; 5G
is far less efficient than 4G at low rates but up to several times
more efficient at rates only 5G can reach.
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table, run_energy_efficiency, run_throughput_power


def test_fig12_energy_efficiency(benchmark):
    def run():
        sweep = run_throughput_power(
            device_name="S20U", n_points=10, duration_s=6.0, seed=0
        )
        return sweep, run_energy_efficiency(throughput_power=sweep)

    sweep, result = benchmark.pedantic(run, rounds=1, iterations=1)
    curves = result["curves"]

    mm = curves[("verizon-nsa-mmwave", "dl")]
    lte = curves[("verizon-lte", "dl")]
    emit(
        "Fig. 12: mmWave DL energy efficiency",
        format_table(
            ["throughput Mbps", "efficiency (mW/Mbps)"],
            [(round(t, 1), round(e, 1)) for t, e in zip(mm["throughput"], mm["efficiency"])],
        ),
    )

    # Efficiency improves (number drops) with throughput for each radio.
    for curve in curves.values():
        assert curve["efficiency"][0] > curve["efficiency"][-1]

    # At comparable low throughput, 5G is less efficient than 4G...
    mm_low = mm["efficiency"][0]
    lte_low = np.interp(mm["throughput"][0], lte["throughput"], lte["efficiency"])
    assert mm_low > lte_low
    benchmark.extra_info["mm_low_penalty"] = round(float(mm_low / lte_low), 2)

    # ...but at its top rates mmWave beats 4G's *best* efficiency.
    mm_high = mm["efficiency"][-1]
    lte_best = lte["efficiency"][-1]
    assert mm_high < lte_best
    benchmark.extra_info["mm_high_gain"] = round(float(lte_best / mm_high), 2)
    # Paper: up to ~5x more efficient; allow 2-8x.
    assert 2.0 <= lte_best / mm_high <= 8.0
