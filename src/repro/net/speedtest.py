"""Speedtest harness: the paper's peak-performance methodology.

For each <UE-model, carrier, server> setting the paper repeats the test
>= 10 times per connection mode and reports the 95th percentile —
deliberately a *peak* metric that suppresses transient congestion
(section 3.1). :class:`SpeedtestHarness` reproduces that pipeline on
top of the radio link budget, the latency model, and the fluid
transport flows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.net.latency import LatencyModel
from repro.net.servers import SpeedtestServer
from repro.power.device import DeviceProfile
from repro.radio.carriers import CarrierNetwork
from repro.radio.link import LinkBudget
from repro.transport.aggregate import MultiConnection
from repro.transport.flow import TcpFlow
from repro.transport.tuning import KernelConfig

# Speedtest servers are well provisioned; their kernels carry large
# buffers (the single-connection distance decay in Fig. 3 comes from
# CUBIC loss recovery at high BDP, not from server buffers alone).
_SERVER_KERNEL = KernelConfig(name="speedtest-server", tcp_wmem_max_bytes=16 * 1024 * 1024)

# Typical stationary LoS RSRP for outdoor tests, by band class.
_TEST_RSRP_DBM = {"mmWave": -76.0, "low-band": -84.0, "mid-band": -84.0}


class ConnectionMode(enum.Enum):
    """Speedtest connection modes (section 3.1)."""

    SINGLE = "single"
    MULTIPLE = "multiple"


@dataclass
class SpeedtestResult:
    """One Speedtest session's report."""

    server: SpeedtestServer
    mode: ConnectionMode
    distance_km: float
    rtt_ms: float
    downlink_mbps: float
    uplink_mbps: float
    n_connections: int


@dataclass
class SpeedtestHarness:
    """Runs repeated Speedtest sessions and reports peak (p95) results.

    Attributes:
        network: serving carrier network.
        device: UE model (modem caps carrier aggregation).
        ue_lat, ue_lon: UE coordinates (defaults to Minneapolis).
        seed: RNG seed.
    """

    network: CarrierNetwork
    device: DeviceProfile
    ue_lat: float = 44.9778
    ue_lon: float = -93.2650
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _link(self) -> LinkBudget:
        return LinkBudget(self.network, self.device.modem)

    def _test_rsrp(self) -> float:
        nominal = _TEST_RSRP_DBM[self.network.band.band_class.value]
        return float(nominal + self._rng.normal(0.0, 2.0))

    def run_session(
        self, server: SpeedtestServer, mode: ConnectionMode
    ) -> SpeedtestResult:
        """One full Speedtest session: latency, downlink, uplink."""
        distance = server.distance_km_from(self.ue_lat, self.ue_lon)
        latency = LatencyModel(
            self.network, seed=int(self._rng.integers(0, 2**31))
        )
        rtt = latency.min_rtt_ms(distance)
        # Internet-side routing to third-party servers adds capacity
        # haircuts (Fig. 24's ~10% penalty vs the carrier's own server).
        internet_factor = 1.0 if server.hosted_by == "carrier" else 0.90
        link = self._link()
        rsrp = self._test_rsrp()

        dl = self._directional(server, mode, rtt, link, rsrp, internet_factor, True)
        ul = self._directional(server, mode, rtt, link, rsrp, internet_factor, False)
        n_conn = 1 if mode is ConnectionMode.SINGLE else int(self._rng.integers(15, 26))
        return SpeedtestResult(
            server=server,
            mode=mode,
            distance_km=distance,
            rtt_ms=rtt,
            downlink_mbps=dl,
            uplink_mbps=ul,
            n_connections=n_conn,
        )

    def _directional(
        self,
        server: SpeedtestServer,
        mode: ConnectionMode,
        rtt_ms: float,
        link: LinkBudget,
        rsrp_dbm: float,
        internet_factor: float,
        downlink: bool,
    ) -> float:
        capacity = link.capacity_mbps(rsrp_dbm, downlink=downlink) * internet_factor
        if server.capacity_cap_mbps is not None:
            capacity = min(capacity, server.capacity_cap_mbps)
        if capacity <= 0:
            return 0.0
        seed = int(self._rng.integers(0, 2**31))
        if mode is ConnectionMode.MULTIPLE:
            agg = MultiConnection(
                n_connections=int(self._rng.integers(15, 26)),
                rtt_ms=rtt_ms,
                kernel=_SERVER_KERNEL,
                seed=seed,
            )
            return agg.run(capacity, duration_s=12.0).throughput_mbps
        flow = TcpFlow(rtt_ms=rtt_ms, kernel=_SERVER_KERNEL, seed=seed)
        return flow.steady_state_mbps(capacity, duration_s=15.0)

    def run_setting(
        self,
        server: SpeedtestServer,
        mode: ConnectionMode,
        repetitions: int = 10,
    ) -> List[SpeedtestResult]:
        """>= 10 repetitions per setting, as in section 3.1."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        return [self.run_session(server, mode) for _ in range(repetitions)]

    @staticmethod
    def peak(results: List[SpeedtestResult]) -> SpeedtestResult:
        """95th-percentile summary of repeated sessions.

        RTT is summarised with the *minimum* (best ping) while the
        throughputs take the 95th percentile, mirroring the paper.
        """
        if not results:
            raise ValueError("no results to summarise")
        dls = np.array([r.downlink_mbps for r in results])
        uls = np.array([r.uplink_mbps for r in results])
        rtts = np.array([r.rtt_ms for r in results])
        template = results[0]
        return SpeedtestResult(
            server=template.server,
            mode=template.mode,
            distance_km=template.distance_km,
            rtt_ms=float(np.min(rtts)),
            downlink_mbps=float(np.percentile(dls, 95)),
            uplink_mbps=float(np.percentile(uls, 95)),
            n_connections=template.n_connections,
        )
