"""Network measurement substrate: latency, servers, Speedtest, iPerf.

Models the paper's end-to-end measurement methodology (section 3.1):
Ookla-style Speedtest against carrier-hosted and third-party servers,
controlled Azure VM experiments with tunable transport settings, and
iPerf3-style controlled-rate UDP for the power experiments.
"""

from repro.net.latency import LatencyModel
from repro.net.servers import (
    AZURE_REGIONS,
    AzureRegion,
    SpeedtestServer,
    carrier_server_pool,
    minnesota_server_pool,
)
from repro.net.speedtest import ConnectionMode, SpeedtestHarness, SpeedtestResult
from repro.net.iperf import IperfResult, IperfUdp

__all__ = [
    "AZURE_REGIONS",
    "AzureRegion",
    "ConnectionMode",
    "IperfResult",
    "IperfUdp",
    "LatencyModel",
    "SpeedtestHarness",
    "SpeedtestResult",
    "SpeedtestServer",
    "carrier_server_pool",
    "minnesota_server_pool",
]
