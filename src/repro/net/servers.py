"""Server pools: carrier-hosted Speedtest servers, the Minnesota
third-party survey set (Fig. 24), and Azure US regions (Fig. 8).

Both carriers host Speedtest servers in major metros (Verizon 48,
T-Mobile 47 in the paper); we model a representative metro subset with
real coordinates so UE-server great-circle distances are faithful. The
Minnesota pool reproduces Fig. 24's finding that many third-party
servers are capped near 1 or 2 Gbps by NIC/switch-port limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mobility.geo import haversine_km

# (city, state, lat, lon)
_METROS: Tuple[Tuple[str, str, float, float], ...] = (
    ("Minneapolis", "MN", 44.9778, -93.2650),
    ("Chicago", "IL", 41.8781, -87.6298),
    ("Detroit", "MI", 42.3314, -83.0458),
    ("St. Louis", "MO", 38.6270, -90.1994),
    ("Kansas City", "MO", 39.0997, -94.5786),
    ("Denver", "CO", 39.7392, -104.9903),
    ("Dallas", "TX", 32.7767, -96.7970),
    ("Houston", "TX", 29.7604, -95.3698),
    ("Atlanta", "GA", 33.7490, -84.3880),
    ("Miami", "FL", 25.7617, -80.1918),
    ("New York", "NY", 40.7128, -74.0060),
    ("Boston", "MA", 42.3601, -71.0589),
    ("Philadelphia", "PA", 39.9526, -75.1652),
    ("Washington", "DC", 38.9072, -77.0369),
    ("Phoenix", "AZ", 33.4484, -112.0740),
    ("Salt Lake City", "UT", 40.7608, -111.8910),
    ("Seattle", "WA", 47.6062, -122.3321),
    ("Portland", "OR", 45.5152, -122.6784),
    ("San Francisco", "CA", 37.7749, -122.4194),
    ("Los Angeles", "CA", 34.0522, -118.2437),
)

# Minneapolis is the UE's home city in the Verizon experiments.
UE_HOME = ("Minneapolis", 44.9778, -93.2650)


@dataclass(frozen=True)
class SpeedtestServer:
    """One Speedtest server.

    Attributes:
        name: provider label, e.g. ``"Verizon, Minneapolis"``.
        city, state: location labels.
        lat, lon: coordinates for distance computation.
        hosted_by: ``"carrier"`` or a third-party provider class.
        capacity_cap_mbps: server-side throughput bound (NIC/switch
            port, Fig. 24); None means effectively unlimited.
    """

    name: str
    city: str
    state: str
    lat: float
    lon: float
    hosted_by: str = "carrier"
    capacity_cap_mbps: Optional[float] = None

    def distance_km_from(self, lat: float, lon: float) -> float:
        return haversine_km(lat, lon, self.lat, self.lon)


def carrier_server_pool(carrier_name: str) -> List[SpeedtestServer]:
    """Carrier-hosted servers across major US metros."""
    return [
        SpeedtestServer(
            name=f"{carrier_name}, {city}",
            city=city,
            state=state,
            lat=lat,
            lon=lon,
            hosted_by="carrier",
        )
        for city, state, lat, lon in _METROS
    ]


def minnesota_server_pool() -> List[SpeedtestServer]:
    """The Fig. 24 survey: 37 Speedtest servers in Minnesota.

    The carrier's own Minneapolis server is uncapped (>3 Gbps); most
    ISP/organisation servers reach ~2.8 Gbps (extra routing), several
    are bound near 2 Gbps, and a handful near 1 Gbps.
    """
    servers: List[SpeedtestServer] = [
        SpeedtestServer(
            name="Verizon, Minneapolis",
            city="Minneapolis",
            state="MN",
            lat=44.9778,
            lon=-93.2650,
            hosted_by="carrier",
        )
    ]
    # 23 well-provisioned third-party servers (servers 2-24 in Fig. 24).
    third_party_cities = [
        ("Hennepin H., Minneapolis", 44.973, -93.262),
        ("Sprint, St. Paul", 44.9537, -93.0900),
        ("Carleton C., Northfield", 44.4583, -93.1616),
        ("CenturyLink, St. Paul", 44.9504, -93.0930),
        ("Midco, Cambridge", 45.5727, -93.2244),
        ("NetINS, Minneapolis", 44.98, -93.27),
        ("Fibernet M., Monticello", 45.3055, -93.7941),
        ("US Internet, Minneapolis", 44.96, -93.27),
        ("Paul Bunyan, Minneapolis", 44.97, -93.26),
        ("Metronet, Rochester", 44.0121, -92.4802),
        ("Gigabit Mi., Rosemount", 44.7394, -93.1258),
        ("Arvig, Perham", 46.5944, -95.5728),
        ("West Central, Sebeka", 46.6280, -95.0892),
        ("Spectrum, St Cloud", 45.5579, -94.1632),
        ("CTC, Brainerd", 46.3580, -94.2008),
        ("Hiawatha B., Winona", 44.0499, -91.6393),
        ("CenturyLink, Rochester", 44.0121, -92.4802),
        ("Midco, Bemidji", 47.4716, -94.8827),
        ("Midco, Fairmont", 43.6522, -94.4611),
        ("Midco, St. Joseph", 45.5641, -94.3183),
        ("Paul Bunyan, Bemidji", 47.4716, -94.8827),
        ("702 Comm., Moorhead", 46.8738, -96.7678),
        ("fdcservers, Minneapolis", 44.9778, -93.2650),
    ]
    for name, lat, lon in third_party_cities:
        servers.append(
            SpeedtestServer(
                name=name,
                city=name.split(", ")[-1],
                state="MN",
                lat=lat,
                lon=lon,
                hosted_by="third-party",
            )
        )
    # Servers bound near 2 Gbps (25-28 in Fig. 24).
    capped_2g = [
        ("Vibrant Br., Litchfield", 45.1272, -94.5283),
        ("Midco, International Falls", 48.6023, -93.4040),
        ("Gustavus A., Saint Peter", 44.3236, -93.9711),
        ("AcenTek, Houston", 43.7633, -91.5682),
    ]
    for name, lat, lon in capped_2g:
        servers.append(
            SpeedtestServer(
                name=name,
                city=name.split(", ")[-1],
                state="MN",
                lat=lat,
                lon=lon,
                hosted_by="third-party",
                capacity_cap_mbps=2000.0,
            )
        )
    # Servers bound near 1 Gbps (29-33).
    capped_1g = [
        ("Radio Link, Ellendale", 43.8730, -93.3008),
        ("Albany Mut., Albany", 45.6297, -94.5700),
        ("Paul Bunyan, Duluth", 46.7867, -92.1005),
        ("Stellar As., Brandon", 45.9652, -95.5989),
        ("Nuvera, New Ulm", 44.3125, -94.4605),
    ]
    for name, lat, lon in capped_1g:
        servers.append(
            SpeedtestServer(
                name=name,
                city=name.split(", ")[-1],
                state="MN",
                lat=lat,
                lon=lon,
                hosted_by="third-party",
                capacity_cap_mbps=1000.0,
            )
        )
    # Remaining smaller sites (34-37) with sub-gigabit provisioning.
    small = [
        ("Halstad Te., Halstad", 47.3514, -96.8284, 900.0),
        ("vRad, Eden Prairie", 44.8547, -93.4708, 850.0),
        ("Northeast, Mountain Iron", 47.5324, -92.6238, 800.0),
        ("Midco, Ely", 47.9032, -91.8671, 750.0),
    ]
    for name, lat, lon, cap in small:
        servers.append(
            SpeedtestServer(
                name=name,
                city=name.split(", ")[-1],
                state="MN",
                lat=lat,
                lon=lon,
                hosted_by="third-party",
                capacity_cap_mbps=cap,
            )
        )
    return servers


@dataclass(frozen=True)
class AzureRegion:
    """An Azure US region with its distance from the Minneapolis UE
    (Fig. 8's x-axis labels)."""

    name: str
    distance_km: float


AZURE_REGIONS: Tuple[AzureRegion, ...] = (
    AzureRegion("Central", 374.0),
    AzureRegion("North Central", 563.0),
    AzureRegion("East", 1393.0),
    AzureRegion("West Central", 1444.0),
    AzureRegion("East2", 1539.0),
    AzureRegion("South Central", 1779.0),
    AzureRegion("West2", 2044.0),
    AzureRegion("West", 2532.0),
)


def choose_default_server(
    servers: List[SpeedtestServer], ue_lat: float, ue_lon: float
) -> SpeedtestServer:
    """Speedtest's default server-selection policy (section 3.1).

    The client picks a geographically nearby server with the least
    round-trip latency; with our distance-dominated latency model that
    reduces to the nearest server.
    """
    if not servers:
        raise ValueError("server pool is empty")
    return min(servers, key=lambda s: s.distance_km_from(ue_lat, ue_lon))
