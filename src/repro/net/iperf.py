"""iPerf3-style controlled-rate UDP transfer (power experiments).

The paper's throughput-power characterisation (section 4.3) runs UDP
transfers at controlled target rates while the Monsoon samples power.
:class:`IperfUdp` produces the achieved-rate time series: the target is
met unless the instantaneous radio capacity dips below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.radio.carriers import CarrierNetwork
from repro.radio.link import LinkBudget
from repro.radio.signal import RsrpProcess
from repro.power.device import DeviceProfile


@dataclass
class IperfResult:
    """Outcome of a controlled-rate transfer."""

    target_mbps: float
    achieved_mbps: np.ndarray  # per-interval rates
    rsrp_dbm: np.ndarray
    interval_s: float
    downlink: bool

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self.achieved_mbps))

    @property
    def duration_s(self) -> float:
        return self.achieved_mbps.shape[0] * self.interval_s


@dataclass
class IperfUdp:
    """Controlled UDP sender against a simulated radio link.

    Attributes:
        network: serving network.
        device: UE model.
        tower_distance_m: distance to the serving panel (the paper holds
            the phone at a fixed LoS spot).
        interval_s: reporting interval.
        seed: RNG seed.
    """

    network: CarrierNetwork
    device: DeviceProfile
    tower_distance_m: float = 80.0
    interval_s: float = 1.0
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.tower_distance_m <= 0:
            raise ValueError("tower_distance_m must be positive")
        self._rng = np.random.default_rng(self.seed)

    def run(
        self,
        target_mbps: float,
        duration_s: float = 30.0,
        downlink: bool = True,
        speed_mps: float = 0.0,
    ) -> IperfResult:
        """Transfer at ``target_mbps`` for ``duration_s``.

        Runs on the batched kernels: one :meth:`RsrpProcess.simulate`
        call for the whole RSRP series and one ufunc capacity pass.
        """
        if target_mbps < 0:
            raise ValueError("target_mbps must be non-negative")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        steps = int(round(duration_s / self.interval_s))
        signal = RsrpProcess(
            self.network.band,
            dt_s=self.interval_s,
            seed=int(self._rng.integers(0, 2**31)),
        )
        link = LinkBudget(self.network, self.device.modem)
        rsrps = signal.simulate(
            np.full(steps, self.tower_distance_m), speed_mps
        )
        rates = np.minimum(
            target_mbps, link.capacity_series_mbps(rsrps, downlink=downlink)
        )
        return IperfResult(
            target_mbps=target_mbps,
            achieved_mbps=rates,
            rsrp_dbm=rsrps,
            interval_s=self.interval_s,
            downlink=downlink,
        )
