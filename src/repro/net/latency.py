"""End-to-end RTT model: radio floor + wired distance + jitter.

Calibrated to the paper's Fig. 1/2/5: ~6 ms RTT to the closest
carrier-hosted server (~3 km) on mmWave, roughly doubling by ~320 km,
and ~60 ms coast-to-coast (~2500 km). Low-band 5G adds 6-8 ms over
mmWave (wider-spaced OFDM symbols -> longer slots); LTE adds another
6-15 ms over 5G.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.radio.carriers import CarrierNetwork

# Fiber RTT per km of great-circle distance: ~5 us/km one way in glass,
# x2 directions, x~1.7 route stretch -> ~0.021 ms/km, matching the
# paper's doubling point near 320 km from a 6 ms floor.
WIRED_MS_PER_KM = 0.021


@dataclass
class LatencyModel:
    """RTT generator for a (carrier network, server distance) pair.

    Attributes:
        network: serving carrier network (provides the radio RTT floor).
        jitter_ms: std-dev of the log-normal-ish positive jitter term.
        seed: RNG seed.
    """

    network: CarrierNetwork
    jitter_ms: float = 1.5
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def base_rtt_ms(self, distance_km: float) -> float:
        """Deterministic RTT component (no jitter)."""
        if distance_km < 0:
            raise ValueError("distance_km must be non-negative")
        return self.network.rtt_floor_ms + WIRED_MS_PER_KM * distance_km

    def sample_rtt_ms(self, distance_km: float, n: int = 1) -> np.ndarray:
        """``n`` jittered RTT samples (ping measurements)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        base = self.base_rtt_ms(distance_km)
        jitter = np.abs(self._rng.normal(0.0, self.jitter_ms, size=n))
        # Occasional routing detours inflate the tail.
        detours = self._rng.random(n) < 0.05
        jitter = jitter + detours * self._rng.uniform(2.0, 10.0, size=n)
        return base + jitter

    def min_rtt_ms(self, distance_km: float, n: int = 10) -> float:
        """Best-of-n RTT, the Speedtest-style latency report."""
        return float(np.min(self.sample_rtt_ms(distance_km, n=n)))
