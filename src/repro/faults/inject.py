"""Runtime fault actions: what actually breaks when a plan says so.

:func:`apply_worker_faults` is called by the pool's per-job code path
(:func:`repro.engine.pool._execute_payload`) once per attempt, inside
the armed job timeout, so:

* ``crash`` kills the worker process outright (``os._exit``) — no
  cleanup, no result record, exactly like a segfault or OOM kill. In
  serial mode (the job runs in the parent) it degrades to raising
  :class:`~repro.engine.errors.WorkerCrashError` instead, because
  killing the orchestrating process would take the sweep down with it.
* ``hang`` stalls past the job's wall-clock budget; the worker-side
  SIGALRM timeout (or, if that is defeated, the parent watchdog)
  reclaims the job.
* ``transient`` raises :class:`InjectedTransientError`, a
  :class:`~repro.engine.errors.TransientJobError` subclass, exercising
  the bounded retry-with-backoff path.

Everything here is invoked lazily from the engine, so sweeps without a
fault plan never import this module.
"""

from __future__ import annotations

import os
import time

from repro.engine.errors import TransientJobError, WorkerCrashError
from repro.faults.plan import FaultPlan

#: Exit code an injected crash dies with (recognisable in ledgers and
#: CI logs; any abnormal exit is treated the same by the engine).
CRASH_EXIT_CODE = 73


class InjectedTransientError(TransientJobError):
    """A transient failure raised by the fault injector."""


def apply_worker_faults(
    plan: FaultPlan,
    *,
    index: int,
    runner: str,
    attempt: int,
    in_worker: bool,
) -> None:
    """Apply any worker-side fault the plan schedules for this attempt."""
    if plan.decide("crash", index=index, runner=runner, attempt=attempt):
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected worker crash for job #{index} "
            "(simulated in-process: serial executor)"
        )
    hang = plan.decide("hang", index=index, runner=runner, attempt=attempt)
    if hang is not None:
        # A plain sleep: the armed SIGALRM interrupts it with
        # JobTimeoutError when a timeout is configured; without one the
        # stall runs its full course — a hang fault is only meaningful
        # under a timeout or the parent watchdog.
        time.sleep(float(hang.hang_s))
    if plan.decide("transient", index=index, runner=runner, attempt=attempt):
        raise InjectedTransientError(
            f"injected transient fault (job #{index}, attempt {attempt})"
        )
