"""File-corruption primitives shared by the injector, tests, and CI.

These reproduce the on-disk damage real campaigns see — a cache entry
truncated by a mid-write power cut, a ledger line torn by a killed
process, a file scribbled over by a buggy tool — so recovery paths are
exercised against the same byte patterns they must survive in the
field. All helpers operate in place and are idempotent-ish: corrupting
an already-corrupt file just corrupts it differently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def truncate_tail(path: PathLike, keep_fraction: float = 0.5) -> int:
    """Drop the tail of ``path`` (a torn write); returns bytes kept.

    Keeps at least one byte so the result is a *partial* record, not an
    empty file — the harder case for readers that special-case zero
    length.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be within [0, 1]")
    path = Path(path)
    data = path.read_bytes()
    keep = max(1, int(len(data) * keep_fraction)) if data else 0
    path.write_bytes(data[:keep])
    return keep


def scribble(path: PathLike, garbage: bytes = b"\x00\xffnot json{") -> None:
    """Overwrite ``path`` with bytes that are not valid JSON."""
    Path(path).write_bytes(garbage)


def tear_final_line(path: PathLike, keep_fraction: float = 0.5) -> None:
    """Tear the last line of a JSONL file mid-record.

    Simulates a process killed while appending: every earlier line
    stays intact, the final one is cut partway and loses its newline.
    """
    path = Path(path)
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    if not lines:
        return
    last = lines[-1].rstrip("\n")
    torn = last[: max(1, int(len(last) * keep_fraction))] if last else ""
    path.write_text("".join(lines[:-1]) + torn)
