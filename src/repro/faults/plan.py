"""Deterministic fault plans: what to break, where — reproducibly.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec`
entries, each naming one fault *kind* plus a site selector (explicit
job indices, runner names, attempt budget) and an optional injection
``rate``. Probabilistic decisions are derived from
:class:`numpy.random.SeedSequence` over ``(plan seed, kind, job index,
attempt)``, never from global RNG state or wall-clock, so the same
plan breaks the same jobs in the same way on every run, regardless of
worker count or completion order — a chaos run is as replayable as a
clean one.

Worker-relevant specs cross the process boundary as plain dicts
(:meth:`FaultPlan.worker_payload` / :meth:`FaultPlan.from_payload`),
mirroring how job specs themselves travel. Parent-side faults
(cache corruption, failed puts, ledger tears) are consulted in place
by :class:`repro.engine.cache.ResultCache` and
:class:`repro.obs.events.EventLog` through their ``faults`` attribute.

The fault *actions* live in :mod:`repro.faults.inject`; this module is
pure decision logic plus the CLI ``--inject`` grammar
(:func:`parse_fault` / :func:`plan_from_args`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

#: Faults applied inside the worker process running the job.
WORKER_FAULTS = frozenset({"crash", "hang", "transient"})
#: Faults applied parent-side, at the cache / ledger layer.
PARENT_FAULTS = frozenset({"cache_corrupt", "cache_put_fail", "ledger_tear"})
#: Every fault class the injector understands.
FAULT_KINDS = WORKER_FAULTS | PARENT_FAULTS

_KIND_CODES = {kind: code for code, kind in enumerate(sorted(FAULT_KINDS))}


@dataclass(frozen=True)
class FaultSpec:
    """One fault class plus the sites it applies to.

    ``at`` restricts to explicit job indices (ledger tears interpret it
    as event sequence numbers); ``runners`` restricts to runner names;
    ``times`` caps how many attempts of one job are hit (attempt
    numbers above it pass clean — how "transient on attempt k only"
    schedules are written); ``rate`` < 1 makes the remaining sites
    probabilistic under the plan's seed. ``hang_s`` is how long a
    ``hang`` fault stalls (meant to overrun the job timeout).
    """

    kind: str
    rate: float = 1.0
    at: Tuple[int, ...] = ()
    runners: Tuple[str, ...] = ()
    times: int = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {self.rate}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        object.__setattr__(self, "at", tuple(int(i) for i in self.at))
        object.__setattr__(self, "runners", tuple(self.runners))

    def matches_site(self, index: int, runner: str, attempt: int) -> bool:
        """Static (non-probabilistic) part of the site selection."""
        if self.at and index not in self.at:
            return False
        if self.runners and runner not in self.runners:
            return False
        if attempt > self.times:
            return False
        return True

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "at": list(self.at),
            "runners": list(self.runners),
            "times": self.times,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            rate=payload.get("rate", 1.0),
            at=tuple(payload.get("at", ())),
            runners=tuple(payload.get("runners", ())),
            times=payload.get("times", 1),
            hang_s=payload.get("hang_s", 3600.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries.

    An empty plan (``FaultPlan()``) decides "no fault" everywhere and
    is the zero-overhead baseline chaos tests compare against.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def single(cls, kind: str, seed: int = 0, **kwargs: Any) -> "FaultPlan":
        """Convenience: a plan with exactly one fault spec."""
        return cls(specs=(FaultSpec(kind=kind, **kwargs),), seed=seed)

    def decide(
        self, kind: str, *, index: int = 0, runner: str = "", attempt: int = 1
    ) -> Optional[FaultSpec]:
        """The matching spec if ``kind`` fires at this site, else None.

        Deterministic: for a given plan the answer depends only on the
        site coordinates, so serial, parallel, and resumed runs all see
        the same faults.
        """
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if not spec.matches_site(index, runner, attempt):
                continue
            if spec.rate >= 1.0 or self._coin(kind, index, attempt) < spec.rate:
                return spec
        return None

    def _coin(self, kind: str, index: int, attempt: int) -> float:
        entropy = [
            int(self.seed) & 0xFFFFFFFF,
            _KIND_CODES[kind],
            int(index) & 0xFFFFFFFF,
            int(attempt) & 0xFFFFFFFF,
        ]
        return float(np.random.default_rng(np.random.SeedSequence(entropy)).random())

    def worker_payload(self) -> Optional[Dict[str, Any]]:
        """The worker-relevant subset as a plain dict (None if empty)."""
        worker_specs = [s for s in self.specs if s.kind in WORKER_FAULTS]
        if not worker_specs:
            return None
        return {
            "seed": self.seed,
            "specs": [s.to_payload() for s in worker_specs],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_payload(item) for item in payload.get("specs", ())
            ),
            seed=payload.get("seed", 0),
        )


def parse_fault(text: str) -> FaultSpec:
    """Parse one CLI ``--inject`` argument into a :class:`FaultSpec`.

    Grammar: ``kind[:key=value,key=value,...]`` where keys are ``rate``
    (float), ``at`` (``+``-separated job indices), ``runner``
    (``+``-separated names), ``times`` (int), ``hang_s`` (float)::

        crash:at=1
        transient:rate=0.25,times=2
        hang:runner=test.sleep,hang_s=30
        cache_corrupt
    """
    kind, _, rest = text.partition(":")
    kwargs: Dict[str, Any] = {"kind": kind.strip()}
    if rest:
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not value:
                raise ValueError(
                    f"bad fault option {part!r} in {text!r} "
                    "(expected key=value)"
                )
            if key == "at":
                kwargs["at"] = tuple(int(v) for v in value.split("+"))
            elif key == "runner":
                kwargs["runners"] = tuple(value.split("+"))
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "hang_s":
                kwargs["hang_s"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault option {key!r} in {text!r} "
                    "(expected rate/at/runner/times/hang_s)"
                )
    return FaultSpec(**kwargs)


def plan_from_args(
    texts: Sequence[str], seed: Optional[int] = None
) -> FaultPlan:
    """Build a plan from CLI ``--inject`` arguments + the sweep seed."""
    specs = tuple(parse_fault(text) for text in texts)
    return FaultPlan(specs=specs, seed=0 if seed is None else int(seed))
