"""repro.faults — deterministic fault injection for the engine.

The paper's measurement campaigns survived mmWave blockage, tool
crashes, and server resets by treating partial runs as first-class
data; this package lets the scenario engine prove the same property
forever. A seeded :class:`FaultPlan` forces worker crashes, hangs,
transient exceptions, corrupted/truncated cache entries, failed cache
puts, and torn ledger writes at deterministic sites, and the engine's
recovery paths (quarantine + recompute, crash-tolerant pool, partial
sweeps, torn-line-tolerant readers) are asserted against it in
``tests/faults/`` and the CI ``chaos-smoke`` job. See
``docs/robustness.md``.

Typical use::

    from repro import engine, faults

    plan = faults.FaultPlan.single("crash", at=(2,), seed=7)
    result = engine.execute(jobs, workers=4, faults=plan)
    assert result.partial and result.failed_count == 1

CLI: ``python -m repro sweep ... --inject crash:at=1 --keep-going``.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    PARENT_FAULTS,
    WORKER_FAULTS,
    FaultPlan,
    FaultSpec,
    parse_fault,
    plan_from_args,
)

__all__ = [
    "FAULT_KINDS",
    "PARENT_FAULTS",
    "WORKER_FAULTS",
    "FaultPlan",
    "FaultSpec",
    "parse_fault",
    "plan_from_args",
]
