"""RRC tail and 4G->5G switch power (paper Table 2).

The tail power is the average power over the whole RRC_CONNECTED tail
(DRX ON windows plus sleep), measured by leaving the UE idle, poking it
with a single packet, and watching the Monsoon trace until demotion
(section 4.1). 5G tails are costlier than 4G — dramatically so on
mmWave — and NSA additionally pays a 4G->5G switch power whenever data
arrives on the LTE anchor and the UE upgrades (very common, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rrc.machine import RRCStateMachine
from repro.rrc.parameters import get_parameters
from repro.rrc.states import RRCState


@dataclass(frozen=True)
class TailPower:
    """Table 2 row: average tail power and 4G->5G switch power (mW)."""

    network_key: str
    tail_mw: float
    switch_mw: Optional[float] = None  # None for LTE and SA-from-idle
    switch_duration_ms: float = 1000.0
    idle_mw: float = 25.0  # paging-only floor in RRC_IDLE
    inactive_mw: Optional[float] = None  # RRC_INACTIVE floor (SA)

    def __post_init__(self) -> None:
        if self.tail_mw <= 0:
            raise ValueError("tail_mw must be positive")

    @property
    def switch_energy_j(self) -> float:
        """Energy of one 4G->5G switch event in joules."""
        if self.switch_mw is None:
            return 0.0
        return self.switch_mw * self.switch_duration_ms / 1e6


# Table 2, verbatim (switch power applies to NSA; the T-Mobile SA value
# is the IDLE->NR promotion burst the paper lists in the same column).
TAIL_POWER: Dict[str, TailPower] = {
    "verizon-lte": TailPower(network_key="verizon-lte", tail_mw=178.0),
    "tmobile-lte": TailPower(network_key="tmobile-lte", tail_mw=66.0),
    "verizon-nsa-lowband": TailPower(
        network_key="verizon-nsa-lowband", tail_mw=249.0, switch_mw=799.0
    ),
    "verizon-nsa-mmwave": TailPower(
        network_key="verizon-nsa-mmwave", tail_mw=1092.0, switch_mw=1494.0
    ),
    "tmobile-nsa-lowband": TailPower(
        network_key="tmobile-nsa-lowband", tail_mw=260.0, switch_mw=699.0
    ),
    "tmobile-sa-lowband": TailPower(
        network_key="tmobile-sa-lowband",
        tail_mw=593.0,
        switch_mw=245.0,
        inactive_mw=80.0,
    ),
}


def get_tail_power(network_key: str) -> TailPower:
    """Tail/switch power entry for a network (Table 2)."""
    try:
        return TAIL_POWER[network_key]
    except KeyError:
        raise KeyError(
            f"no tail power for {network_key!r}; known: {sorted(TAIL_POWER)}"
        ) from None


def tail_energy_j(network_key: str, horizon_s: Optional[float] = None) -> float:
    """Energy burned from last packet until RRC_IDLE (or ``horizon_s``).

    Integrates the RRC schedule against the Table 2 powers; used to
    compare state-transition efficiency across deployments (the paper's
    finding that the carriers studied demote ~2x more efficiently than
    the deployment measured in Xu et al.).
    """
    params = get_parameters(network_key)
    tail = get_tail_power(network_key)
    machine = RRCStateMachine(params, seed=0)
    full_ms = params.inactivity_ms + (params.inactive_duration_ms or 0.0)
    horizon_ms = full_ms if horizon_s is None else horizon_s * 1000.0
    energy_mj = 0.0
    for start, end, state in machine.schedule(horizon_ms):
        duration_ms = end - start
        if state.is_connected:
            power = tail.tail_mw
        elif state is RRCState.INACTIVE:
            power = tail.inactive_mw if tail.inactive_mw is not None else tail.idle_mw
        else:
            power = tail.idle_mw
        energy_mj += power * duration_ms / 1000.0
    return energy_mj / 1000.0


def power_timeline_mw(
    network_key: str,
    horizon_s: float,
    resolution_s: float = 0.01,
) -> Tuple[List[float], List[float]]:
    """(times_s, power_mw) staircase of the post-transfer tail.

    Convenient for feeding the Monsoon simulator and for plotting the
    demotion staircase the paper verifies against the power monitor.
    """
    if horizon_s <= 0 or resolution_s <= 0:
        raise ValueError("horizon and resolution must be positive")
    params = get_parameters(network_key)
    tail = get_tail_power(network_key)
    machine = RRCStateMachine(params, seed=0)
    intervals = machine.schedule(horizon_s * 1000.0)
    times: List[float] = []
    powers: List[float] = []
    t = 0.0
    while t < horizon_s:
        t_ms = t * 1000.0
        power = tail.idle_mw
        for start, end, state in intervals:
            if start <= t_ms < end:
                if state.is_connected:
                    power = tail.tail_mw
                elif state is RRCState.INACTIVE:
                    power = (
                        tail.inactive_mw
                        if tail.inactive_mw is not None
                        else tail.idle_mw
                    )
                else:
                    power = tail.idle_mw
                break
        times.append(t)
        powers.append(power)
        t += resolution_s
    return times, powers
