"""Android battery-API software power monitor (sections 4.6, A.5).

The software monitor reads ``current_now``/``voltage_now`` at 1 or
10 Hz. The paper finds it *always underestimates* true power (Table 9:
~81-92% of the Monsoon reading at 1 Hz, ~90-95% at 10 Hz) and that the
act of sampling itself costs energy (Table 3: ~0.65 W extra at 1 Hz,
~1.1 W at 10 Hz over idle). Both effects are modeled here so the
calibration experiment (Fig. 15/16) has something real to correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.kernels.sampling import sample_series

# Mean reported/true ratios per sampling rate (Table 9 averages).
_UNDERESTIMATE_RATIO = {1.0: 0.86, 10.0: 0.92}
# Monitoring overhead added to the device's true power draw (Table 3:
# idle 2014 mW -> 2669 @ 1 Hz -> 3126 @ 10 Hz).
_OVERHEAD_MW = {0.0: 0.0, 1.0: 654.0, 10.0: 1111.0}


def monitoring_overhead_mw(rate_hz: float) -> float:
    """Extra true power consumed by running the software monitor."""
    if rate_hz < 0:
        raise ValueError("rate_hz must be non-negative")
    if rate_hz == 0:
        return 0.0
    known = sorted(k for k in _OVERHEAD_MW if k > 0)
    # Log-linear interpolation/extrapolation between the measured rates.
    rates = np.array(known)
    overheads = np.array([_OVERHEAD_MW[k] for k in known])
    return float(np.interp(rate_hz, rates, overheads))


def underestimate_ratio(rate_hz: float) -> float:
    """Mean reported/true power ratio at a sampling rate."""
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    rates = sorted(_UNDERESTIMATE_RATIO)
    values = [_UNDERESTIMATE_RATIO[r] for r in rates]
    return float(np.interp(rate_hz, rates, values))


@dataclass
class SoftwareReading:
    """One battery-API sample."""

    t_s: float
    power_mw: float
    current_ma: float
    voltage_mv: float


@dataclass
class SoftwareMonitor:
    """Low-rate, biased sampler over the same ground truth as Monsoon.

    Attributes:
        rate_hz: 1 or 10 Hz in the paper (any positive rate accepted).
        voltage_mv: nominal battery voltage used to report current.
        noise_ratio: multiplicative sample noise std-dev.
        seed: RNG seed.
    """

    rate_hz: float = 1.0
    voltage_mv: float = 3850.0
    noise_ratio: float = 0.04
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.voltage_mv <= 0:
            raise ValueError("voltage_mv must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def overhead_mw(self) -> float:
        """True extra power the monitoring itself draws (Table 3)."""
        return monitoring_overhead_mw(self.rate_hz)

    def measure(
        self,
        power_fn: Callable[[float], float],
        duration_s: float,
        start_s: float = 0.0,
    ) -> List[SoftwareReading]:
        """Sample the (true) power function, returning biased readings.

        ``power_fn`` should *not* include the monitoring overhead; the
        monitor adds it internally, then under-reports the total — the
        same systematic error the paper measured.

        The truth series and the noise draws are batched (one RNG call
        per measurement, one draw per sample in sample order — bit-
        identical to the pre-PR per-sample loop).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n = int(round(duration_s * self.rate_hz))
        ratio = underestimate_ratio(self.rate_hz)
        times = start_s + np.arange(n) / self.rate_hz
        truth = sample_series(power_fn, times) + self.overhead_mw
        noise = self._rng.normal(1.0, self.noise_ratio, size=n)
        reported = np.maximum(0.0, truth * ratio * noise)
        current_ma = reported / self.voltage_mv * 1000.0
        return [
            SoftwareReading(
                t_s=float(times[i]),
                power_mw=float(reported[i]),
                current_ma=float(current_ma[i]),
                voltage_mv=self.voltage_mv,
            )
            for i in range(n)
        ]

    @staticmethod
    def average_mw(readings: List[SoftwareReading]) -> float:
        if not readings:
            raise ValueError("no readings")
        return float(np.mean([r.power_mw for r in readings]))


def benchmark_activities(
    device_power_fns: Dict[str, Callable[[float], float]],
    duration_s: float = 30.0,
    rates_hz=(1.0, 10.0),
    seed: int = 0,
) -> Dict[str, Dict[float, float]]:
    """Table 9 reproduction: relative error (SW/HW) per activity & rate.

    ``device_power_fns`` maps an activity name to its true power
    function; returns ``{activity: {rate: sw_over_hw_ratio}}``.
    """
    from repro.power.monsoon import MonsoonMonitor

    results: Dict[str, Dict[float, float]] = {}
    for name, power_fn in device_power_fns.items():
        results[name] = {}
        hw = MonsoonMonitor(seed=seed).measure(power_fn, duration_s)
        hw_avg = hw.average_mw()
        for rate in rates_hz:
            sw = SoftwareMonitor(rate_hz=rate, seed=seed)
            readings = sw.measure(power_fn, duration_s)
            # Compare against the truth-with-overhead the Monsoon would
            # see while the software monitor runs.
            results[name][float(rate)] = SoftwareMonitor.average_mw(readings) / (
                hw_avg + sw.overhead_mw
            )
    return results
