"""Monsoon hardware power monitor simulator (5 kHz sampling).

The paper powers phones directly from a Monsoon monitor and records at
5000 Hz (section 4.1). :class:`MonsoonMonitor` samples an arbitrary
ground-truth power function at that rate with a small, unbiased sensor
noise, producing :class:`PowerTrace` objects that downstream analyses
(tail-power extraction, model validation, trace synchronisation)
consume exactly as they would consume the real monitor's CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

DEFAULT_RATE_HZ = 5000.0


@dataclass
class PowerTrace:
    """A sampled power waveform.

    Attributes:
        samples_mw: power samples in milliwatts.
        rate_hz: sampling rate.
        start_s: absolute start time (for synchronising with 10 Hz
            network logs, as the paper does by starting loggers
            together).
    """

    samples_mw: np.ndarray
    rate_hz: float
    start_s: float = 0.0

    def __post_init__(self) -> None:
        self.samples_mw = np.asarray(self.samples_mw, dtype=float)
        if self.samples_mw.ndim != 1:
            raise ValueError("samples_mw must be 1-D")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")

    @property
    def duration_s(self) -> float:
        return self.samples_mw.shape[0] / self.rate_hz

    @property
    def times_s(self) -> np.ndarray:
        return self.start_s + np.arange(self.samples_mw.shape[0]) / self.rate_hz

    def average_mw(self) -> float:
        if self.samples_mw.shape[0] == 0:
            raise ValueError("empty trace")
        return float(np.mean(self.samples_mw))

    def energy_j(self) -> float:
        """Total energy in joules (mean power x duration)."""
        if self.samples_mw.shape[0] == 0:
            return 0.0
        return float(np.sum(self.samples_mw) / self.rate_hz / 1000.0)

    def window(self, t0_s: float, t1_s: float) -> "PowerTrace":
        """Sub-trace between two absolute times."""
        if t1_s <= t0_s:
            raise ValueError("t1_s must exceed t0_s")
        i0 = max(0, int(round((t0_s - self.start_s) * self.rate_hz)))
        i1 = min(
            self.samples_mw.shape[0],
            int(round((t1_s - self.start_s) * self.rate_hz)),
        )
        return PowerTrace(
            samples_mw=self.samples_mw[i0:i1],
            rate_hz=self.rate_hz,
            start_s=self.start_s + i0 / self.rate_hz,
        )

    def downsample(self, rate_hz: float) -> "PowerTrace":
        """Block-average down to a lower rate (e.g. 10 Hz for aligning
        with network logs)."""
        if rate_hz <= 0 or rate_hz > self.rate_hz:
            raise ValueError("target rate must be in (0, source rate]")
        block = int(round(self.rate_hz / rate_hz))
        n = (self.samples_mw.shape[0] // block) * block
        if n == 0:
            raise ValueError("trace too short for the requested rate")
        reshaped = self.samples_mw[:n].reshape(-1, block)
        return PowerTrace(
            samples_mw=reshaped.mean(axis=1), rate_hz=rate_hz, start_s=self.start_s
        )


@dataclass
class MonsoonMonitor:
    """High-rate sampler over a ground-truth power function.

    Attributes:
        rate_hz: sampling rate (5000 Hz in the paper).
        noise_mw: std-dev of additive Gaussian sensor noise.
        seed: RNG seed.
    """

    rate_hz: float = DEFAULT_RATE_HZ
    noise_mw: float = 2.0
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.noise_mw < 0:
            raise ValueError("noise_mw must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def measure(
        self,
        power_fn: Callable[[float], float],
        duration_s: float,
        start_s: float = 0.0,
    ) -> PowerTrace:
        """Sample ``power_fn(t_seconds) -> mW`` for ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n = int(round(duration_s * self.rate_hz))
        times = start_s + np.arange(n) / self.rate_hz
        truth = np.array([power_fn(float(t)) for t in times])
        noise = self._rng.normal(0.0, self.noise_mw, size=n)
        samples = np.maximum(truth + noise, 0.0)
        return PowerTrace(samples_mw=samples, rate_hz=self.rate_hz, start_s=start_s)

    def measure_series(
        self,
        power_series_mw,
        series_rate_hz: float,
        start_s: float = 0.0,
    ) -> PowerTrace:
        """Sample a pre-computed power series (zero-order hold upsample)."""
        series = np.asarray(power_series_mw, dtype=float)
        if series.ndim != 1 or series.shape[0] == 0:
            raise ValueError("power_series_mw must be a non-empty 1-D array")
        if series_rate_hz <= 0:
            raise ValueError("series_rate_hz must be positive")
        repeat = max(1, int(round(self.rate_hz / series_rate_hz)))
        truth = np.repeat(series, repeat)
        noise = self._rng.normal(0.0, self.noise_mw, size=truth.shape[0])
        samples = np.maximum(truth + noise, 0.0)
        return PowerTrace(samples_mw=samples, rate_hz=self.rate_hz, start_s=start_s)
