"""DTR calibration of the software power monitor (section 4.6).

The software monitor systematically under-reports power; the paper
shows a Decision Tree Regression trained on paired (software reading,
Monsoon reading) samples closes the gap to within a few percent MAPE,
with 10 Hz sampling calibrating slightly better than 1 Hz (Fig. 15,
"SW-1Hz"/"SW-10Hz" bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.tree import DecisionTreeRegressor


@dataclass
class SoftwareCalibrator:
    """Maps raw software power readings to calibrated (hardware-like)
    power using a regression tree.

    Features are the raw reading and its short-horizon local statistics
    (rolling mean/std over ``window`` samples), which let the tree
    correct rate-dependent bias and smooth sampling noise.
    """

    window: int = 5
    max_depth: int = 8
    min_samples_leaf: int = 5
    _tree: Optional[DecisionTreeRegressor] = field(init=False, default=None)

    def _features(self, raw_mw: np.ndarray) -> np.ndarray:
        n = raw_mw.shape[0]
        means = np.empty(n)
        stds = np.empty(n)
        half = self.window // 2
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            segment = raw_mw[lo:hi]
            means[i] = segment.mean()
            stds[i] = segment.std()
        return np.column_stack([raw_mw, means, stds])

    def fit(self, raw_mw, true_mw) -> "SoftwareCalibrator":
        """Train on paired software/hardware samples (same timestamps)."""
        raw_mw = np.asarray(raw_mw, dtype=float).ravel()
        true_mw = np.asarray(true_mw, dtype=float).ravel()
        if raw_mw.shape[0] != true_mw.shape[0]:
            raise ValueError("raw and true series must align")
        if raw_mw.shape[0] < self.window:
            raise ValueError("not enough samples to calibrate")
        tree = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )
        tree.fit(self._features(raw_mw), true_mw)
        self._tree = tree
        return self

    def predict(self, raw_mw) -> np.ndarray:
        """Calibrated power for raw software readings."""
        if self._tree is None:
            raise RuntimeError("calibrator is not fitted; call fit() first")
        raw_mw = np.asarray(raw_mw, dtype=float).ravel()
        return self._tree.predict(self._features(raw_mw))

    def evaluate(self, raw_mw, true_mw) -> Tuple[float, float]:
        """(MAPE before calibration, MAPE after calibration), percent."""
        raw_mw = np.asarray(raw_mw, dtype=float).ravel()
        true_mw = np.asarray(true_mw, dtype=float).ravel()
        before = mean_absolute_percentage_error(true_mw, raw_mw)
        after = mean_absolute_percentage_error(true_mw, self.predict(raw_mw))
        return before, after
