"""Power substrate: device power curves, monitors, tail/switch power.

Stands in for the paper's power instrumentation (section 4.1): a
Monsoon hardware monitor sampling at 5 kHz, the Android battery-status
software monitor at 1/10 Hz, and the device-level ground-truth power
behaviour that both observe. The ground truth embeds the paper's
measured linear throughput-power curves (Table 8 slopes, Fig. 11
crossovers), the RSRP sensitivity of section 4.4, and the RRC
tail/switch powers of Table 2.
"""

from repro.power.device import (
    DEVICES,
    DeviceProfile,
    RadioPowerCurve,
    get_device,
)
from repro.power.tail import TAIL_POWER, TailPower, get_tail_power
from repro.power.monsoon import MonsoonMonitor, PowerTrace
from repro.power.software import SoftwareMonitor, SoftwareReading
from repro.power.calibration import SoftwareCalibrator

__all__ = [
    "DEVICES",
    "DeviceProfile",
    "MonsoonMonitor",
    "PowerTrace",
    "RadioPowerCurve",
    "SoftwareCalibrator",
    "SoftwareMonitor",
    "SoftwareReading",
    "TAIL_POWER",
    "TailPower",
    "get_device",
    "get_tail_power",
]
