"""Device power profiles: the ground truth both monitors observe.

Radio power during data transfer is linear in throughput (paper
section 4.3, Fig. 11/26): ``P = intercept + slope_dl * T_dl +
slope_ul * T_ul``, with slopes taken verbatim from Table 8 and
intercepts back-solved from the crossover points the paper reports
(DL: mmWave crosses 4G at ~187 Mbps and low-band at ~189 Mbps on the
S20U; UL: 40 and 123 Mbps). Poor signal adds power (section 4.4):
below a per-band reference RSRP each lost dB costs a fixed number of
milliwatts (transmit power control, retransmissions, extra beam
management on mmWave).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.obs.trace import span as trace_span
from repro.radio.link import MODEMS, Modem


@dataclass(frozen=True)
class RadioPowerCurve:
    """Linear throughput-power curve plus RSRP sensitivity.

    Attributes:
        intercept_dl_mw: radio power at zero downlink throughput.
        slope_dl: mW per downlink Mbps (Table 8).
        intercept_ul_mw: radio power at zero uplink throughput.
        slope_ul: mW per uplink Mbps (Table 8).
        rsrp_ref_dbm: RSRP at/above which no signal penalty applies.
        rsrp_coeff_mw_per_db: extra mW per dB below the reference.
    """

    intercept_dl_mw: float
    slope_dl: float
    intercept_ul_mw: float
    slope_ul: float
    rsrp_ref_dbm: float = -80.0
    rsrp_coeff_mw_per_db: float = 0.0

    def __post_init__(self) -> None:
        if self.intercept_dl_mw < 0 or self.intercept_ul_mw < 0:
            raise ValueError("intercepts must be non-negative")
        if self.slope_dl < 0 or self.slope_ul < 0:
            raise ValueError("slopes must be non-negative")

    def power_mw(
        self,
        dl_mbps: float = 0.0,
        ul_mbps: float = 0.0,
        rsrp_dbm: Optional[float] = None,
    ) -> float:
        """Radio power in mW for the given transfer rates and signal."""
        if dl_mbps < 0 or ul_mbps < 0:
            raise ValueError("throughput must be non-negative")
        # The two intercepts describe the same connected radio measured
        # in separate directional sweeps; with any uplink activity the
        # costlier uplink chain is powered, so take the max of the
        # active directions (keeps power monotone in both rates).
        power = self.intercept_dl_mw
        if ul_mbps > 0:
            power = max(power, self.intercept_ul_mw)
        power += self.slope_dl * dl_mbps + self.slope_ul * ul_mbps
        if rsrp_dbm is not None and rsrp_dbm < self.rsrp_ref_dbm:
            deficit = self.rsrp_ref_dbm - rsrp_dbm
            # Transmit power control and retransmissions grow super-
            # linearly as the link degrades; the quadratic term is why
            # multi-factor *linear* power models underfit (section 4.5).
            power += self.rsrp_coeff_mw_per_db * (deficit + 0.02 * deficit**2)
        return float(power)

    def power_mw_series(
        self,
        dl_mbps,
        ul_mbps,
        rsrp_dbm=None,
    ) -> np.ndarray:
        """Vectorized :meth:`power_mw` over aligned rate/RSRP series.

        Elementwise bit-identical to the scalar curve (same operation
        order; the quadratic RSRP deficit term included).
        """
        dl_mbps = np.asarray(dl_mbps, dtype=float)
        ul_mbps = np.asarray(ul_mbps, dtype=float)
        if np.any(dl_mbps < 0) or np.any(ul_mbps < 0):
            raise ValueError("throughput must be non-negative")
        with trace_span("kernel.power.series", n=int(dl_mbps.size)):
            power = np.where(
                ul_mbps > 0,
                max(self.intercept_dl_mw, self.intercept_ul_mw),
                self.intercept_dl_mw,
            )
            power = power + (self.slope_dl * dl_mbps + self.slope_ul * ul_mbps)
            if rsrp_dbm is not None:
                rsrp_dbm = np.asarray(rsrp_dbm, dtype=float)
                deficit = self.rsrp_ref_dbm - rsrp_dbm
                penalty = self.rsrp_coeff_mw_per_db * (
                    deficit + 0.02 * deficit**2
                )
                power = power + np.where(
                    rsrp_dbm < self.rsrp_ref_dbm, penalty, 0.0
                )
            return power


def _curves_s20u() -> Dict[str, RadioPowerCurve]:
    """S20U curves (Fig. 11): slopes from Table 8, intercepts from the
    187/189 Mbps DL and 40/123 Mbps UL crossovers."""
    base_4g = 800.0
    mm_dl_intercept = base_4g + (14.55 - 1.81) * 187.0  # ~3182 mW
    lb_dl_intercept = mm_dl_intercept - (13.52 - 1.81) * 189.0  # ~969 mW
    mm_ul_intercept = base_4g + (80.21 - 9.42) * 40.0  # ~3632 mW
    lb_ul_intercept = mm_ul_intercept - (29.15 - 9.42) * 123.0  # ~1205 mW
    lte = RadioPowerCurve(
        intercept_dl_mw=base_4g,
        slope_dl=14.55,
        intercept_ul_mw=base_4g,
        slope_ul=80.21,
        rsrp_ref_dbm=-85.0,
        rsrp_coeff_mw_per_db=10.0,
    )
    lowband = RadioPowerCurve(
        intercept_dl_mw=lb_dl_intercept,
        slope_dl=13.52,
        intercept_ul_mw=lb_ul_intercept,
        slope_ul=29.15,
        rsrp_ref_dbm=-85.0,
        rsrp_coeff_mw_per_db=14.0,
    )
    mmwave = RadioPowerCurve(
        intercept_dl_mw=mm_dl_intercept,
        slope_dl=1.81,
        intercept_ul_mw=mm_ul_intercept,
        slope_ul=9.42,
        rsrp_ref_dbm=-80.0,
        rsrp_coeff_mw_per_db=28.0,
    )
    sa_lowband = RadioPowerCurve(
        intercept_dl_mw=lb_dl_intercept * 0.92,  # SA skips the LTE anchor leg
        slope_dl=13.0,
        intercept_ul_mw=lb_ul_intercept * 0.92,
        slope_ul=28.0,
        rsrp_ref_dbm=-85.0,
        rsrp_coeff_mw_per_db=14.0,
    )
    return {
        "verizon-nsa-mmwave": mmwave,
        "verizon-nsa-lowband": lowband,
        "verizon-lte": lte,
        "tmobile-nsa-lowband": lowband,
        "tmobile-sa-lowband": sa_lowband,
        "tmobile-lte": lte,
    }


def _curves_s10() -> Dict[str, RadioPowerCurve]:
    """S10 curves (Fig. 26): older modem, crossovers at 213/44 Mbps."""
    base_4g = 700.0
    mm_dl_intercept = base_4g + (13.38 - 2.06) * 213.0  # ~3111 mW
    mm_ul_intercept = base_4g + (57.99 - 5.27) * 44.0  # ~3020 mW
    lte = RadioPowerCurve(
        intercept_dl_mw=base_4g,
        slope_dl=13.38,
        intercept_ul_mw=base_4g,
        slope_ul=57.99,
        rsrp_ref_dbm=-85.0,
        rsrp_coeff_mw_per_db=10.0,
    )
    mmwave = RadioPowerCurve(
        intercept_dl_mw=mm_dl_intercept,
        slope_dl=2.06,
        intercept_ul_mw=mm_ul_intercept,
        slope_ul=5.27,
        rsrp_ref_dbm=-80.0,
        rsrp_coeff_mw_per_db=30.0,
    )
    return {
        "verizon-nsa-mmwave": mmwave,
        "verizon-lte": lte,
        "tmobile-nsa-lowband": RadioPowerCurve(
            intercept_dl_mw=950.0,
            slope_dl=13.0,
            intercept_ul_mw=1150.0,
            slope_ul=28.0,
            rsrp_ref_dbm=-85.0,
            rsrp_coeff_mw_per_db=14.0,
        ),
        "tmobile-lte": lte,
    }


def _curves_px5() -> Dict[str, RadioPowerCurve]:
    """PX5 (X52 modem): close to S10-era efficiency."""
    curves = dict(_curves_s10())
    return curves


@dataclass(frozen=True)
class DeviceProfile:
    """A 5G smartphone model used in the study.

    Attributes:
        name: short model name (``"S20U"``, ``"S10"``, ``"PX5"``).
        modem: the device's 5G modem (drives carrier aggregation).
        system_base_mw: SoC + memory baseline with the screen off.
        screen_max_mw: display power at maximum brightness (the paper
            pins brightness to max and subtracts this, section 4.1).
        curves: per-network radio power curves.
        rooted: whether the unit is rooted (packet capture etc.).
    """

    name: str
    modem: Modem
    system_base_mw: float
    screen_max_mw: float
    curves: Dict[str, RadioPowerCurve] = field(default_factory=dict)
    rooted: bool = False

    def curve(self, network_key: str) -> RadioPowerCurve:
        try:
            return self.curves[network_key]
        except KeyError:
            raise KeyError(
                f"{self.name} has no power curve for {network_key!r}; "
                f"known: {sorted(self.curves)}"
            ) from None

    def radio_power_mw(
        self,
        network_key: str,
        dl_mbps: float = 0.0,
        ul_mbps: float = 0.0,
        rsrp_dbm: Optional[float] = None,
    ) -> float:
        """Radio-only power (screen/system excluded)."""
        return self.curve(network_key).power_mw(dl_mbps, ul_mbps, rsrp_dbm)

    def total_power_mw(
        self,
        network_key: str,
        dl_mbps: float = 0.0,
        ul_mbps: float = 0.0,
        rsrp_dbm: Optional[float] = None,
        screen_on: bool = True,
    ) -> float:
        """Whole-device power the Monsoon would read."""
        power = self.system_base_mw + self.radio_power_mw(
            network_key, dl_mbps, ul_mbps, rsrp_dbm
        )
        if screen_on:
            power += self.screen_max_mw
        return float(power)


S20U = DeviceProfile(
    name="S20U",
    modem=MODEMS["X55"],
    system_base_mw=750.0,
    screen_max_mw=1100.0,
    curves=_curves_s20u(),
)

S10 = DeviceProfile(
    name="S10",
    modem=MODEMS["X50"],
    system_base_mw=700.0,
    screen_max_mw=1000.0,
    curves=_curves_s10(),
)

PX5 = DeviceProfile(
    name="PX5",
    modem=MODEMS["X52"],
    system_base_mw=650.0,
    screen_max_mw=900.0,
    curves=_curves_px5(),
    rooted=True,
)

DEVICES: Dict[str, DeviceProfile] = {d.name: d for d in (S20U, S10, PX5)}


def get_device(name: str) -> DeviceProfile:
    """Look a device profile up by model name (case-insensitive)."""
    for key, device in DEVICES.items():
        if key.lower() == name.lower():
            return device
    raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")


def crossover_mbps(
    device: DeviceProfile,
    network_a: str,
    network_b: str,
    downlink: bool = True,
) -> Optional[float]:
    """Throughput where network A's power curve crosses network B's.

    Returns None when the curves never cross for positive throughput
    (parallel or ordered the same everywhere). Used to re-derive the
    paper's 187/189 Mbps (DL) and 40/123 Mbps (UL) crossovers.
    """
    curve_a = device.curve(network_a)
    curve_b = device.curve(network_b)
    if downlink:
        slope_delta = curve_a.slope_dl - curve_b.slope_dl
        intercept_delta = curve_b.intercept_dl_mw - curve_a.intercept_dl_mw
    else:
        slope_delta = curve_a.slope_ul - curve_b.slope_ul
        intercept_delta = curve_b.intercept_ul_mw - curve_a.intercept_ul_mw
    if abs(slope_delta) < 1e-12:
        return None
    crossing = intercept_delta / slope_delta
    if crossing <= 0 or not np.isfinite(crossing):
        return None
    return float(crossing)
