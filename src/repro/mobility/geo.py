"""Geographic helpers: great-circle distance and planar path length."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

EARTH_RADIUS_KM = 6371.0088


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two WGS-84 points in km.

    Used for UE-server distances in the Speedtest experiments (Fig. 1-8),
    where servers are placed at real metro coordinates.
    """
    for value, name in ((lat1, "lat1"), (lat2, "lat2")):
        if not -90.0 <= value <= 90.0:
            raise ValueError(f"{name} out of range: {value}")
    for value, name in ((lon1, "lon1"), (lon2, "lon2")):
        if not -180.0 <= value <= 180.0:
            raise ValueError(f"{name} out of range: {value}")
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlam = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return float(2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a)))


def path_length_m(waypoints: Sequence[Tuple[float, float]]) -> float:
    """Total length of a planar polyline (meters)."""
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    points = np.asarray(waypoints, dtype=float)
    return float(np.sum(np.hypot(*(np.diff(points, axis=0).T))))
