"""Route definitions: the paper's walking loop and driving route.

Routes are planar polylines (meters) with a per-segment target speed.
Two factories mirror the measurement campaigns:

* :func:`walking_loop` — the fixed ~1.6 km, 20-minute loop used for
  power/RSRP walking traces (section 4.1), passing three mmWave towers.
* :func:`driving_route` — the 10 km handoff route through busy downtown
  blocks and a freeway stretch with speeds from 0 to 100 kph
  (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.mobility.geo import path_length_m

KPH_TO_MPS = 1000.0 / 3600.0


@dataclass
class Route:
    """A polyline route with per-segment speeds.

    Attributes:
        name: route label.
        waypoints: planar (x, y) coordinates in meters.
        segment_speeds_mps: target speed on each segment
            (``len(waypoints) - 1`` entries).
    """

    name: str
    waypoints: List[Tuple[float, float]]
    segment_speeds_mps: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a route needs at least two waypoints")
        n_segments = len(self.waypoints) - 1
        if not self.segment_speeds_mps:
            self.segment_speeds_mps = [1.4] * n_segments  # walking pace
        if len(self.segment_speeds_mps) != n_segments:
            raise ValueError(
                f"expected {n_segments} segment speeds, "
                f"got {len(self.segment_speeds_mps)}"
            )
        if any(s <= 0 for s in self.segment_speeds_mps):
            raise ValueError("segment speeds must be positive")

    @property
    def length_m(self) -> float:
        return path_length_m(self.waypoints)

    @property
    def duration_s(self) -> float:
        """Time to traverse the route at the segment speeds."""
        points = np.asarray(self.waypoints, dtype=float)
        lengths = np.hypot(*(np.diff(points, axis=0).T))
        return float(np.sum(lengths / np.asarray(self.segment_speeds_mps)))

    def _traversal_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, speeds, durations) over *positive-length*
        segments only.

        Duplicate consecutive waypoints produce zero-length segments
        whose duration is 0; keeping them in the lookup tables made
        ``position_at`` divide 0/0 (NaN positions) whenever ``t_s``
        landed exactly on the degenerate segment's boundary. They
        contribute nothing to the traversal, so both the scalar and
        the vectorized lookup skip them — from the same filtered
        arrays, keeping the two paths bit-identical.
        """
        points = np.asarray(self.waypoints, dtype=float)
        lengths = np.hypot(*(np.diff(points, axis=0).T))
        speeds = np.asarray(self.segment_speeds_mps, dtype=float)
        keep = lengths > 0.0
        starts = points[:-1][keep]
        ends = points[1:][keep]
        speeds = speeds[keep]
        durations = lengths[keep] / speeds
        return starts, ends, speeds, durations

    def position_at(self, t_s: float) -> Tuple[float, float, float]:
        """(x, y, speed) at time ``t_s``; clamps at the route end."""
        if t_s < 0:
            raise ValueError("t_s must be non-negative")
        starts, ends, speeds, durations = self._traversal_arrays()
        end_point = np.asarray(self.waypoints, dtype=float)[-1]
        elapsed = 0.0
        for i, duration in enumerate(durations):
            if t_s <= elapsed + duration:
                frac = (t_s - elapsed) / duration
                position = starts[i] + frac * (ends[i] - starts[i])
                return float(position[0]), float(position[1]), float(speeds[i])
            elapsed += duration
        return float(end_point[0]), float(end_point[1]), 0.0

    def positions_at(
        self, times_s
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`position_at` over a whole time grid.

        Returns aligned ``(x, y, speed)`` arrays, bit-identical to the
        scalar lookup at each grid point (same segment selection over
        the same zero-length-segment-free tables, including the clamp
        to the route end with speed 0).
        """
        times_s = np.asarray(times_s, dtype=float)
        if np.any(times_s < 0):
            raise ValueError("t_s must be non-negative")
        starts, ends, speeds, durations = self._traversal_arrays()
        end_point = np.asarray(self.waypoints, dtype=float)[-1]
        if durations.shape[0] == 0:
            # Fully degenerate route (every waypoint identical): the
            # UE sits at the end point for all time.
            xs = np.full(times_s.shape, float(end_point[0]))
            ys = np.full(times_s.shape, float(end_point[1]))
            return xs, ys, np.zeros(times_s.shape)
        boundaries = np.cumsum(durations)
        # First segment whose end boundary is >= t (matching the scalar
        # path's `t <= elapsed + duration` test); == n_segments means
        # past the route end.
        seg = np.searchsorted(boundaries, times_s, side="left")
        past_end = seg >= durations.shape[0]
        seg_c = np.minimum(seg, durations.shape[0] - 1)
        elapsed = np.concatenate([[0.0], boundaries[:-1]])[seg_c]
        frac = ((times_s - elapsed) / durations[seg_c])[..., None]
        position = starts[seg_c] + frac * (ends[seg_c] - starts[seg_c])
        xs = np.where(past_end, end_point[0], position[..., 0])
        ys = np.where(past_end, end_point[1], position[..., 1])
        out_speeds = np.where(past_end, 0.0, speeds[seg_c])
        return xs, ys, out_speeds


def walking_loop(side_m: float = 400.0) -> Route:
    """The paper's fixed walking loop: a ~1.6 km rectangle at 1.4 m/s
    (roughly the 20-minute loop of section 4.1)."""
    waypoints = [
        (0.0, 0.0),
        (side_m, 0.0),
        (side_m, side_m),
        (0.0, side_m),
        (0.0, 0.0),
    ]
    return Route(name="walking-loop", waypoints=waypoints)


def driving_route(length_km: float = 10.0) -> Route:
    """The 10 km driving route of section 3.3.

    First ~40% winds through downtown at 0-40 kph (stop-and-go modeled
    as slow segments), the rest is freeway at up to 100 kph.
    """
    if length_km <= 0:
        raise ValueError("length_km must be positive")
    total_m = length_km * 1000.0
    downtown_m = 0.4 * total_m
    # Downtown: zig-zag blocks of 250 m.
    waypoints: List[Tuple[float, float]] = [(0.0, 0.0)]
    speeds: List[float] = []
    block = 250.0
    x, y = 0.0, 0.0
    covered = 0.0
    downtown_speeds_kph = [15.0, 30.0, 10.0, 40.0, 25.0, 5.0, 35.0, 20.0]
    i = 0
    while covered < downtown_m:
        if i % 2 == 0:
            x += block
        else:
            y += block
        waypoints.append((x, y))
        speeds.append(downtown_speeds_kph[i % len(downtown_speeds_kph)] * KPH_TO_MPS)
        covered += block
        i += 1
    # Freeway: long straight segments at 80-100 kph.
    freeway_m = total_m - covered
    n_freeway = 4
    segment = freeway_m / n_freeway
    freeway_speeds_kph = [80.0, 100.0, 95.0, 90.0]
    for j in range(n_freeway):
        x += segment
        waypoints.append((x, y))
        speeds.append(freeway_speeds_kph[j] * KPH_TO_MPS)
    return Route(name="driving-route", waypoints=waypoints, segment_speeds_mps=speeds)
