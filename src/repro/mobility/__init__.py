"""Mobility substrate: geometry, routes, trajectories, handoffs.

Provides the movement patterns of the paper's experiments — stationary
holds, the 20-minute / ~1.6 km walking loop (section 4.1), and the
10 km driving route through downtown and freeway segments (section 3.3)
— plus the handoff engine that replays Fig. 9's five radio-band
configurations and counts horizontal (tower) and vertical (technology)
handoffs.
"""

from repro.mobility.geo import haversine_km, path_length_m
from repro.mobility.routes import Route, driving_route, walking_loop
from repro.mobility.trajectory import Trajectory
from repro.mobility.handoff import (
    BandConfiguration,
    HandoffEvent,
    HandoffSimulator,
    HandoffSummary,
    RadioTech,
)

__all__ = [
    "BandConfiguration",
    "HandoffEvent",
    "HandoffSimulator",
    "HandoffSummary",
    "RadioTech",
    "Route",
    "Trajectory",
    "driving_route",
    "haversine_km",
    "path_length_m",
    "walking_loop",
]
