"""Sampled trajectories: route -> time series of positions and speeds."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.routes import Route


@dataclass
class Trajectory:
    """A route sampled at a fixed rate.

    Attributes:
        times_s: sample timestamps.
        x_m, y_m: planar positions.
        speed_mps: instantaneous speed.
    """

    times_s: np.ndarray
    x_m: np.ndarray
    y_m: np.ndarray
    speed_mps: np.ndarray

    def __post_init__(self) -> None:
        arrays = (self.times_s, self.x_m, self.y_m, self.speed_mps)
        lengths = {a.shape[0] for a in arrays}
        if len(lengths) != 1:
            raise ValueError("all trajectory arrays must have equal length")
        if next(iter(lengths)) == 0:
            raise ValueError("trajectory must not be empty")

    def __len__(self) -> int:
        return self.times_s.shape[0]

    @property
    def dt_s(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(self.times_s[1] - self.times_s[0])

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0])

    def distances_to(self, x_m: float, y_m: float) -> np.ndarray:
        """Distance from each sample to a fixed point (e.g. a tower)."""
        return np.hypot(self.x_m - x_m, self.y_m - y_m)

    @staticmethod
    def from_route(
        route: Route, dt_s: float = 0.5, repeats: int = 1
    ) -> "Trajectory":
        """Sample a route at ``dt_s``; ``repeats`` re-runs it end-to-end
        (the paper drove the handoff route twice per direction)."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        single = route.duration_s
        total = single * repeats
        times = np.arange(0.0, total, dt_s)
        xs, ys, speeds = route.positions_at(times % single)
        return Trajectory(times_s=times, x_m=xs, y_m=ys, speed_mps=speeds)
