"""Handoff simulation for the Fig. 9 driving experiment.

The paper configures the S20U into five radio-band settings (SA-n71
only; NSA-n71 + LTE; LTE only; SA-n71 + LTE; all bands) and drives a
10 km route, counting *horizontal* handoffs (tower changes) and
*vertical* handoffs (radio-technology changes). Key findings the model
reproduces:

* SA 5G has by far the fewest handoffs (no 4G anchor to flap against,
  wide n71 coverage -> few tower changes);
* NSA + LTE suffers ~90 vertical handoffs because the 5G leg
  attaches/detaches around a signal threshold with little hysteresis
  while data rides the LTE anchor;
* LTE-only sits in between (denser LTE grid -> more tower changes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mobility.trajectory import Trajectory
from repro.radio.bands import Band, LTE_1900, NR_N71
from repro.radio.signal import RsrpProcess
from repro.radio.towers import TowerGrid


class RadioTech(enum.Enum):
    """Active data radio shown on the Fig. 9 timeline."""

    LTE = "4G"
    NSA_5G = "NSA-5G"
    SA_5G = "SA-5G"
    NONE = "no-service"


@dataclass(frozen=True)
class BandConfiguration:
    """One of the five Samsung service-code band settings.

    Attributes:
        name: label used in Fig. 9.
        sa_enabled: SA n71 radio available.
        nsa_enabled: NSA n71 radio available (requires LTE anchor).
        lte_enabled: LTE radio available.
    """

    name: str
    sa_enabled: bool
    nsa_enabled: bool
    lte_enabled: bool

    def __post_init__(self) -> None:
        if not (self.sa_enabled or self.nsa_enabled or self.lte_enabled):
            raise ValueError("at least one radio must be enabled")
        if self.nsa_enabled and not self.lte_enabled:
            raise ValueError("NSA requires the LTE anchor to be enabled")


# Fig. 9's five settings.
FIG9_CONFIGURATIONS: Tuple[BandConfiguration, ...] = (
    BandConfiguration("SA-5G only", sa_enabled=True, nsa_enabled=False, lte_enabled=False),
    BandConfiguration("NSA-5G + LTE", sa_enabled=False, nsa_enabled=True, lte_enabled=True),
    BandConfiguration("LTE only", sa_enabled=False, nsa_enabled=False, lte_enabled=True),
    BandConfiguration("SA-5G + LTE", sa_enabled=True, nsa_enabled=False, lte_enabled=True),
    BandConfiguration("All Bands", sa_enabled=True, nsa_enabled=True, lte_enabled=True),
)


@dataclass
class HandoffEvent:
    """A single handoff occurrence on the timeline."""

    t_s: float
    kind: str  # "horizontal" | "vertical"
    from_tech: RadioTech
    to_tech: RadioTech
    tower_id: Optional[str] = None


@dataclass
class HandoffSummary:
    """Result of replaying one band configuration over the route."""

    configuration: BandConfiguration
    events: List[HandoffEvent]
    segments: List[Tuple[float, float, RadioTech]]  # (start, end, tech)

    @property
    def horizontal_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "horizontal")

    @property
    def vertical_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "vertical")

    @property
    def total_count(self) -> int:
        return len(self.events)

    def time_in_tech_s(self, tech: RadioTech) -> float:
        return sum(end - start for start, end, t in self.segments if t is tech)


@dataclass
class HandoffSimulator:
    """Replays a trajectory against n71 and LTE tower grids.

    Radio selection policy (per tick):

    * SA n71 is sticky: preferred whenever its RSRP clears a low floor,
      with wide hysteresis (the standalone network has no anchor to
      fall back to and pages through the same cells).
    * NSA attaches its 5G leg when n71 RSRP exceeds an attach threshold
      and drops it below a detach threshold only slightly lower — the
      narrow margin, crossed constantly by fading, is what produces the
      paper's ~90 vertical handoffs.
    * Otherwise LTE serves.

    Horizontal handoffs fire when the serving tower of the active
    technology changes between ticks.
    """

    n71_grid: TowerGrid
    lte_grid: TowerGrid
    seed: Optional[int] = None
    nsa_attach_dbm: float = -105.0
    nsa_detach_dbm: float = -108.0
    sa_floor_dbm: float = -124.0
    sa_lte_fallback_dbm: float = -118.0
    # Data-(in)activity promotion/demotion cycles. The paper's Table 2
    # notes 4G->5G switches are "very common" under NSA because the UE
    # demotes to the LTE anchor on data inactivity and promotes back on
    # the next burst; the monitoring workload is periodic, so the 5G leg
    # flaps twice per cycle. SA reselects to LTE (when enabled) far more
    # rarely, and the default "All Bands" setting splits sessions
    # between SA camping and NSA data, flapping at half the NSA rate.
    nsa_data_cycle_s: float = 25.0
    nsa_active_fraction: float = 0.55
    allbands_cycle_s: float = 50.0
    sa_lte_reselect_cycle_s: float = 110.0
    sa_lte_reselect_fraction: float = 0.12
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def run(
        self, trajectory: Trajectory, configuration: BandConfiguration
    ) -> HandoffSummary:
        """Replay the trajectory under one band configuration."""
        n71_signal = RsrpProcess(
            NR_N71, dt_s=max(trajectory.dt_s, 1e-3),
            seed=int(self._rng.integers(0, 2**31)),
        )
        lte_signal = RsrpProcess(
            LTE_1900, dt_s=max(trajectory.dt_s, 1e-3),
            seed=int(self._rng.integers(0, 2**31)),
        )

        events: List[HandoffEvent] = []
        segments: List[Tuple[float, float, RadioTech]] = []
        current_tech = RadioTech.NONE
        current_tower: Optional[str] = None
        segment_start = float(trajectory.times_s[0])
        nsa_leg_attached = False

        for i in range(len(trajectory)):
            t = float(trajectory.times_s[i])
            x, y = float(trajectory.x_m[i]), float(trajectory.y_m[i])
            speed = float(trajectory.speed_mps[i])

            n71_serving = self.n71_grid.serving_tower(x, y, NR_N71)
            lte_serving = self.lte_grid.serving_tower(x, y, LTE_1900)
            n71_rsrp = (
                n71_signal.step(n71_serving[1], speed)
                if n71_serving is not None
                else -999.0
            )
            lte_rsrp = (
                lte_signal.step(lte_serving[1], speed)
                if lte_serving is not None
                else -999.0
            )

            tech, tower = self._select(
                configuration,
                current_tech,
                nsa_leg_attached,
                n71_serving,
                n71_rsrp,
                lte_serving,
                lte_rsrp,
                t,
            )
            if configuration.nsa_enabled:
                nsa_leg_attached = tech is RadioTech.NSA_5G

            if tech is not current_tech:
                events.append(
                    HandoffEvent(
                        t_s=t,
                        kind="vertical",
                        from_tech=current_tech,
                        to_tech=tech,
                        tower_id=tower,
                    )
                )
                segments.append((segment_start, t, current_tech))
                segment_start = t
                current_tech = tech
                current_tower = tower
            elif tower is not None and current_tower is not None and tower != current_tower:
                events.append(
                    HandoffEvent(
                        t_s=t,
                        kind="horizontal",
                        from_tech=current_tech,
                        to_tech=tech,
                        tower_id=tower,
                    )
                )
                current_tower = tower
            elif tower is not None and current_tower is None:
                current_tower = tower

        segments.append(
            (segment_start, float(trajectory.times_s[-1]), current_tech)
        )
        # Drop the leading NONE bootstrap segment/event.
        if events and events[0].from_tech is RadioTech.NONE:
            events.pop(0)
        segments = [s for s in segments if s[2] is not RadioTech.NONE or s[1] > s[0]]
        return HandoffSummary(
            configuration=configuration, events=events, segments=segments
        )

    def _data_active(self, t_s: float, cycle_s: float, fraction: float) -> bool:
        """Square-wave data activity driving promotion/demotion flaps."""
        return (t_s % cycle_s) < fraction * cycle_s

    def _select(
        self,
        config: BandConfiguration,
        current: RadioTech,
        nsa_attached: bool,
        n71_serving,
        n71_rsrp: float,
        lte_serving,
        lte_rsrp: float,
        t_s: float,
    ) -> Tuple[RadioTech, Optional[str]]:
        n71_tower = n71_serving[0].tower_id if n71_serving is not None else None
        lte_tower = lte_serving[0].tower_id if lte_serving is not None else None
        n71_ok = n71_serving is not None and n71_rsrp > self.sa_floor_dbm

        if config.sa_enabled and config.nsa_enabled:
            # "All Bands": the UE camps on SA but data sessions ride the
            # NSA (EN-DC) path, flapping at half the NSA-only rate.
            if n71_ok:
                active = self._data_active(
                    t_s, self.allbands_cycle_s, self.nsa_active_fraction
                )
                if active and lte_serving is not None:
                    return RadioTech.NSA_5G, n71_tower
                return RadioTech.SA_5G, n71_tower
            if config.lte_enabled and lte_serving is not None:
                return RadioTech.LTE, lte_tower
            return RadioTech.NONE, None

        if config.sa_enabled:
            if n71_ok:
                if config.lte_enabled and lte_serving is not None:
                    # Occasional idle reselection to LTE (SA+LTE setting).
                    idle_on_lte = self._data_active(
                        t_s,
                        self.sa_lte_reselect_cycle_s,
                        self.sa_lte_reselect_fraction,
                    )
                    if idle_on_lte:
                        return RadioTech.LTE, lte_tower
                return RadioTech.SA_5G, n71_tower
            if config.lte_enabled and lte_serving is not None:
                return RadioTech.LTE, lte_tower
            return RadioTech.NONE, None

        if config.nsa_enabled and lte_serving is not None:
            threshold = self.nsa_detach_dbm if nsa_attached else self.nsa_attach_dbm
            signal_ok = n71_serving is not None and n71_rsrp > threshold
            active = self._data_active(
                t_s, self.nsa_data_cycle_s, self.nsa_active_fraction
            )
            if signal_ok and active:
                return RadioTech.NSA_5G, n71_tower
            return RadioTech.LTE, lte_tower

        if config.lte_enabled and lte_serving is not None:
            return RadioTech.LTE, lte_tower
        return RadioTech.NONE, None


def default_grids(
    route_waypoints,
    seed: int = 7,
) -> Dict[str, TowerGrid]:
    """Tower grids for the Fig. 9 route: sparse n71, denser LTE.

    n71's 600 MHz coverage lets one tower serve a long stretch (the
    paper counts only 13-20 horizontal handoffs on n71 over 10 km);
    urban LTE sites are denser (~30 handoffs).
    """
    n71 = TowerGrid.along_route(
        NR_N71, route_waypoints, count=14, jitter_m=120.0, seed=seed, prefix="n71"
    )
    lte = TowerGrid.along_route(
        LTE_1900, route_waypoints, count=31, jitter_m=80.0, seed=seed + 1, prefix="lte"
    )
    return {"n71": n71, "lte": lte}
