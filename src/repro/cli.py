"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                      # what can be regenerated
    python -m repro run fig9                  # print Fig. 9's rows
    python -m repro run table6 --json out.json
    python -m repro run fig17 --scale 0.5     # cheaper/faster variant

Each artifact id maps to one :mod:`repro.experiments` runner; ``--scale``
multiplies the workload knobs (trace counts, repetitions) so quick looks
and full-scale reproductions share one entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro import experiments as ex
from repro.experiments.export import export_json, to_jsonable


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _run_fig2(scale):
    return ex.run_latency_vs_distance(n_servers=_scaled(20, scale, 3))


def _run_fig3(scale):
    return ex.run_throughput_vs_distance(
        n_servers=_scaled(10, scale, 2), repetitions=_scaled(8, scale, 2)
    )


def _run_fig6(scale):
    return {
        "sa": ex.run_throughput_vs_distance(
            network_key="tmobile-sa-lowband",
            n_servers=_scaled(8, scale, 2),
            repetitions=_scaled(6, scale, 2),
        ),
        "nsa": ex.run_throughput_vs_distance(
            network_key="tmobile-nsa-lowband",
            n_servers=_scaled(8, scale, 2),
            repetitions=_scaled(6, scale, 2),
        ),
    }


def _run_fig17(scale):
    return ex.run_abr_comparison(
        n_traces=_scaled(20, scale, 4), n_chunks=50, duration_s=260
    )


def _run_fig18(scale):
    return {
        "predictors": ex.run_video_predictors(n_traces=_scaled(14, scale, 4)),
        "chunk_lengths": ex.run_chunk_lengths(n_traces=_scaled(14, scale, 4)),
        "interface_selection": ex.run_video_interface_selection(
            n_pairs=_scaled(16, scale, 4)
        ),
    }


def _run_fig19(scale):
    result = ex.run_web_factors(n_sites=_scaled(600, scale, 50))
    result.pop("dataset", None)  # raw arrays are bulky; keep the summaries
    result.pop("cdfs", None)
    return result


def _run_table6(scale):
    result = ex.run_web_selection(n_sites=_scaled(600, scale, 50))
    result.pop("reports", None)
    return result


ARTIFACTS: Dict[str, Dict] = {
    "table1": {"runner": lambda s: ex.run_table1_campaign(), "desc": "dataset statistics"},
    "fig2": {"runner": _run_fig2, "desc": "RTT vs UE-server distance (also fig1/fig5)"},
    "fig3": {"runner": _run_fig3, "desc": "Verizon mmWave DL/UL vs distance (also fig4)"},
    "fig6": {"runner": _run_fig6, "desc": "T-Mobile SA vs NSA throughput (also fig7)"},
    "fig8": {"runner": lambda s: ex.run_azure_transport(), "desc": "Azure transport settings"},
    "fig9": {"runner": lambda s: ex.run_handoff_drive(), "desc": "handoffs while driving"},
    "fig10": {"runner": lambda s: ex.run_rrc_inference(), "desc": "RRC-Probe sweeps (also fig25)"},
    "table2": {"runner": lambda s: ex.run_tail_power(), "desc": "tail/switch power"},
    "fig11": {"runner": lambda s: ex.run_throughput_power(), "desc": "throughput vs power (also fig26, table8)"},
    "fig12": {"runner": lambda s: ex.run_energy_efficiency(), "desc": "energy efficiency (also fig27)"},
    "fig13": {"runner": lambda s: ex.run_walking_power(), "desc": "power-RSRP-throughput walking data (also fig14)"},
    "fig15": {"runner": lambda s: ex.run_power_models(), "desc": "power-model MAPE comparison"},
    "table9": {"runner": lambda s: ex.run_software_monitor(), "desc": "software monitor benchmark (also table3, fig16)"},
    "fig17": {"runner": _run_fig17, "desc": "seven ABRs on 5G vs 4G"},
    "fig18": {"runner": _run_fig18, "desc": "predictors / chunk length / interface selection (also table4)"},
    "fig19": {"runner": _run_fig19, "desc": "web PLT & energy factors (also fig20, fig21)"},
    "table6": {"runner": _run_table6, "desc": "DT radio interface selection (also fig22)"},
    "fig23": {"runner": lambda s: ex.run_carrier_aggregation(), "desc": "4CC vs 8CC carrier aggregation"},
    "fig24": {"runner": lambda s: ex.run_server_survey(), "desc": "Minnesota server survey"},
}


def _render(result) -> str:
    """Best-effort plain-text rendering of a runner result."""
    import json

    if isinstance(result, dict) and "rows" in result and result["rows"]:
        rows = result["rows"]
        if isinstance(rows[0], dict):
            headers = list(rows[0].keys())
            table_rows = [[row.get(h) for h in headers] for row in rows]
        else:
            headers = [f"col{i}" for i in range(len(rows[0]))]
            table_rows = rows
        safe_rows = [
            ["" if cell is None else cell for cell in row] for row in table_rows
        ]
        return ex.format_table(headers, safe_rows)
    return json.dumps(to_jsonable(result), indent=1)[:8000]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'A Variegated Look at 5G in the Wild'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable artifacts")
    run = sub.add_parser("run", help="regenerate one artifact")
    run.add_argument("artifact", choices=sorted(ARTIFACTS))
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload multiplier (0.25 = quick look, 1.0 = bench scale)",
    )
    run.add_argument("--json", metavar="PATH", help="write the result as JSON")
    render = sub.add_parser("render", help="render a figure as SVG")
    from repro.viz.figures import FIGURES

    render.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    render.add_argument("outdir", help="directory for the SVG files")
    render.add_argument("--scale", type=float, default=0.5)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(k) for k in ARTIFACTS)
        for key in sorted(ARTIFACTS):
            print(f"{key.ljust(width)}  {ARTIFACTS[key]['desc']}")
        return 0
    if args.scale <= 0:
        print("--scale must be positive", file=sys.stderr)
        return 2
    if args.command == "render":
        from repro.viz.figures import render_figure

        paths = render_figure(args.figure, args.outdir, args.scale)
        for path in paths:
            print(f"wrote {path}")
        return 0
    runner: Callable = ARTIFACTS[args.artifact]["runner"]
    result = runner(args.scale)
    try:
        if args.json:
            path = export_json(result, args.json)
            print(f"wrote {path}")
        else:
            print(_render(result))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
