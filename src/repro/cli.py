"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                      # what can be regenerated
    python -m repro run fig9                  # print Fig. 9's rows
    python -m repro run table6 --json out.json
    python -m repro run fig17 --scale 0.5     # cheaper/faster variant
    python -m repro run fig3 --seed 42        # reseed the simulation
    python -m repro sweep fig2 fig3 fig9 --workers 4
    python -m repro sweep fig17 --cache-dir .repro-cache   # incremental
    python -m repro sweep fig2 fig9 --events run.jsonl --manifest run.json
    python -m repro stats run.jsonl           # p50/p95, retries, hit rate
    python -m repro stats run.jsonl --json    # machine-readable aggregates
    python -m repro report run.jsonl --out report.html   # the HTML artifact
    python -m repro serve --port 8321 --data-dir .repro-serve  # job server
    python -m repro cache ls .repro-cache     # inspect an on-disk cache
    python -m repro cache gc .repro-cache --max-bytes 1000000  # LRU evict
    python -m repro sweep fig2 fig9 --archive .repro-archive  # cross-run store
    python -m repro compare last~1 last       # regression gate (exit 1)
    python -m repro history --html trends.html  # sparklines + change flags
    python -m repro watch run.jsonl           # live view of an in-flight sweep
    python -m repro watch http://127.0.0.1:8321/v1/events?follow=1

Each artifact id maps to one :mod:`repro.experiments` runner
registered with the scenario engine (:mod:`repro.engine`); ``--scale``
multiplies the workload knobs (trace counts, repetitions), ``--seed``
reseeds every runner deterministically, and ``sweep`` fans a set of
artifacts over a worker pool with an optional on-disk result cache.
``--events`` appends the sweep's run ledger (JSONL, rendered by the
``stats`` subcommand), and ``--manifest`` records the provenance of
every produced value; a manifest is also written next to each
``--json`` export and into the cache directory (docs/observability.md).

With a ledger attached, sweeps also trace hierarchical spans into it
(disable with ``--no-trace``; docs/tracing.md), score the paper-pinned
calibration gauges over the results (``gauge`` events; override
targets with ``--gauges FILE``, export OpenMetrics with ``--metrics``;
docs/calibration.md), and can dump per-job cProfile stats
(``--profile-dir``). ``report`` renders a ledger into a self-contained
HTML page — sweep timeline, span flames, latency percentiles, and the
gauge scoreboard — and exits 1 when any gauge fails.

``serve`` runs the engine as a long-lived job server (stdlib HTTP/JSONL
API, shared size-bounded result cache, per-tenant fairness, graceful
drain on SIGTERM; docs/serve.md), and ``cache`` inspects or
garbage-collects any result cache directory (LRU by mtime).

``--archive`` (or ``$REPRO_ARCHIVE``) appends each sweep's run record
to an append-only cross-run archive; ``compare`` statistically diffs
two archived runs (bootstrap latency CIs, gauge drift, cache deltas)
and exits 1 past thresholds, ``history`` renders trend sparklines with
change-point flags (terminal or ``--html``), and ``watch`` tails a
growing ledger — or a serve follow stream — as a live status panel
(docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import experiments as ex
from repro.engine import (
    JobSpec,
    ProgressTracker,
    ResultCache,
    artifact_jobs,
    execute,
    registry,
)
from repro.experiments.export import export_json, to_jsonable
from repro.kernels.backend import BackendUnavailableError, UnknownBackendError


def _artifact_ids() -> List[str]:
    return registry.available(kind="artifact")


def _render(result) -> str:
    """Best-effort plain-text rendering of a runner result."""
    import json

    if isinstance(result, dict) and "rows" in result and result["rows"]:
        rows = result["rows"]
        if isinstance(rows[0], dict):
            headers = list(rows[0].keys())
            table_rows = [[row.get(h) for h in headers] for row in rows]
        else:
            headers = [f"col{i}" for i in range(len(rows[0]))]
            table_rows = rows
        safe_rows = [
            ["" if cell is None else cell for cell in row] for row in table_rows
        ]
        return ex.format_table(headers, safe_rows)
    return json.dumps(to_jsonable(result), indent=1)[:8000]


def _check_artifacts(names: List[str]) -> List[str]:
    """Names the registry cannot dispatch (empty list means all known)."""
    known = set(registry.available())
    return [name for name in names if name not in known and ":" not in name]


def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload multiplier (0.25 = quick look, 1.0 = bench scale)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; per-artifact seeds are derived deterministically "
        "(default: each runner's built-in seed)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="on-disk result cache; repeated invocations become incremental",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="compute backend for the kernels (numpy64, numpy32, numba "
        "when available; default numpy64, or $REPRO_BACKEND). "
        "Non-default backends key the cache separately",
    )
    parser.add_argument("--json", metavar="PATH", help="write the result as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'A Variegated Look at 5G in the Wild'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list regenerable artifacts")

    run = sub.add_parser("run", help="regenerate one artifact")
    run.add_argument("artifact", metavar="ARTIFACT")
    _add_common_run_args(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (forwarded to the scenario engine)",
    )

    sweep = sub.add_parser(
        "sweep", help="regenerate several artifacts through the job engine"
    )
    sweep.add_argument("artifacts", metavar="ARTIFACT", nargs="+")
    _add_common_run_args(sweep)
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep.add_argument(
        "--dispatch",
        choices=["auto", "batch", "per-job"],
        default="auto",
        help="parallel executor: 'batch' leases runs of jobs to "
        "persistent warm workers (default when workers > 1), "
        "'per-job' spawns one process per job",
    )
    sweep.add_argument(
        "--lease-size",
        type=int,
        default=None,
        metavar="N",
        help="jobs per batch lease (default: ~4 leases per worker)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per job on transient failure",
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    sweep.add_argument(
        "--events",
        metavar="PATH.jsonl",
        default=None,
        help="append the sweep's event ledger (JSONL) here",
    )
    sweep.add_argument(
        "--manifest",
        metavar="PATH.json",
        default=None,
        help="write the run manifest (provenance record) here",
    )
    sweep.add_argument(
        "--keep-going",
        action="store_true",
        help="exit 0 even when jobs fail, as long as the sweep itself "
        "ran to completion (failures still land in the manifest/ledger)",
    )
    sweep.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="stop launching jobs once more than N have failed; the "
        "rest are recorded as skipped and the manifest is marked partial",
    )
    sweep.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="FAULT[:k=v,...]",
        help="inject a deterministic fault (repeatable); e.g. "
        "'crash:at=1', 'transient:rate=0.5', 'cache_corrupt'. "
        "Seeded from --seed. See docs/robustness.md",
    )
    sweep.add_argument(
        "--no-trace",
        action="store_true",
        help="disable hierarchical span tracing (on by default when "
        "--events is given; see docs/tracing.md)",
    )
    sweep.add_argument(
        "--profile-dir",
        metavar="DIR",
        default=None,
        help="dump one cProfile .pstats file per successful job here",
    )
    sweep.add_argument(
        "--gauges",
        metavar="FILE.json",
        default=None,
        help="calibration-gauge target overrides "
        '({"gauge": {"target": ...}}); see docs/calibration.md',
    )
    sweep.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the gauge scoreboard + job counts as an "
        "OpenMetrics textfile here",
    )
    sweep.add_argument(
        "--ues",
        type=int,
        default=None,
        metavar="N",
        help="fleet population size; turns 'sweep fleet' into a "
        "sharded fleet sweep (docs/fleet.md)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="fleet shard count (default: one shard per ~4096 UEs); "
        "any value yields bit-identical results",
    )
    sweep.add_argument(
        "--city",
        type=float,
        default=None,
        metavar="METERS",
        help="fleet city extent per side (default 4000)",
    )
    sweep.add_argument(
        "--archive",
        metavar="DIR",
        default=None,
        help="append this run's record to a cross-run archive "
        "(default: $REPRO_ARCHIVE; see 'repro compare'/'repro history')",
    )

    stats = sub.add_parser(
        "stats", help="summarise an event ledger written with --events"
    )
    stats.add_argument("events", metavar="EVENTS.jsonl")
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the aggregates as JSON instead of the table",
    )

    report = sub.add_parser(
        "report",
        help="render an event ledger into a self-contained HTML report",
    )
    report.add_argument("events", metavar="EVENTS.jsonl")
    report.add_argument(
        "--out",
        metavar="PATH.html",
        default="report.html",
        help="output HTML path (default: report.html)",
    )
    report.add_argument(
        "--manifest",
        metavar="PATH.json",
        default=None,
        help="run manifest to embed as provenance",
    )
    report.add_argument(
        "--gauges",
        metavar="FILE.json",
        default=None,
        help="re-score recorded gauges against overridden targets",
    )
    report.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also write the (re-scored) gauges as an OpenMetrics "
        "textfile",
    )

    compare = sub.add_parser(
        "compare",
        help="statistical diff of two archived runs; exits 1 on regression",
    )
    compare.add_argument(
        "run_a",
        metavar="RUN_A",
        help="baseline: run id, unique prefix, last[~N], or a record "
        "JSON path",
    )
    compare.add_argument(
        "run_b", metavar="RUN_B", help="candidate (same reference forms)"
    )
    compare.add_argument(
        "--archive",
        metavar="DIR",
        default=None,
        help="run archive to resolve references in "
        "(default: $REPRO_ARCHIVE or .repro-archive)",
    )
    compare.add_argument(
        "--p50-ratio",
        type=float,
        default=2.0,
        metavar="X",
        help="per-runner p50 latency ratio (B/A) beyond this is a "
        "regression (default 2.0)",
    )
    compare.add_argument(
        "--cache-hit-drop",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="absolute cache hit-rate drop that counts as a regression "
        "(default 0.25)",
    )
    compare.add_argument(
        "--allow-gauge-fail",
        action="store_true",
        help="do not treat a gauge flipping to fail as a regression",
    )
    compare.add_argument(
        "--allow-new-failures",
        action="store_true",
        help="do not treat failures/timeouts appearing from a clean "
        "baseline as a regression",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="print the full comparison as JSON instead of the summary",
    )

    history = sub.add_parser(
        "history",
        help="trend sparklines and change-point flags over the run archive",
    )
    history.add_argument(
        "--archive",
        metavar="DIR",
        default=None,
        help="run archive to read (default: $REPRO_ARCHIVE or "
        ".repro-archive)",
    )
    history.add_argument(
        "--limit",
        type=int,
        default=50,
        metavar="N",
        help="most recent runs to cover (default 50)",
    )
    history.add_argument(
        "--html",
        metavar="PATH.html",
        default=None,
        help="write a self-contained HTML trend page instead of the "
        "terminal sparklines",
    )

    watch_cmd = sub.add_parser(
        "watch",
        help="live terminal view of a growing ledger or a serve "
        "follow stream",
    )
    watch_cmd.add_argument(
        "source",
        metavar="LEDGER|URL",
        help="events JSONL path (may not exist yet) or an http(s):// "
        "follow URL such as serve's /v1/events?follow=1",
    )
    watch_cmd.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="redraw cadence (default 0.5)",
    )
    watch_cmd.add_argument(
        "--once",
        action="store_true",
        help="render the current state once and exit",
    )
    watch_cmd.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop watching after this long even if the run is still "
        "going (for CI)",
    )

    render = sub.add_parser("render", help="render a figure as SVG")
    from repro.viz.figures import FIGURES

    render.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    render.add_argument("outdir", help="directory for the SVG files")
    render.add_argument("--scale", type=float, default=0.5)

    serve = sub.add_parser(
        "serve",
        help="run the engine as a long-lived sweep job server "
        "(HTTP/JSONL API; docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321, help="0 picks a free port"
    )
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        default=".repro-serve",
        help="cache, artifacts, ledgers, and journal all live here",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="sweeps in flight at once (worker threads)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="queued jobs per tenant before 429",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget for the shared result cache (default 64 MiB)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock timeout",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="default extra attempts per job on transient failure",
    )
    serve.add_argument(
        "--no-replay",
        action="store_true",
        help="skip replaying the submission journal on startup",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical spans into each job's ledger",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep (1 = serial in the worker "
        "thread; >1 fans out via batch leases)",
    )
    serve.add_argument(
        "--dispatch",
        choices=["auto", "batch", "per-job"],
        default="auto",
        help="parallel executor for multi-worker sweeps",
    )
    serve.add_argument(
        "--lease-size",
        type=int,
        default=None,
        metavar="N",
        help="jobs per batch lease (default: ~4 leases per worker)",
    )
    serve.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="server-wide default compute backend (a submission's own "
        "'backend' field wins)",
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect or garbage-collect a result cache directory"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_action", required=True)
    cache_ls = cache_sub.add_parser(
        "ls", help="list entries (least recently used first) + totals"
    )
    cache_ls.add_argument("cache_dir", metavar="DIR")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a byte budget"
    )
    cache_gc.add_argument("cache_dir", metavar="DIR")
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        metavar="N",
        help="target on-disk size; entries are evicted LRU until under it",
    )
    return parser


def _fail_unknown(names: List[str]) -> int:
    print(
        f"error: unknown artifact id(s): {', '.join(names)} "
        "(run 'python -m repro list' to see what can be regenerated)",
        file=sys.stderr,
    )
    return 2


def _print_result(result, json_path: Optional[str]) -> None:
    try:
        if json_path:
            path = export_json(result, json_path)
            print(f"wrote {path}")
        else:
            print(_render(result))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _cmd_run(args) -> int:
    unknown = _check_artifacts([args.artifact])
    if unknown:
        return _fail_unknown(unknown)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    spec = JobSpec(
        runner=args.artifact, seed=args.seed, scale=args.scale, label=args.artifact
    )
    try:
        result = execute(
            [spec], workers=args.workers, cache=cache, backend=args.backend
        )
    except (UnknownBackendError, BackendUnavailableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outcome = result.outcomes[0]
    if outcome.status == "failed":
        failure = outcome.failure
        print(
            f"error: {failure.label} failed after {failure.attempts} attempt(s): "
            f"{failure.error_type}: {failure.error}",
            file=sys.stderr,
        )
        return 1
    _print_result(outcome.value, args.json)
    return 0


def _sweep_payload_key(outcome, display_counts) -> str:
    """JSON export key for one outcome, unique across the whole sweep.

    Sweeping the same artifact twice (``sweep fig2 fig2``) used to key
    both results by the bare display name, so the dict silently kept
    only the last one; repeated names now get a ``#index`` suffix while
    unique names keep their plain, stable key.
    """
    display = outcome.spec.display
    if display_counts[display] > 1:
        return f"{display}#{outcome.spec.index}"
    return display


def _fleet_spec_from_args(args):
    """Build the FleetSpec for a ``sweep fleet --ues N`` invocation.

    Returns the spec, or ``None`` after printing why (the caller exits
    2). ``--seed`` becomes the fleet key, so the whole population —
    not just per-job RNG — is reseeded deterministically.
    """
    from repro.fleet import DEFAULT_KEY, FleetSpec

    if args.artifacts != ["fleet"]:
        print(
            "error: --ues/--shards/--city configure a fleet sweep; "
            "use them with exactly 'sweep fleet'",
            file=sys.stderr,
        )
        return None
    try:
        return FleetSpec(
            ues=args.ues,
            key=args.seed if args.seed is not None else DEFAULT_KEY,
            city_extent_m=args.city if args.city is not None else 4000.0,
        )
    except ValueError as exc:
        print(f"error: bad fleet parameters: {exc}", file=sys.stderr)
        return None


def _fleet_summary(fleet_spec, result):
    """Merge a fleet sweep's shard partials into the final summary.

    Returns ``None`` (with a message) when shards failed — a fleet
    summary over a partial population would be silently wrong.
    """
    from repro.fleet import finalize_summary, merge_partials

    partials = [
        outcome.value
        for outcome in result.outcomes
        if outcome.status in ("ok", "cached")
    ]
    if len(partials) != len(result):
        print(
            "fleet summary skipped: "
            f"{len(result) - len(partials)} shard(s) failed",
            file=sys.stderr,
        )
        return None
    return finalize_summary(fleet_spec, merge_partials(partials))


def _render_fleet_summary(summary) -> str:
    meta = summary["fleet"]
    lines = [
        f"fleet: {meta['ues']} UEs x {meta['ticks']} ticks "
        f"(dt {meta['dt_s']} s, device {meta['device']}, "
        f"{meta['shards']} shard(s), key {meta['key']})"
    ]
    rows = []
    for name, entry in summary["groups"].items():
        q = entry["quantiles"]
        rows.append([
            name,
            entry["count"],
            _fmt_stat(entry["mean"]),
            _fmt_stat(q.get("50")),
            _fmt_stat(q.get("95")),
            _fmt_stat(entry["max"]),
        ])
    lines.append(
        ex.format_table(
            ["group", "samples", "mean", "p50", "p95", "max"], rows
        )
    )
    return "\n".join(lines)


def _fmt_stat(value) -> str:
    return "n/a" if value is None else f"{value:.2f}"


def _cmd_sweep(args) -> int:
    from collections import Counter

    unknown = _check_artifacts(args.artifacts)
    if unknown:
        return _fail_unknown(unknown)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    fleet_spec = None
    if args.ues is not None:
        fleet_spec = _fleet_spec_from_args(args)
        if fleet_spec is None:
            return 2
        from repro.fleet import fleet_jobs

        specs = fleet_jobs(fleet_spec, shards=args.shards)
    else:
        specs = artifact_jobs(
            args.artifacts, base_seed=args.seed, scale=args.scale
        )
    if fleet_spec is not None:
        # Emits reducer_snapshot events into the ledger as shard
        # partials settle, so `repro watch` shows converging fleet
        # quantiles mid-sweep (execute() attaches the events sink).
        from repro.fleet import FleetSnapshotTracker

        tracker: ProgressTracker = FleetSnapshotTracker(
            shards_total=len(specs),
            stream=None if args.quiet else sys.stderr,
        )
    else:
        tracker = ProgressTracker(stream=None if args.quiet else sys.stderr)
    events_sink = None
    if args.events:
        from repro.obs.events import EventLog

        events_sink = EventLog(args.events)
    faults = None
    if args.inject:
        from repro.faults import plan_from_args

        try:
            faults = plan_from_args(args.inject, seed=args.seed)
        except ValueError as exc:
            print(f"error: bad --inject spec: {exc}", file=sys.stderr)
            return 2
    gauge_results = None
    try:
        try:
            result = execute(
                specs,
                workers=args.workers,
                timeout_s=args.timeout,
                retries=args.retries,
                cache=cache,
                progress=tracker,
                events=events_sink,
                faults=faults,
                max_failures=args.max_failures,
                trace=False if args.no_trace else None,
                profile_dir=args.profile_dir,
                dispatch=args.dispatch,
                lease_size=args.lease_size,
                backend=args.backend,
            )
        except (UnknownBackendError, BackendUnavailableError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        fleet_summary = None
        if fleet_spec is not None:
            fleet_summary = _fleet_summary(fleet_spec, result)
        gauge_results = _sweep_gauges(
            args, result, events_sink, fleet_summary=fleet_summary
        )
        if gauge_results is None:
            return 2
    finally:
        if events_sink is not None:
            events_sink.close()
    print(result.summary())
    if fleet_summary is not None:
        print(_render_fleet_summary(fleet_summary))
    _print_gauges(gauge_results)
    if cache is not None:
        print(
            f"cache hits: {result.cached_count}/{len(result)} "
            f"({100.0 * result.cache_hit_rate:.0f}%)"
        )
    for failure in result.failures():
        print(
            f"FAILED {failure.label}: {failure.error_type}: {failure.error} "
            f"(after {failure.attempts} attempt(s))"
        )
    if result.skipped_count:
        print(
            f"SKIPPED {result.skipped_count} job(s): failure budget "
            f"(--max-failures {args.max_failures}) exhausted"
        )
    if args.events:
        print(f"wrote {args.events}")
    if args.json:
        if fleet_summary is not None:
            payload = to_jsonable(fleet_summary)
        else:
            display_counts = Counter(o.spec.display for o in result.outcomes)
            payload = {
                _sweep_payload_key(outcome, display_counts): to_jsonable(
                    outcome.value
                )
                for outcome in result.outcomes
                if outcome.status in ("ok", "cached")
            }
        path = export_json(payload, args.json)
        print(f"wrote {path}")
    for manifest_path in _sweep_manifest_paths(args):
        path = _write_sweep_manifest(result, args, manifest_path)
        print(f"wrote {path}")
    _archive_sweep(args, result, gauge_results, fleet_spec)
    if args.keep_going:
        return 0
    return 1 if result.failed_count or result.skipped_count else 0


def _archive_dir(arg: Optional[str]) -> str:
    """The archive directory for compare/history: flag, env, default."""
    import os

    return arg or os.environ.get("REPRO_ARCHIVE") or ".repro-archive"


def _archive_sweep(args, result, gauge_results, fleet_spec) -> None:
    """Append this sweep's record to the cross-run archive, if asked.

    Archiving is opt-in (``--archive`` or ``$REPRO_ARCHIVE``) and never
    fails the sweep: a broken archive disk prints a warning, not a
    traceback — the results themselves already landed.
    """
    import os

    archive_dir = args.archive or os.environ.get("REPRO_ARCHIVE")
    if not archive_dir:
        return
    from repro.obs.history import RunArchive, record_from_result

    label = " ".join(args.artifacts)
    if fleet_spec is not None:
        label = f"fleet --ues {fleet_spec.ues}"
    try:
        record = record_from_result(
            result,
            label=label,
            gauges=gauge_results,
            dispatch=args.dispatch,
            backend=args.backend,
        )
        run_id = RunArchive(archive_dir).append(record)
    except OSError as exc:
        print(
            f"warning: could not archive run in {archive_dir}: {exc}",
            file=sys.stderr,
        )
        return
    print(f"archived {run_id} in {archive_dir}")


def _load_gauge_overrides(path):
    """Parsed ``--gauges`` overrides, or ``None`` after printing why."""
    from repro.obs.calib import load_overrides

    try:
        return load_overrides(path)
    except (OSError, ValueError) as exc:
        print(f"error: bad --gauges file {path}: {exc}", file=sys.stderr)
        return None


def _sweep_gauges(args, result, events_sink, fleet_summary=None):
    """Score the calibration gauges over a sweep's outcomes.

    Emits one ``gauge`` event per result into the (still-open) ledger,
    honours ``--gauges`` target overrides and the ``--metrics``
    OpenMetrics export, and returns the evaluated list — empty when
    gauges are not in play, ``None`` on a bad ``--gauges`` file (the
    caller exits 2). For a fleet sweep the per-shard partials are not
    gaugeable on their own, so the merged ``fleet_summary`` is scored
    under the ``fleet`` runner instead.
    """
    wants_gauges = bool(args.events or args.gauges or args.metrics)
    if not wants_gauges:
        return []
    from repro.obs.calib import (
        PAPER_GAUGES,
        apply_overrides,
        evaluate_gauges,
        values_from_result,
    )

    gauges = PAPER_GAUGES
    if args.gauges:
        overrides = _load_gauge_overrides(args.gauges)
        if overrides is None:
            return None
        try:
            gauges = apply_overrides(gauges, overrides)
        except ValueError as exc:
            print(f"error: bad --gauges file {args.gauges}: {exc}",
                  file=sys.stderr)
            return None
    if fleet_summary is not None:
        values = {"fleet": fleet_summary}
    else:
        values = values_from_result(result)
    evaluated = evaluate_gauges(values, gauges)
    if events_sink is not None:
        for gauge in evaluated:
            events_sink.emit("gauge", **gauge.event_fields())
    if args.metrics:
        from repro.obs.openmetrics import render_openmetrics

        counts = {
            status: count
            for status, count in (
                ("ok", result.ok_count),
                ("cached", result.cached_count),
                ("failed", result.failed_count),
                ("skipped", result.skipped_count),
            )
            if count
        }
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(render_openmetrics(evaluated, counts))
        print(f"wrote {args.metrics}")
    return evaluated


def _print_gauges(gauge_results) -> None:
    """One scoreboard line + one line per non-pass gauge."""
    scored = [g for g in gauge_results or [] if g.status != "skipped"]
    if not scored:
        return
    tally = {"pass": 0, "warn": 0, "fail": 0}
    for gauge in scored:
        tally[gauge.status] = tally.get(gauge.status, 0) + 1
    print(
        "calibration gauges: {pass_} pass, {warn} warn, {fail} fail "
        "({n} scored)".format(
            pass_=tally["pass"], warn=tally["warn"], fail=tally["fail"],
            n=len(scored),
        )
    )
    for gauge in scored:
        if gauge.status == "pass":
            continue
        detail = f" ({gauge.detail})" if gauge.detail else ""
        print(
            f"  {gauge.status.upper()} {gauge.name} [{gauge.paper_ref}]: "
            f"measured {gauge.measured:.4g} vs target {gauge.target:.4g} "
            f"{gauge.unit}{detail}"
        )


def _sweep_manifest_paths(args) -> List[str]:
    """Everywhere this sweep's manifest belongs: the explicit
    ``--manifest`` path, a sibling of the ``--json`` export, and the
    cache directory — so any artifact or cache entry traces back to the
    run that produced it."""
    from pathlib import Path

    from repro.obs.manifest import manifest_path_for

    paths = []
    if args.manifest:
        paths.append(Path(args.manifest))
    if args.json:
        paths.append(manifest_path_for(args.json))
    if args.cache_dir:
        paths.append(Path(args.cache_dir) / "last-sweep.manifest.json")
    # De-duplicate while keeping order (--manifest may equal a default).
    unique = []
    for path in paths:
        if path not in unique:
            unique.append(path)
    return unique


def _write_sweep_manifest(result, args, path):
    from repro.obs.manifest import build_manifest, write_manifest

    manifest = build_manifest(
        result,
        base_seed=args.seed,
        scale=args.scale,
        argv=["sweep"] + list(args.artifacts),
        cache_dir=args.cache_dir,
        events_path=args.events,
    )
    return write_manifest(manifest, path)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.config import DEFAULT_CACHE_MAX_BYTES, ServeConfig
    from repro.serve.http import ServeHTTP
    from repro.serve.server import ServeServer

    try:
        config = ServeConfig(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            max_concurrency=args.concurrency,
            queue_limit=args.queue_limit,
            cache_max_bytes=(
                args.cache_max_bytes
                if args.cache_max_bytes is not None
                else DEFAULT_CACHE_MAX_BYTES
            ),
            timeout_s=args.timeout,
            retries=args.retries,
            replay_journal=not args.no_replay,
            trace=args.trace,
            job_workers=args.job_workers,
            dispatch=args.dispatch,
            lease_size=args.lease_size,
            backend=args.backend,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    core = ServeServer(config)
    http = ServeHTTP(core)

    async def _main() -> None:
        import signal as _signal

        await http.start()
        replayed = core.start()
        print(
            f"repro serve listening on http://{config.host}:{http.port} "
            f"(data: {config.root})",
            file=sys.stderr,
        )
        if replayed:
            print(
                f"replayed {replayed} journaled submission(s)",
                file=sys.stderr,
            )
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, http.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        await http.serve_until_shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        core.close()
    counts = core.jobs.counts_by_state()
    settled = sum(counts.get(state, 0) for state in ("done", "failed",
                                                     "cancelled"))
    print(
        f"drained: {settled} job(s) settled "
        f"({counts.get('done', 0)} done, {counts.get('failed', 0)} failed, "
        f"{counts.get('cancelled', 0)} cancelled); "
        f"ledger at {config.ledger_path}",
        file=sys.stderr,
    )
    return 0


def _cmd_cache(args) -> int:
    import time

    cache = ResultCache(args.cache_dir)
    if args.cache_action == "gc":
        summary = cache.gc(args.max_bytes)
        print(
            f"evicted {summary['evicted']} entry(ies), "
            f"freed {summary['freed_bytes']} bytes; "
            f"{summary['kept']} kept, {summary['size_bytes']} bytes on disk"
        )
        return 0
    stats = cache.entry_stats()
    now_ns = time.time_ns()
    for path, size, mtime_ns in stats:
        age_s = max(0.0, (now_ns - mtime_ns) / 1e9)
        print(f"{size:>10}  {age_s:>9.1f}s  {path.name}")
    quarantined = (
        len(list(cache.quarantine_dir.iterdir()))
        if cache.quarantine_dir.is_dir()
        else 0
    )
    tail = f", {quarantined} quarantined" if quarantined else ""
    print(
        f"{len(stats)} entry(ies), "
        f"{sum(size for _, size, _ in stats)} bytes{tail}"
    )
    return 0


def _cmd_stats(args) -> int:
    import warnings

    from repro.obs.stats import aggregate_events_file, render_stats

    try:
        # A torn final line (writer killed mid-append) is degraded data,
        # not a corrupt ledger: surface the reader's warning on stderr
        # and still render everything before the tear. Malformed lines
        # anywhere else stay a hard error (exit 2).
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            aggregate = aggregate_events_file(args.events)
    except OSError as exc:
        print(f"error: cannot read {args.events}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for warning in caught:
        print(f"warning: {warning.message}", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(aggregate, indent=2, sort_keys=True))
    else:
        print(render_stats(aggregate))
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import write_report

    if args.gauges and _load_gauge_overrides(args.gauges) is None:
        return 2  # clear error already printed; don't blame the ledger
    try:
        model = write_report(
            args.events,
            args.out,
            manifest_path=args.manifest,
            gauges_path=args.gauges,
        )
    except OSError as exc:
        print(f"error: cannot read {args.events}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {args.out}")
    gauges = model.get("gauges", [])
    scored = [g for g in gauges if g.get("status") != "skipped"]
    if scored:
        counts = {"pass": 0, "warn": 0, "fail": 0}
        for gauge in scored:
            status = gauge.get("status", "fail")
            counts[status] = counts.get(status, 0) + 1
        print(
            "calibration gauges: {pass_} pass, {warn} warn, {fail} fail "
            "({n} scored)".format(
                pass_=counts["pass"], warn=counts["warn"],
                fail=counts["fail"], n=len(scored),
            )
        )
    if args.metrics:
        from repro.obs.openmetrics import render_openmetrics

        overall = model.get("aggregate", {}).get("overall", {})
        counts_out = {
            status: overall.get(status, 0)
            for status in ("ok", "cached", "failed", "skipped")
            if overall.get(status)
        }
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(render_openmetrics(gauges, counts_out))
        print(f"wrote {args.metrics}")
    failed = any(g.get("status") == "fail" for g in gauges)
    return 1 if failed else 0


def _cmd_compare(args) -> int:
    import json
    import warnings

    from repro.obs.compare import (
        CompareThresholds,
        compare_records,
        render_comparison,
    )
    from repro.obs.history import RunArchive

    archive = RunArchive(_archive_dir(args.archive))
    try:
        # Newer-schema records compare best-effort with a warning
        # (satellite: versioned aggregates); surface it on stderr so
        # the comparison output itself stays machine-greppable.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            record_a = archive.resolve(args.run_a)
            record_b = archive.resolve(args.run_b)
            comparison = compare_records(
                record_a,
                record_b,
                CompareThresholds(
                    p50_ratio=args.p50_ratio,
                    cache_hit_drop=args.cache_hit_drop,
                    gauge_fail=not args.allow_gauge_fail,
                    new_failures=not args.allow_new_failures,
                ),
            )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for warning in caught:
        print(f"warning: {warning.message}", file=sys.stderr)
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(render_comparison(comparison))
    return 0 if comparison["ok"] else 1


def _cmd_history(args) -> int:
    from repro.obs.history import (
        RunArchive,
        build_history,
        render_history_html,
        render_history_text,
    )

    archive = RunArchive(_archive_dir(args.archive))
    if not archive.index_path.exists():
        print(
            f"error: no run archive at {archive.root} "
            "(sweep with --archive or set $REPRO_ARCHIVE first)",
            file=sys.stderr,
        )
        return 2
    try:
        model = build_history(archive, limit=args.limit)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read archive {archive.root}: {exc}",
              file=sys.stderr)
        return 2
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_history_html(model))
        print(f"wrote {args.html}")
    else:
        print(render_history_text(model))
    return 0


def _cmd_watch(args) -> int:
    import warnings

    from repro.obs.watch import watch

    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code = watch(
                args.source,
                interval_s=args.interval,
                duration_s=args.duration,
                once=args.once,
            )
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return 130
    except OSError as exc:
        print(f"error: cannot follow {args.source}: {exc}", file=sys.stderr)
        return 2
    for warning in caught:
        print(f"warning: {warning.message}", file=sys.stderr)
    return code


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        ids = _artifact_ids()
        width = max(len(k) for k in ids)
        for key in ids:
            print(f"{key.ljust(width)}  {registry.describe(key)}")
        return 0
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "history":
        return _cmd_history(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if getattr(args, "scale", 1.0) <= 0:
        print("--scale must be positive", file=sys.stderr)
        return 2
    if args.command == "render":
        from repro.viz.figures import render_figure

        paths = render_figure(args.figure, args.outdir, args.scale)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_sweep(args)


if __name__ == "__main__":
    raise SystemExit(main())
