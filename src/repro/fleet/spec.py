"""Fleet scenario specification: one city, N UEs, pure determinism.

A :class:`FleetSpec` fully determines a fleet sweep: every per-UE
attribute (carrier network, mobility pattern, app workload, home
position, walking phase, tower jitter) and every per-tick random
quantity is a pure function of ``(spec.key, ue_index, tick)`` via the
counter-based generator in :mod:`repro.kernels.ctrrng`. Nothing
depends on shard boundaries, worker count, or execution order — which
is what makes serial and sharded-parallel fleet sweeps bit-identical
(docs/fleet.md).

The spec round-trips losslessly through :meth:`FleetSpec.to_dict` /
:meth:`FleetSpec.from_dict` so it can ride inside shard ``JobSpec``
kwargs, the result cache, and manifests as plain JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.radio.carriers import NETWORKS

#: Default fleet RNG key (the paper's SIGCOMM '21 publication date).
DEFAULT_KEY = 20210823

#: Mobility patterns a UE can follow.
MOBILITY_KINDS = ("walk", "drive", "stationary")

#: App workloads a UE can run.
APP_KINDS = ("speedtest", "video", "web")

#: Default carrier/network mix over the study's six deployments.
DEFAULT_NETWORK_MIX: Tuple[Tuple[str, float], ...] = (
    ("verizon-nsa-mmwave", 0.25),
    ("verizon-nsa-lowband", 0.15),
    ("verizon-lte", 0.15),
    ("tmobile-nsa-lowband", 0.20),
    ("tmobile-sa-lowband", 0.10),
    ("tmobile-lte", 0.15),
)

DEFAULT_MOBILITY_MIX: Tuple[Tuple[str, float], ...] = (
    ("walk", 0.5),
    ("drive", 0.3),
    ("stationary", 0.2),
)

DEFAULT_APP_MIX: Tuple[Tuple[str, float], ...] = (
    ("speedtest", 0.3),
    ("video", 0.4),
    ("web", 0.3),
)


def _as_mix(value) -> Tuple[Tuple[str, float], ...]:
    """Normalize a mapping or pair sequence to the canonical tuple form."""
    if isinstance(value, Mapping):
        return tuple((str(name), float(weight)) for name, weight in value.items())
    return tuple((str(name), float(weight)) for name, weight in value)


def _validate_mix(mix: Tuple[Tuple[str, float], ...], known, what: str) -> None:
    if not mix:
        raise ValueError(f"{what} mix must not be empty")
    total = 0.0
    for name, weight in mix:
        if name not in known:
            raise ValueError(f"unknown {what} {name!r}; known: {sorted(known)}")
        if weight < 0:
            raise ValueError(f"{what} weight for {name!r} must be >= 0")
        total += weight
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"{what} mix weights must sum to 1, got {total}")


@dataclass(frozen=True)
class FleetSpec:
    """Everything that determines a fleet sweep's results.

    Attributes:
        ues: population size.
        key: fleet RNG key (all randomness derives from it).
        duration_s: simulated wall-clock per UE.
        dt_s: tick length (the per-UE series has
            ``round(duration_s / dt_s)`` samples).
        city_extent_m: side of the square city; drivers and stationary
            UEs live on per-band uniform tower grids covering it, while
            walkers each walk the paper's Fig. 13 loop (three towers
            along the route, 40 m placement jitter).
        device: UE device model (power curves + modem), per
            :mod:`repro.power.device`.
        network_mix / mobility_mix / app_mix: population weights;
            per-UE assignment is by inverse-CDF over these in the
            listed order, so the order is part of the contract.
    """

    ues: int
    key: int = DEFAULT_KEY
    duration_s: float = 120.0
    dt_s: float = 0.5
    city_extent_m: float = 4000.0
    device: str = "S20U"
    network_mix: Tuple[Tuple[str, float], ...] = DEFAULT_NETWORK_MIX
    mobility_mix: Tuple[Tuple[str, float], ...] = DEFAULT_MOBILITY_MIX
    app_mix: Tuple[Tuple[str, float], ...] = DEFAULT_APP_MIX

    def __post_init__(self) -> None:
        for attr in ("network_mix", "mobility_mix", "app_mix"):
            object.__setattr__(self, attr, _as_mix(getattr(self, attr)))
        if self.ues < 1:
            raise ValueError("ues must be >= 1")
        if self.duration_s <= 0 or self.dt_s <= 0:
            raise ValueError("duration_s and dt_s must be positive")
        if self.city_extent_m <= 0:
            raise ValueError("city_extent_m must be positive")
        _validate_mix(self.network_mix, NETWORKS, "network")
        _validate_mix(self.mobility_mix, MOBILITY_KINDS, "mobility")
        _validate_mix(self.app_mix, APP_KINDS, "app")

    @property
    def ticks(self) -> int:
        """Samples per UE; every per-UE series has exactly this length."""
        return max(1, int(round(self.duration_s / self.dt_s)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ues": self.ues,
            "key": self.key,
            "duration_s": self.duration_s,
            "dt_s": self.dt_s,
            "city_extent_m": self.city_extent_m,
            "device": self.device,
            "network_mix": [list(pair) for pair in self.network_mix],
            "mobility_mix": [list(pair) for pair in self.mobility_mix],
            "app_mix": [list(pair) for pair in self.app_mix],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        def mix(value) -> Tuple[Tuple[str, float], ...]:
            return tuple((str(name), float(weight)) for name, weight in value)

        return cls(
            ues=int(data["ues"]),
            key=int(data["key"]),
            duration_s=float(data["duration_s"]),
            dt_s=float(data["dt_s"]),
            city_extent_m=float(data["city_extent_m"]),
            device=str(data["device"]),
            network_mix=mix(data["network_mix"]),
            mobility_mix=mix(data["mobility_mix"]),
            app_mix=mix(data["app_mix"]),
        )
