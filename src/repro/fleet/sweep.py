"""Fleet sweep assembly: shard jobs, partial merging, final summary.

The fleet pipeline has three moves:

1. :func:`fleet_jobs` shards the population into batched ``JobSpec``s
   for the engine (runner ``fleet.shard``, deterministic JSON kwargs —
   so a re-run with a cache directory is 100% cache hits).
2. Workers run :func:`repro.fleet.shard.run_shard_job` and return
   fixed-size reducer partials.
3. :func:`merge_partials` folds adjacent partials associatively in the
   parent — :class:`~repro.obs.reducers.PairwiseSum` merges reproduce
   the serial accumulator bit for bit — and
   :func:`finalize_summary` renders the merged reducers into the JSON
   summary the CLI / gauges / report consume.

:func:`artifact_fleet` is the registered ``fleet`` artifact: the same
pipeline run serially in-process, so ``repro run fleet`` (and the
serve API) work like any other artifact, and a sharded-parallel
``repro sweep fleet --ues N`` is bit-identical to it by construction.
"""

from __future__ import annotations

import math
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence

from repro.engine.progress import ProgressTracker
from repro.engine.spec import JobSpec
from repro.fleet.shard import GROUPS, run_shard_job
from repro.fleet.spec import DEFAULT_KEY, FleetSpec
from repro.obs.reducers import FixedHistogram, QuantileSketch, StreamMoments

#: Default UEs per shard when the caller does not pin a shard count.
DEFAULT_SHARD_UES = 4096

#: Percentile levels reported per metric group (matches the paper's
#: Fig. 13 pinned decile levels, see ``repro.obs.calib``).
SUMMARY_LEVELS = (5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0)


def shard_bounds(ues: int, shards: int) -> List[tuple]:
    """Even, contiguous ``[start, stop)`` shard bounds over the fleet."""
    if ues < 1:
        raise ValueError("ues must be >= 1")
    shards = max(1, min(int(shards), ues))
    edges = [round(i * ues / shards) for i in range(shards + 1)]
    return [
        (edges[i], edges[i + 1])
        for i in range(shards)
        if edges[i + 1] > edges[i]
    ]


def fleet_jobs(spec: FleetSpec, shards: Optional[int] = None) -> List[JobSpec]:
    """Batched shard ``JobSpec``s for one fleet sweep.

    Kwargs are plain JSON (the spec dict plus the shard bounds) and the
    per-job seed is ``None`` — the fleet key lives *inside* the spec —
    so the engine's cache key is a pure function of the sweep
    parameters and repeated sweeps hit the cache shard for shard.
    """
    if shards is None:
        shards = math.ceil(spec.ues / DEFAULT_SHARD_UES)
    spec_dict = spec.to_dict()
    return [
        JobSpec(
            runner="fleet.shard",
            kwargs={"spec": spec_dict, "start": start, "stop": stop},
            index=i,
            label=f"fleet.shard[{start}:{stop}]",
        )
        for i, (start, stop) in enumerate(shard_bounds(spec.ues, shards))
    ]


def merge_partials(partials: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold shard partials into one merged reducer set.

    Partials may arrive in any order (workers finish when they finish);
    they are sorted by ``start`` and must tile ``[0, ues)`` contiguously
    — a gap or overlap means the sweep lost or duplicated a shard and
    raises rather than silently mis-summarizing.
    """
    if not partials:
        raise ValueError("no shard partials to merge")
    ordered = sorted(partials, key=lambda p: int(p["start"]))
    expected = 0
    for partial in ordered:
        if int(partial["start"]) != expected:
            raise ValueError(
                f"shard partials are not contiguous: expected start "
                f"{expected}, got {partial['start']}"
            )
        expected = int(partial["stop"])

    first = ordered[0]
    groups: Dict[str, Dict[str, Any]] = {}
    for name in GROUPS:
        bundle = first["groups"][name]
        groups[name] = {
            "moments": StreamMoments.from_state(bundle["moments"]),
            "sketch": QuantileSketch.from_state(bundle["sketch"]),
        }
        if "hist" in bundle:
            groups[name]["hist"] = FixedHistogram.from_state(bundle["hist"])
    counts = {
        axis: dict(tally) for axis, tally in first["counts"].items()
    }
    for partial in ordered[1:]:
        for name, group in groups.items():
            bundle = partial["groups"][name]
            group["moments"].merge(StreamMoments.from_state(bundle["moments"]))
            group["sketch"].merge(QuantileSketch.from_state(bundle["sketch"]))
            if "hist" in group:
                group["hist"].merge(FixedHistogram.from_state(bundle["hist"]))
        for axis, tally in partial["counts"].items():
            for key, value in tally.items():
                counts[axis][key] = counts[axis].get(key, 0) + int(value)
    return {
        "ues": expected,
        "shards": len(ordered),
        "ticks": int(first["ticks"]),
        "groups": groups,
        "counts": counts,
    }


def finalize_summary(
    spec: FleetSpec, merged: Mapping[str, Any]
) -> Dict[str, Any]:
    """Render merged reducers into the fleet summary (plain JSON)."""
    if int(merged["ues"]) != spec.ues:
        raise ValueError(
            f"merged partials cover {merged['ues']} UEs, spec says {spec.ues}"
        )
    groups_out: Dict[str, Any] = {}
    for name, group in merged["groups"].items():
        stats = group["moments"].summary()
        sketch = group["sketch"]
        quantiles = {
            f"{level:g}": sketch.quantile(level) for level in SUMMARY_LEVELS
        }
        entry: Dict[str, Any] = {**stats, "quantiles": quantiles}
        if "hist" in group:
            entry["hist"] = group["hist"].to_state()
        groups_out[name] = entry
    return {
        "fleet": {
            "ues": spec.ues,
            "ticks": spec.ticks,
            "dt_s": spec.dt_s,
            "duration_s": spec.duration_s,
            "key": spec.key,
            "device": spec.device,
            "city_extent_m": spec.city_extent_m,
            "shards": int(merged["shards"]),
        },
        "counts": merged["counts"],
        "groups": groups_out,
    }


#: Metric groups included in mid-sweep ``reducer_snapshot`` events.
#: A subset of :data:`repro.fleet.shard.GROUPS` keeps each event a few
#: hundred bytes even on million-UE sweeps.
SNAPSHOT_GROUPS = ("rsrp_all", "dl_all", "power_mw")

#: Percentiles carried per group in a snapshot event.
SNAPSHOT_LEVELS = (("p5", 5.0), ("p50", 50.0), ("p95", 95.0))


class FleetSnapshotTracker(ProgressTracker):
    """Progress tracker that narrates converging fleet quantiles.

    As each shard partial settles (completion order — workers finish
    when they finish), its quantile sketches are merged into a running
    partial-fleet view and a ``reducer_snapshot`` event is emitted
    into the run ledger. Sketch merges are commutative bucket-count
    additions, so the out-of-order incremental merge is exact: every
    snapshot shows the true quantiles of exactly the UEs covered so
    far, and ``repro watch`` renders them tightening toward the final
    summary mid-sweep.

    Only the sketches are merged here — :class:`StreamMoments` rides
    on :class:`~repro.obs.reducers.PairwiseSum`, whose bit-identical
    merge is deliberately order-sensitive, and the final summary still
    goes through :func:`merge_partials` on the index-ordered outcomes.

    ``every`` thins emission (snapshot every N settled shards; the
    final shard always emits) so thousand-shard sweeps don't flood the
    ledger.
    """

    def __init__(
        self,
        shards_total: int,
        stream: Optional[IO[str]] = None,
        events: Optional[Any] = None,
        every: int = 1,
    ) -> None:
        super().__init__(stream=stream, events=events)
        self.shards_total = int(shards_total)
        self.every = max(1, int(every))
        self.shards_done = 0
        self.ues_covered = 0
        self._sketches: Dict[str, QuantileSketch] = {}

    def update(self, outcome: Any) -> None:
        super().update(outcome)
        value = getattr(outcome, "value", None)
        if outcome.status not in ("ok", "cached"):
            return
        if not isinstance(value, Mapping) or "groups" not in value:
            return
        self.shards_done += 1
        self.ues_covered += int(value.get("stop", 0)) - int(
            value.get("start", 0)
        )
        for name in SNAPSHOT_GROUPS:
            bundle = value["groups"].get(name)
            if not bundle or "sketch" not in bundle:
                continue
            sketch = QuantileSketch.from_state(bundle["sketch"])
            if name in self._sketches:
                self._sketches[name].merge(sketch)
            else:
                self._sketches[name] = sketch
        if self.events is None:
            return
        if (
            self.shards_done % self.every == 0
            or self.shards_done == self.shards_total
        ):
            self.events.emit("reducer_snapshot", **self.snapshot_fields())

    def snapshot_fields(self) -> Dict[str, Any]:
        """The ``reducer_snapshot`` payload for the current coverage."""
        groups: Dict[str, Dict[str, Any]] = {}
        for name, sketch in self._sketches.items():
            entry: Dict[str, Any] = {"count": sketch.count}
            for label, level in SNAPSHOT_LEVELS:
                quantile = sketch.quantile(level)
                if quantile is not None:
                    entry[label] = round(float(quantile), 4)
            groups[name] = entry
        return {
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "ues": self.ues_covered,
            "groups": groups,
        }


def run_fleet(spec: FleetSpec, shards: Optional[int] = None) -> Dict[str, Any]:
    """Serial in-process fleet sweep: shard, reduce, merge, summarize."""
    partials = [
        run_shard_job(spec.to_dict(), start, stop)
        for start, stop in shard_bounds(
            spec.ues,
            shards
            if shards is not None
            else math.ceil(spec.ues / DEFAULT_SHARD_UES),
        )
    ]
    return finalize_summary(spec, merge_partials(partials))


def artifact_fleet(
    scale: float = 1.0,
    seed: Optional[int] = None,
    ues: Optional[int] = None,
    duration_s: float = 120.0,
    city_extent_m: float = 4000.0,
    device: str = "S20U",
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """The ``fleet`` artifact: a city-scale fleet sweep summary.

    ``scale`` multiplies the default population (2 000 UEs at scale 1);
    an explicit ``ues`` wins. ``seed`` overrides the fleet key.
    """
    from repro.engine.registry import _scaled

    spec = FleetSpec(
        ues=int(ues) if ues is not None else _scaled(2000, scale, minimum=50),
        key=int(seed) if seed is not None else DEFAULT_KEY,
        duration_s=duration_s,
        city_extent_m=city_extent_m,
        device=device,
    )
    return run_fleet(spec, shards=shards)


__all__ = [
    "DEFAULT_SHARD_UES",
    "FleetSnapshotTracker",
    "SNAPSHOT_GROUPS",
    "SNAPSHOT_LEVELS",
    "SUMMARY_LEVELS",
    "artifact_fleet",
    "finalize_summary",
    "fleet_jobs",
    "merge_partials",
    "run_fleet",
    "shard_bounds",
]
