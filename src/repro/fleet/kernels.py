"""UE-major 2D-batched radio / app / power kernels for fleet shards.

Each function takes a *group* of UEs that share one carrier network and
produces a ``(UEs, ticks)`` matrix in a handful of array operations —
no Python loop over UEs. The tick-sequential pieces (blockage Markov
chain, blockage-depth ramp, AR(1) fading) ride on the batched scans in
:mod:`repro.kernels.scan`, which are per-row bit-identical to their
1-D form, and all randomness is counter-based
(:mod:`repro.kernels.ctrrng`) in the UE's absolute index — so a group's
rows compute the same bits no matter how the population is sharded or
which other UEs happen to share the batch.

The RSRP pipeline mirrors ``RsrpProcess._simulate_batch`` stage for
stage (blockage chain → per-onset severity hold → depth ramp → AR(1)
fading → path loss → clip), with the per-event severity hold expressed
as a 2-D gather: ``maximum.accumulate`` over onset indices finds each
tick's most recent onset, and ``take_along_axis`` pulls that onset's
severity draw.
"""

from __future__ import annotations

import numpy as np

from repro.fleet.scenario import (
    APP_SPEEDTEST,
    APP_VIDEO,
    APP_WEB,
    STREAM_BLOCK,
    STREAM_FADING,
    STREAM_SEVERITY,
    STREAM_WEB,
    VIDEO_DL_MBPS,
    WEB_DUTY_CYCLE,
    FleetScenario,
)
from repro.fleet.spec import FleetSpec
from repro.kernels.ctrrng import normals, uniforms
from repro.kernels.scan import ar1_scan, leaky_ramp_scan, markov_binary_scan
from repro.radio.carriers import CarrierNetwork
from repro.radio.link import LinkBudget, Modem
from repro.radio.propagation import BlockageModel, get_path_loss_model
from repro.radio.signal import (
    RSRP_MAX_DBM,
    RSRP_MIN_DBM,
    _BLOCKAGE_FADE_DB,
    _FADING_SIGMA,
    _TX_EIRP_DBM,
)

#: Full blockage fade: the NLoS penalty plus the deep-fade excess, as in
#: ``RsrpProcess`` (22 + 18 dB at depth 1, severity 1).
_FULL_FADE_DB = _BLOCKAGE_FADE_DB + 18.0


def rsrp_matrix(
    spec: FleetSpec,
    ue: np.ndarray,
    network: CarrierNetwork,
    distances_m: np.ndarray,
    speeds_mps: np.ndarray,
) -> np.ndarray:
    """RSRP (dBm) for a same-network UE group: shape ``(len(ue), ticks)``.

    ``distances_m`` and ``speeds_mps`` are aligned ``(UEs, ticks)``
    matrices. Matches the single-trajectory ``RsrpProcess`` model:
    AR(1) fading with band-class sigma matched to the tick length,
    and — on mmWave — the speed-driven two-state blockage chain with
    per-event severity and an exponential depth ramp.
    """
    ue = np.asarray(ue, dtype=np.int64)
    band = network.band
    n, ticks = distances_m.shape
    rows = ue[:, None]
    cols = np.arange(ticks, dtype=np.int64)[None, :]

    rho = float(np.exp(-spec.dt_s / 1.5))  # RsrpProcess.correlation_s
    sigma = _FADING_SIGMA[band.band_class]
    sigma_eff = float(sigma * np.sqrt(1.0 - rho**2))

    innovations = normals(spec.key, STREAM_FADING, rows, cols) * sigma_eff
    fading = ar1_scan(rho, innovations, init=0.0)

    loss = get_path_loss_model(band).path_loss_db_series(distances_m)
    rsrp = _TX_EIRP_DBM[band.band_class] - loss + fading

    if band.is_mmwave:
        draws = uniforms(spec.key, STREAM_BLOCK, rows, cols)
        p_block, p_recover = BlockageModel().transition_probabilities(
            speeds_mps, spec.dt_s
        )
        blocked = markov_binary_scan(
            next_if_true=draws >= p_recover,
            next_if_false=draws < np.broadcast_to(p_block, draws.shape),
            init=False,
        )
        prev = np.concatenate(
            [np.zeros((n, 1), dtype=bool), blocked[:, :-1]], axis=1
        )
        onsets = blocked & ~prev
        # One severity per blockage event: a per-tick candidate draw,
        # gathered at each tick's most recent onset (1.0 before any).
        severity_draws = 0.5 + 0.5 * uniforms(
            spec.key, STREAM_SEVERITY, rows, cols
        )
        last_onset = np.maximum.accumulate(
            np.where(onsets, np.arange(ticks), -1), axis=-1
        )
        severity = np.where(
            last_onset >= 0,
            np.take_along_axis(
                severity_draws, np.maximum(last_onset, 0), axis=-1
            ),
            1.0,
        )
        ramp_alpha = 1.0 - float(np.exp(-spec.dt_s / 1.8))  # blockage_ramp_s
        depth = leaky_ramp_scan(ramp_alpha, blocked.astype(float), init=0.0)
        rsrp = rsrp - _FULL_FADE_DB * depth * severity

    return np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM)


def downlink_matrix(
    spec: FleetSpec,
    ue: np.ndarray,
    network: CarrierNetwork,
    modem: Modem,
    rsrp_dbm: np.ndarray,
    app: np.ndarray,
) -> np.ndarray:
    """Per-tick downlink throughput (Mbps) under each UE's app workload.

    * ``speedtest`` saturates the link: the full achievable capacity.
    * ``video`` streams at min(capacity, 24 Mbps) — a 4K-grade ABR
      ceiling, throttled by the radio when capacity dips below it.
    * ``web`` is bursty: full capacity during fetches, idle otherwise,
      with a 20% duty cycle drawn per tick.
    """
    ue = np.asarray(ue, dtype=np.int64)
    capacity = LinkBudget(network, modem).capacity_series_mbps(rsrp_dbm)
    dl = np.empty_like(capacity)
    speedtest = app == APP_SPEEDTEST
    if speedtest.any():
        dl[speedtest] = capacity[speedtest]
    video = app == APP_VIDEO
    if video.any():
        dl[video] = np.minimum(capacity[video], VIDEO_DL_MBPS)
    web = app == APP_WEB
    if web.any():
        cols = np.arange(rsrp_dbm.shape[1], dtype=np.int64)[None, :]
        active = (
            uniforms(spec.key, STREAM_WEB, ue[web][:, None], cols)
            < WEB_DUTY_CYCLE
        )
        dl[web] = capacity[web] * active
    return dl


def power_matrix(
    scenario: FleetScenario,
    network: CarrierNetwork,
    dl_mbps: np.ndarray,
    rsrp_dbm: np.ndarray,
) -> np.ndarray:
    """Radio power (mW) from the device's per-network curve.

    Fleet workloads are downlink-dominated; uplink is modeled as idle
    (the curve's DL intercept covers the connected radio baseline).
    """
    curve = scenario.device.curve(network.key)
    return curve.power_mw_series(dl_mbps, 0.0, rsrp_dbm)


__all__ = ["rsrp_matrix", "downlink_matrix", "power_matrix"]
