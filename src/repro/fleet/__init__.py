"""repro.fleet — city-scale fleet sweeps with streaming reducers.

Scales the library's single-UE scenarios to N-UE populations (mixed
carriers, bands, routes, and app workloads over one city) without ever
materializing a per-UE series in the parent process:

* :mod:`repro.fleet.spec` — :class:`FleetSpec`, the JSON-round-trip
  scenario description all randomness derives from.
* :mod:`repro.fleet.scenario` — counter-based per-UE attributes and
  trajectory/tower geometry (:class:`FleetScenario`).
* :mod:`repro.fleet.kernels` — UE-major 2D-batched RSRP / capacity /
  app / power kernels (no Python loop per UE).
* :mod:`repro.fleet.shard` — the ``fleet.shard`` runner: one UE range
  folded into mergeable reducer partials.
* :mod:`repro.fleet.sweep` — shard job generation, associative partial
  merging, the final summary, and the ``fleet`` artifact runner.

Serial and sharded-parallel sweeps are bit-identical for any shard or
worker split (docs/fleet.md).
"""

from repro.fleet.spec import DEFAULT_KEY, FleetSpec
from repro.fleet.scenario import FleetScenario
from repro.fleet.shard import run_shard_job
from repro.fleet.sweep import (
    FleetSnapshotTracker,
    artifact_fleet,
    finalize_summary,
    fleet_jobs,
    merge_partials,
    run_fleet,
    shard_bounds,
)

__all__ = [
    "DEFAULT_KEY",
    "FleetScenario",
    "FleetSnapshotTracker",
    "FleetSpec",
    "artifact_fleet",
    "finalize_summary",
    "fleet_jobs",
    "merge_partials",
    "run_fleet",
    "run_shard_job",
    "shard_bounds",
]
