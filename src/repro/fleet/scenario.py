"""Per-UE scenario attributes and geometry, pure in ``(key, ue index)``.

Every attribute a fleet UE has — carrier network, mobility pattern,
app workload, home position, walking phase, heading, per-UE tower
placement jitter — comes from the counter-based generator in
:mod:`repro.kernels.ctrrng` indexed by the UE's *absolute* population
index. A shard covering UEs ``[start, stop)`` therefore regenerates
exactly the attributes it needs, independent of shard boundaries,
worker count, or execution order.

Geometry follows the paper's two settings:

* **Walkers** re-create the Fig. 13 measurement: each walks the
  ~1.6 km loop (:func:`repro.mobility.routes.walking_loop`) at 1.4 m/s
  with a random phase offset, served by three towers placed evenly
  along the loop with per-UE Gaussian placement jitter (40 m), exactly
  like ``TowerGrid.along_route`` does for the single-UE artifact.
* **Drivers and stationary UEs** live on a square city of
  ``city_extent_m`` per side with per-band uniform tower grids
  (mmWave towers every 300 m, low/mid-band and LTE every 2 km);
  drivers move at 10 m/s on a straight heading, wrapping at the city
  edge (torus), stationary UEs sit at their home position.

Serving distance is nearest-in-coverage with the band's coverage
radius as the out-of-coverage fallback — the same contract as
:meth:`repro.radio.towers.TowerGrid.serving_distances`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.fleet.spec import APP_KINDS, MOBILITY_KINDS, FleetSpec
from repro.kernels.ctrrng import normals, uniforms
from repro.mobility.routes import walking_loop
from repro.power.device import DeviceProfile, get_device
from repro.radio.bands import Band
from repro.radio.carriers import NETWORKS, CarrierNetwork
from repro.radio.towers import TowerGrid

# ctrrng stream ids (uniform streams stay below 2**32; see ctrrng).
STREAM_NETWORK = 1
STREAM_MOBILITY = 2
STREAM_APP = 3
STREAM_HOME_X = 4
STREAM_HOME_Y = 5
STREAM_PHASE = 6
STREAM_HEADING = 7
STREAM_BLOCK = 8
STREAM_SEVERITY = 9
STREAM_WEB = 10
# Normal streams (namespaced separately inside ctrrng.normals).
STREAM_TOWER_JITTER = 11
STREAM_FADING = 12

# Canonical kind indices (positions in MOBILITY_KINDS / APP_KINDS).
MOB_WALK, MOB_DRIVE, MOB_STATIONARY = 0, 1, 2
APP_SPEEDTEST, APP_VIDEO, APP_WEB = 0, 1, 2

DRIVE_SPEED_MPS = 10.0
#: Walking-loop tower layout, mirroring the Fig. 13 artifact.
WALK_TOWER_COUNT = 3
WALK_TOWER_JITTER_M = 40.0
#: City tower grids: dense mmWave small cells, sparse macro cells.
MMWAVE_TOWER_SPACING_M = 300.0
MACRO_TOWER_SPACING_M = 2000.0
#: Simple app workload shapes (see kernels.py).
VIDEO_DL_MBPS = 24.0
WEB_DUTY_CYCLE = 0.2


def _pick(mix, u: np.ndarray) -> np.ndarray:
    """Inverse-CDF assignment: mix position index for each uniform."""
    cumulative = np.cumsum([weight for _, weight in mix])
    return np.minimum(
        np.searchsorted(cumulative, u, side="right"), len(mix) - 1
    ).astype(np.int64)


def _route_arc_points(waypoints, count: int) -> np.ndarray:
    """``count`` points evenly spaced along a polyline (arc length).

    The same placement rule as ``TowerGrid.along_route`` (tower ``i``
    at arc fraction ``(i + 0.5) / count``), vectorized and without the
    per-call ``Generator`` (fleet jitter comes from ctrrng instead).
    """
    points = np.asarray(waypoints, dtype=float)
    seglens = np.hypot(*(np.diff(points, axis=0).T))
    cumulative = np.concatenate([[0.0], np.cumsum(seglens)])
    total = cumulative[-1]
    targets = total * (np.arange(count) + 0.5) / count
    seg = np.minimum(
        np.searchsorted(cumulative, targets, side="right") - 1,
        len(seglens) - 1,
    )
    frac = (targets - cumulative[seg]) / np.maximum(seglens[seg], 1e-9)
    return points[seg] + frac[:, None] * (points[seg + 1] - points[seg])


class FleetScenario:
    """Precomputed, shard-independent tables for one :class:`FleetSpec`.

    Construction validates the spec against the device catalogue (the
    device must have a power curve for every network in the mix) and
    hoists everything reused across tiles: the walking route, the
    walk-tower base positions, and per-band city tower grids.
    """

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.network_keys = [key for key, _ in spec.network_mix]
        self.networks = [NETWORKS[key] for key in self.network_keys]
        self.device: DeviceProfile = get_device(spec.device)
        missing = [
            key for key in self.network_keys if key not in self.device.curves
        ]
        if missing:
            raise ValueError(
                f"device {spec.device!r} has no power curve for "
                f"network(s) {missing}"
            )
        self.route = walking_loop()
        self.loop_duration_s = self.route.duration_s
        self.walk_tower_base = _route_arc_points(
            self.route.waypoints, WALK_TOWER_COUNT
        )
        # Position in the mix -> canonical kind index, so kernels can
        # test `mob == MOB_WALK` regardless of mix ordering.
        self._mob_kind = np.array(
            [MOBILITY_KINDS.index(name) for name, _ in spec.mobility_mix],
            dtype=np.int64,
        )
        self._app_kind = np.array(
            [APP_KINDS.index(name) for name, _ in spec.app_mix],
            dtype=np.int64,
        )
        self._city_grids: Dict[Band, TowerGrid] = {}

    # -- per-UE attributes -------------------------------------------------

    def assignments(self, ue: np.ndarray) -> Dict[str, np.ndarray]:
        """``{"network", "mobility", "app"}`` index arrays for the UEs.

        ``network`` indexes :attr:`networks` (mix order); ``mobility``
        and ``app`` are canonical kind indices (``MOB_*`` / ``APP_*``).
        """
        ue = np.asarray(ue, dtype=np.int64)
        spec = self.spec
        network = _pick(
            spec.network_mix, uniforms(spec.key, STREAM_NETWORK, ue, 0)
        )
        mobility = self._mob_kind[
            _pick(spec.mobility_mix, uniforms(spec.key, STREAM_MOBILITY, ue, 0))
        ]
        app = self._app_kind[
            _pick(spec.app_mix, uniforms(spec.key, STREAM_APP, ue, 0))
        ]
        return {"network": network, "mobility": mobility, "app": app}

    def is_mmwave_network(self, network_idx: np.ndarray) -> np.ndarray:
        flags = np.array([net.is_mmwave for net in self.networks])
        return flags[network_idx]

    # -- trajectories ------------------------------------------------------

    def positions(
        self, ue: np.ndarray, mobility: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(x, y, speed)`` matrices of shape ``(len(ue), ticks)``.

        Walkers move in loop coordinates (their serving towers are
        placed in the same frame, so an absolute home offset would
        cancel out of every distance); drivers and stationary UEs live
        in city coordinates ``[0, city_extent_m)^2``.
        """
        spec = self.spec
        ue = np.asarray(ue, dtype=np.int64)
        t_grid = np.arange(spec.ticks, dtype=float) * spec.dt_s
        n = ue.shape[0]
        x = np.empty((n, spec.ticks), dtype=float)
        y = np.empty((n, spec.ticks), dtype=float)
        speed = np.zeros((n, spec.ticks), dtype=float)

        walk = mobility == MOB_WALK
        if walk.any():
            rows = ue[walk]
            phase = (
                uniforms(spec.key, STREAM_PHASE, rows, 0)
                * self.loop_duration_s
            )
            times = (t_grid[None, :] + phase[:, None]) % self.loop_duration_s
            xs, ys, sp = self.route.positions_at(times)
            x[walk], y[walk], speed[walk] = xs, ys, sp

        home_needed = ~walk
        if home_needed.any():
            rows = ue[home_needed]
            hx = uniforms(spec.key, STREAM_HOME_X, rows, 0) * spec.city_extent_m
            hy = uniforms(spec.key, STREAM_HOME_Y, rows, 0) * spec.city_extent_m
            drive = mobility[home_needed] == MOB_DRIVE
            sub_x = np.repeat(hx[:, None], spec.ticks, axis=1)
            sub_y = np.repeat(hy[:, None], spec.ticks, axis=1)
            if drive.any():
                drows = rows[drive]
                heading = (
                    uniforms(spec.key, STREAM_HEADING, drows, 0) * 2.0 * np.pi
                )
                step = DRIVE_SPEED_MPS * t_grid[None, :]
                sub_x[drive] = (
                    hx[drive][:, None] + np.cos(heading)[:, None] * step
                ) % spec.city_extent_m
                sub_y[drive] = (
                    hy[drive][:, None] + np.sin(heading)[:, None] * step
                ) % spec.city_extent_m
            x[home_needed], y[home_needed] = sub_x, sub_y
            drive_full = mobility == MOB_DRIVE
            speed[drive_full] = DRIVE_SPEED_MPS
        return x, y, speed

    # -- serving distances -------------------------------------------------

    def city_grid(self, band: Band) -> TowerGrid:
        grid = self._city_grids.get(band)
        if grid is None:
            spacing = (
                MMWAVE_TOWER_SPACING_M
                if band.is_mmwave
                else MACRO_TOWER_SPACING_M
            )
            grid = TowerGrid.uniform_grid(
                band,
                extent_m=self.spec.city_extent_m,
                spacing_m=min(spacing, self.spec.city_extent_m),
                prefix="city",
            )
            self._city_grids[band] = grid
        return grid

    def _walker_distances(
        self, ue: np.ndarray, x: np.ndarray, y: np.ndarray, band: Band
    ) -> np.ndarray:
        """Nearest-in-coverage distance to the UE's three loop towers."""
        spec = self.spec
        jitter = normals(
            spec.key,
            STREAM_TOWER_JITTER,
            np.asarray(ue, dtype=np.int64)[:, None],
            np.arange(2 * WALK_TOWER_COUNT)[None, :],
        ).reshape(-1, WALK_TOWER_COUNT, 2) * WALK_TOWER_JITTER_M
        towers = self.walk_tower_base[None, :, :] + jitter  # (U, 3, 2)
        coverage_m = band.coverage_km * 1000.0
        d = np.hypot(
            x[:, None, :] - towers[:, :, 0][:, :, None],
            y[:, None, :] - towers[:, :, 1][:, :, None],
        )  # (U, towers, T)
        d = np.where(d > coverage_m, np.inf, d)
        best = d.min(axis=1)
        return np.where(np.isinf(best), coverage_m, best)

    def serving_distances(
        self,
        ue: np.ndarray,
        mobility: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        band: Band,
    ) -> np.ndarray:
        """Serving-tower distance matrix for rows sharing one band."""
        out = np.empty(x.shape, dtype=float)
        walk = mobility == MOB_WALK
        if walk.any():
            out[walk] = self._walker_distances(ue[walk], x[walk], y[walk], band)
        other = ~walk
        if other.any():
            coverage_m = band.coverage_km * 1000.0
            out[other] = self.city_grid(band).serving_distances(
                x[other], y[other], band, default_m=coverage_m
            )
        return out


__all__ = [
    "FleetScenario",
    "APP_SPEEDTEST",
    "APP_VIDEO",
    "APP_WEB",
    "MOB_WALK",
    "MOB_DRIVE",
    "MOB_STATIONARY",
    "DRIVE_SPEED_MPS",
    "VIDEO_DL_MBPS",
    "WEB_DUTY_CYCLE",
    "STREAM_NETWORK",
    "STREAM_MOBILITY",
    "STREAM_APP",
    "STREAM_HOME_X",
    "STREAM_HOME_Y",
    "STREAM_PHASE",
    "STREAM_HEADING",
    "STREAM_BLOCK",
    "STREAM_SEVERITY",
    "STREAM_WEB",
    "STREAM_TOWER_JITTER",
    "STREAM_FADING",
]
