"""One fleet shard: UEs ``[start, stop)`` folded into reducer partials.

``run_shard_job`` is the registered ``fleet.shard`` runner: it
simulates its UE range tile by tile (a tile is at most
:data:`TILE_UES` UEs, so peak memory is a few tens of MiB regardless
of shard size) and folds every sample straight into the streaming
reducers of :mod:`repro.obs.reducers`. The returned partial is plain
JSON — reducer states plus population counts — a few tens of KiB no
matter how many UEs the shard covered; per-UE series never leave the
worker.

Split invariance: the mean/variance reducers are
:class:`~repro.obs.reducers.PairwiseSum`-based, so each group's
accumulator is anchored at the group's *global* leaf origin — the
number of member samples contributed by UEs before ``start``, which is
itself a pure counter-based function of the spec (``member_leaves_
before``). Adjacent partials then merge into exactly the accumulator a
serial run would have built, bit for bit. Sketch/histogram/count
merges are integer additions and order-invariant outright.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.fleet.kernels import downlink_matrix, power_matrix, rsrp_matrix
from repro.fleet.scenario import APP_SPEEDTEST, MOB_WALK, FleetScenario
from repro.fleet.spec import APP_KINDS, MOBILITY_KINDS, FleetSpec
from repro.obs.reducers import FixedHistogram, QuantileSketch, StreamMoments
from repro.obs.trace import span as trace_span
from repro.radio.signal import RSRP_MAX_DBM, RSRP_MIN_DBM

#: UEs simulated per tile; bounds peak shard memory at roughly
#: TILE_UES x ticks x ~10 float64 matrices (~40 MiB at 240 ticks).
TILE_UES = 2048

#: Chunk size for the counter-based membership prefix scan.
_PREFIX_CHUNK = 1 << 18

PARTIAL_SCHEMA = 1

#: The fleet's reduced metric groups. ``hist`` marks groups that also
#: keep a fixed-bin histogram (RSRP dBm bins, 0.5 dB wide).
GROUPS: Dict[str, Dict[str, Any]] = {
    "rsrp_all": {"hist": (RSRP_MIN_DBM, RSRP_MAX_DBM, 160)},
    "dl_all": {"hist": None},
    "power_mw": {"hist": None},
    "walk_mmwave_rsrp": {"hist": (RSRP_MIN_DBM, RSRP_MAX_DBM, 160)},
    "speedtest_mmwave_dl": {"hist": None},
}


def group_member_masks(
    scenario: FleetScenario, attrs: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Per-group membership over a batch of UEs (pure in attributes)."""
    mmwave = scenario.is_mmwave_network(attrs["network"])
    everyone = np.ones(attrs["network"].shape, dtype=bool)
    return {
        "rsrp_all": everyone,
        "dl_all": everyone,
        "power_mw": everyone,
        "walk_mmwave_rsrp": (attrs["mobility"] == MOB_WALK) & mmwave,
        "speedtest_mmwave_dl": (attrs["app"] == APP_SPEEDTEST) & mmwave,
    }


def member_leaves_before(
    scenario: FleetScenario, start: int
) -> Dict[str, int]:
    """Global leaf origin per group: member samples from UEs < start.

    Membership is a pure function of the UE index (counter-based
    attribute draws), so any shard can compute its own origins without
    seeing other shards' data. Chunked so the prefix scan for a late
    shard of a million-UE fleet stays memory-bounded.
    """
    ticks = scenario.spec.ticks
    counts = {name: 0 for name in GROUPS}
    for lo in range(0, start, _PREFIX_CHUNK):
        ue = np.arange(lo, min(lo + _PREFIX_CHUNK, start), dtype=np.int64)
        masks = group_member_masks(scenario, scenario.assignments(ue))
        for name, mask in masks.items():
            counts[name] += int(mask.sum()) * ticks
    return counts


def _new_accumulators(origins: Mapping[str, int]) -> Dict[str, Dict[str, Any]]:
    accs: Dict[str, Dict[str, Any]] = {}
    for name, config in GROUPS.items():
        accs[name] = {
            "moments": StreamMoments(origin=origins[name]),
            "sketch": QuantileSketch(),
        }
        if config["hist"] is not None:
            lo, hi, nbins = config["hist"]
            accs[name]["hist"] = FixedHistogram(lo, hi, nbins)
    return accs


def _feed(group: Dict[str, Any], values: np.ndarray) -> None:
    group["moments"].add(values)
    group["sketch"].add(values)
    if "hist" in group:
        group["hist"].add(values)


def run_shard_job(spec: Mapping[str, Any], start: int, stop: int) -> Dict[str, Any]:
    """Simulate UEs ``[start, stop)`` and return their reducer partial.

    ``spec`` is a :meth:`FleetSpec.to_dict` mapping (plain JSON so the
    job's cache key is deterministic). The returned partial carries one
    reducer-state bundle per metric group plus per-network /
    per-mobility / per-app UE counts.
    """
    fleet = FleetSpec.from_dict(spec)
    if not 0 <= start < stop <= fleet.ues:
        raise ValueError(
            f"shard [{start}, {stop}) out of range for {fleet.ues} UEs"
        )
    scenario = FleetScenario(fleet)
    ticks = fleet.ticks
    with trace_span("fleet.shard", start=int(start), stop=int(stop)):
        accs = _new_accumulators(member_leaves_before(scenario, start))
        tallies = {
            "network": {key: 0 for key in scenario.network_keys},
            "mobility": {name: 0 for name in MOBILITY_KINDS},
            "app": {name: 0 for name in APP_KINDS},
        }
        for lo in range(start, stop, TILE_UES):
            _run_tile(
                scenario,
                np.arange(lo, min(lo + TILE_UES, stop), dtype=np.int64),
                accs,
                tallies,
            )
    return {
        "schema": PARTIAL_SCHEMA,
        "start": int(start),
        "stop": int(stop),
        "ticks": ticks,
        "counts": tallies,
        "groups": {
            name: {
                key: reducer.to_state() for key, reducer in group.items()
            }
            for name, group in accs.items()
        },
    }


def _run_tile(
    scenario: FleetScenario,
    ue: np.ndarray,
    accs: Dict[str, Dict[str, Any]],
    tallies: Dict[str, Dict[str, int]],
) -> None:
    """Simulate one tile of UEs and fold it into the accumulators.

    The tile's full (UEs x ticks) rsrp/downlink/power matrices are
    assembled network group by network group, then fed to the reducers
    in ascending (UE, tick) order — the global leaf order every
    ``PairwiseSum`` origin is anchored to.
    """
    spec = scenario.spec
    attrs = scenario.assignments(ue)
    x, y, speed = scenario.positions(ue, attrs["mobility"])
    n = ue.shape[0]
    rsrp = np.empty((n, spec.ticks), dtype=float)
    dl = np.empty((n, spec.ticks), dtype=float)
    power = np.empty((n, spec.ticks), dtype=float)

    for net_idx, network in enumerate(scenario.networks):
        rows = attrs["network"] == net_idx
        if not rows.any():
            continue
        distances = scenario.serving_distances(
            ue[rows], attrs["mobility"][rows], x[rows], y[rows], network.band
        )
        group_rsrp = rsrp_matrix(
            spec, ue[rows], network, distances, speed[rows]
        )
        group_dl = downlink_matrix(
            spec,
            ue[rows],
            network,
            scenario.device.modem,
            group_rsrp,
            attrs["app"][rows],
        )
        rsrp[rows] = group_rsrp
        dl[rows] = group_dl
        power[rows] = power_matrix(scenario, network, group_dl, group_rsrp)

    masks = group_member_masks(scenario, attrs)
    for name, mask in masks.items():
        if not mask.any():
            continue
        source = {
            "rsrp_all": rsrp,
            "walk_mmwave_rsrp": rsrp,
            "dl_all": dl,
            "speedtest_mmwave_dl": dl,
            "power_mw": power,
        }[name]
        _feed(accs[name], source[mask])

    for net_idx, key in enumerate(scenario.network_keys):
        tallies["network"][key] += int((attrs["network"] == net_idx).sum())
    for kind_idx, name in enumerate(MOBILITY_KINDS):
        tallies["mobility"][name] += int((attrs["mobility"] == kind_idx).sum())
    for kind_idx, name in enumerate(APP_KINDS):
        tallies["app"][name] += int((attrs["app"] == kind_idx).sum())


__all__ = [
    "GROUPS",
    "PARTIAL_SCHEMA",
    "TILE_UES",
    "group_member_masks",
    "member_leaves_before",
    "run_shard_job",
]
