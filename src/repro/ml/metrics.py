"""Regression and classification quality metrics.

The paper's headline model-evaluation metric is Mean Absolute Percentage
Error (MAPE), used in Fig. 15 and 16 to compare power models.
"""

from __future__ import annotations

import numpy as np


def _as_1d(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        array = array.ravel()
    return array


def _check_lengths(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"length mismatch: y_true has {y_true.shape[0]} samples, "
            f"y_pred has {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics are undefined for empty inputs")


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE in percent, the paper's power-model accuracy metric.

    Targets equal to zero are excluded from the average (relative error
    is undefined there); if every target is zero a ``ValueError`` is
    raised.
    """
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    nonzero = y_true != 0.0
    if not np.any(nonzero):
        raise ValueError("MAPE undefined: all targets are zero")
    relative = np.abs((y_true[nonzero] - y_pred[nonzero]) / y_true[nonzero])
    return float(np.mean(relative) * 100.0)


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error in the units of the target."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error in the units of the target."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 0.0 for a constant target predicted exactly, and can be
    negative when the model is worse than predicting the mean.
    """
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    total = np.sum((y_true - np.mean(y_true)) ** 2)
    residual = np.sum((y_true - y_pred) ** 2)
    if total == 0.0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError("length mismatch between y_true and y_pred")
    if y_true.shape[0] == 0:
        raise ValueError("accuracy undefined for empty inputs")
    return float(np.mean(y_true == y_pred))
