"""Gradient boosted regression trees (squared loss).

Backs the ``MPC_GDBT`` throughput predictor from the paper's section 5.3
(the Lumos5G-style Gradient Boosted Decision Tree predictor).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class GradientBoostedRegressor:
    """Least-squares gradient boosting over shallow CART trees.

    Standard Friedman-style boosting: start from the target mean and
    repeatedly fit a shallow regression tree to the current residuals,
    shrinking each tree's contribution by ``learning_rate``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._baseline: float = 0.0
        self.n_features_: int = 0

    def fit(self, X, y) -> "GradientBoostedRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._baseline = float(np.mean(y))
        self._trees = []
        prediction = np.full(y.shape, self._baseline)
        n = y.shape[0]
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                size = max(1, int(round(self.subsample * n)))
                idx = rng.choice(n, size=size, replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[idx], residual[idx])
            self._trees.append(tree)
            prediction += self.learning_rate * tree.predict(X)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.n_features_}"
            )
        prediction = np.full(X.shape[0], self._baseline)
        for tree in self._trees:
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for diagnostics)."""
        if not self._trees:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        prediction = np.full(X.shape[0], self._baseline)
        for tree in self._trees:
            prediction = prediction + self.learning_rate * tree.predict(X)
            yield prediction.copy()

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted; call fit() first")
        total = np.zeros(self.n_features_)
        for tree in self._trees:
            total += tree.feature_importances_
        norm = total.sum()
        return total / norm if norm > 0 else total
