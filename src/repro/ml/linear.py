"""Ordinary least squares linear regression.

Used for:

* fitting the throughput-power lines of Fig. 11/26 and the slopes of
  Table 8,
* the paper's negative result that a *multi-factor linear* power model
  underperforms the DTR model (section 4.5), reproduced by the linear
  ablation bench.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearRegression:
    """OLS fit via ``numpy.linalg.lstsq`` with an optional intercept."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_features_: int = 0

    def fit(self, X, y) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_features_ = X.shape[1]
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.n_features_}"
            )
        return X @ self.coef_ + self.intercept_

    @property
    def slope_(self) -> float:
        """Convenience accessor for single-feature fits (Table 8 slopes)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        if self.n_features_ != 1:
            raise ValueError("slope_ is only defined for single-feature fits")
        return float(self.coef_[0])
