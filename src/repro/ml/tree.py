"""CART decision trees (regression and Gini classification).

These back three pieces of the paper:

* the TH+SS power model (Decision Tree Regression, section 4.5),
* software power-monitor calibration (section 4.6),
* the web radio-interface selector (section 6.2), whose interpretability
  the paper leans on — hence ``feature_importances_`` (Gini importance)
  and a ``describe()`` dump of the learned splits (used for Fig. 22).

The implementation is plain CART with exact splits over sorted feature
columns, vectorised with numpy prefix sums so that fitting the ~30k-row
web dataset stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class _Node:
    """A single tree node; leaves have ``feature`` set to -1."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    n_samples: int = 0
    impurity: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    class_counts: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass
class _Split:
    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray = field(repr=False, default=None)


class _BaseDecisionTree:
    """Shared CART machinery; subclasses define the impurity criterion."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self.n_features_: int = 0
        self.feature_names_: Optional[List[str]] = None

    # -- subclass hooks ------------------------------------------------
    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_for_feature(
        self, column: np.ndarray, y: np.ndarray
    ) -> Optional[tuple]:
        raise NotImplementedError

    # -- public API ----------------------------------------------------
    def fit(self, X, y, feature_names: Optional[Sequence[str]] = None):
        """Grow the tree on ``X`` (n_samples, n_features) and ``y``."""
        X = np.asarray(X, dtype=float)
        y = self._validate_targets(y)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = X.shape[1]
        if feature_names is not None:
            if len(feature_names) != self.n_features_:
                raise ValueError("feature_names length does not match X")
            self.feature_names_ = list(feature_names)
        self._rng = np.random.default_rng(self.random_state)
        self._importance = np.zeros(self.n_features_)
        self._n_total = X.shape[0]
        self._root = self._grow(X, y, depth=0)
        total = self._importance.sum()
        if total > 0:
            self._importance /= total
        return self

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        return np.array([self._predict_one(row) for row in X])

    @property
    def feature_importances_(self) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return self._importance.copy()

    @property
    def depth_(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return walk(self._root)

    @property
    def n_leaves_(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return walk(self._root)

    def describe(self, max_depth: Optional[int] = None) -> str:
        """Human-readable dump of the splits (used to read M1/M4 trees)."""
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        lines: List[str] = []

        def name(index: int) -> str:
            if self.feature_names_ is not None:
                return self.feature_names_[index]
            return f"x[{index}]"

        def walk(node: _Node, depth: int) -> None:
            pad = "  " * depth
            if node.is_leaf or (max_depth is not None and depth >= max_depth):
                lines.append(f"{pad}leaf value={node.value:.4g} n={node.n_samples}")
                return
            lines.append(
                f"{pad}if {name(node.feature)} <= {node.threshold:.4g} "
                f"(n={node.n_samples}):"
            )
            walk(node.left, depth + 1)
            lines.append(f"{pad}else:")
            walk(node.right, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    # -- internals -----------------------------------------------------
    def _validate_targets(self, y) -> np.ndarray:
        return np.asarray(y, dtype=float).ravel()

    def _make_leaf(self, y: np.ndarray) -> _Node:
        return _Node(
            value=self._leaf_value(y),
            n_samples=y.shape[0],
            impurity=self._impurity(y),
        )

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = y.shape[0]
        impurity = self._impurity(y)
        if (
            n < self.min_samples_split
            or impurity <= 1e-12
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return self._make_leaf(y)

        split = self._find_best_split(X, y, impurity)
        if split is None:
            return self._make_leaf(y)

        # Weighted impurity decrease, normalised by the training-set size
        # so min_impurity_decrease behaves like sklearn's.
        decrease = (n / self._n_total) * split.gain
        if decrease < self.min_impurity_decrease:
            return self._make_leaf(y)

        self._importance[split.feature] += n * split.gain
        left_mask = split.left_mask
        node = _Node(
            feature=split.feature,
            threshold=split.threshold,
            value=self._leaf_value(y),
            n_samples=n,
            impurity=impurity,
        )
        node.left = self._grow(X[left_mask], y[left_mask], depth + 1)
        node.right = self._grow(X[~left_mask], y[~left_mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features_:
            return np.arange(self.n_features_)
        return self._rng.choice(
            self.n_features_, size=self.max_features, replace=False
        )

    def _find_best_split(
        self, X: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> Optional[_Split]:
        best: Optional[_Split] = None
        for feature in self._candidate_features():
            column = X[:, feature]
            result = self._best_split_for_feature(column, y)
            if result is None:
                continue
            threshold, child_impurity = result
            gain = parent_impurity - child_impurity
            if gain <= 1e-12:
                continue
            if best is None or gain > best.gain:
                best = _Split(
                    feature=int(feature),
                    threshold=float(threshold),
                    gain=float(gain),
                    left_mask=column <= threshold,
                )
        return best

    def _predict_one(self, row: np.ndarray):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regression tree minimising within-node variance (MSE)."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _best_split_for_feature(self, column, y):
        order = np.argsort(column, kind="mergesort")
        xs = column[order]
        ys = y[order]
        n = ys.shape[0]
        min_leaf = self.min_samples_leaf
        if n < 2 * min_leaf:
            return None

        # prefix sums for O(n) evaluation of all split positions
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys**2)
        total = csum[-1]
        total_sq = csum_sq[-1]

        counts = np.arange(1, n)  # size of the left child at each boundary
        left_sum = csum[:-1]
        left_sq = csum_sq[:-1]
        right_counts = n - counts
        right_sum = total - left_sum
        right_sq = total_sq - left_sq

        left_var = left_sq / counts - (left_sum / counts) ** 2
        right_var = right_sq / right_counts - (right_sum / right_counts) ** 2
        weighted = (counts * left_var + right_counts * right_var) / n

        valid = (
            (xs[1:] > xs[:-1])
            & (counts >= min_leaf)
            & (right_counts >= min_leaf)
        )
        if not np.any(valid):
            return None
        weighted = np.where(valid, weighted, np.inf)
        best = int(np.argmin(weighted))
        threshold = (xs[best] + xs[best + 1]) / 2.0
        return threshold, float(weighted[best])


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classification tree using Gini impurity.

    ``predict`` returns integer class labels; ``predict_proba`` returns
    per-class frequencies of the reached leaf.
    """

    def fit(self, X, y, feature_names=None):
        labels = np.asarray(y)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._n_classes = self.classes_.shape[0]
        return super().fit(X, encoded, feature_names=feature_names)

    def _validate_targets(self, y) -> np.ndarray:
        return np.asarray(y, dtype=int).ravel()

    def _leaf_value(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self._n_classes)
        return int(np.argmax(counts))

    def _impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self._n_classes)
        p = counts / y.shape[0]
        return float(1.0 - np.sum(p**2))

    def _best_split_for_feature(self, column, y):
        order = np.argsort(column, kind="mergesort")
        xs = column[order]
        ys = y[order]
        n = ys.shape[0]
        min_leaf = self.min_samples_leaf
        if n < 2 * min_leaf:
            return None

        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), ys] = 1.0
        csum = np.cumsum(onehot, axis=0)
        total = csum[-1]

        counts = np.arange(1, n, dtype=float)
        left = csum[:-1]
        right = total - left
        right_counts = n - counts

        left_gini = 1.0 - np.sum((left / counts[:, None]) ** 2, axis=1)
        right_gini = 1.0 - np.sum((right / right_counts[:, None]) ** 2, axis=1)
        weighted = (counts * left_gini + right_counts * right_gini) / n

        valid = (
            (xs[1:] > xs[:-1])
            & (counts >= min_leaf)
            & (right_counts >= min_leaf)
        )
        if not np.any(valid):
            return None
        weighted = np.where(valid, weighted, np.inf)
        best = int(np.argmin(weighted))
        threshold = (xs[best] + xs[best + 1]) / 2.0
        return threshold, float(weighted[best])

    def predict(self, X) -> np.ndarray:
        encoded = super().predict(X).astype(int)
        return self.classes_[encoded]

    def predict_proba(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        out = np.zeros((X.shape[0], self._n_classes))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = (
                    node.left if row[node.feature] <= node.threshold else node.right
                )
            out[i, int(node.value)] = 1.0
        return out
