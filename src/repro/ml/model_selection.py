"""Dataset splitting utilities (train/test split, k-fold).

The paper splits its 30k-point web dataset 7:3 for training/testing the
interface-selection decision trees (section 6.2).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def train_test_split(
    *arrays,
    test_size: float = 0.3,
    random_state: Optional[int] = None,
    shuffle: bool = True,
):
    """Split each array into a train part and a test part.

    Returns ``train_a, test_a, train_b, test_b, ...`` in the same order
    as the inputs, mirroring sklearn's convention.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = np.asarray(arrays[0]).shape[0]
    for array in arrays[1:]:
        if np.asarray(array).shape[0] != n:
            raise ValueError("all arrays must have the same number of samples")
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    n_test = int(round(n * test_size))
    n_test = min(max(n_test, 1), n - 1)
    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(indices)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    out = []
    for array in arrays:
        array = np.asarray(array)
        out.append(array[train_idx])
        out.append(array[test_idx])
    return tuple(out)


class KFold:
    """Deterministic k-fold cross-validation index generator."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError("cannot have more folds than samples")
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size
