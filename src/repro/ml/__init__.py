"""Machine-learning substrate used throughout the reproduction.

The paper relies on three families of models:

* Decision Tree Regression (DTR) for the throughput+signal-strength
  power model (paper section 4.5) and for software power-monitor
  calibration (section 4.6).
* Decision Tree classification for radio-interface selection in web
  browsing (section 6.2, models M1-M5).
* Gradient Boosted Decision Trees (GBDT) for mmWave throughput
  prediction (section 5.3, the ``MPC_GDBT`` predictor from Lumos5G).

No third-party ML library is assumed; everything here is implemented on
top of numpy with an sklearn-like ``fit``/``predict`` interface.
"""

from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.boosting import GradientBoostedRegressor
from repro.ml.linear import LinearRegression
from repro.ml.model_selection import KFold, train_test_split

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostedRegressor",
    "KFold",
    "LinearRegression",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "root_mean_squared_error",
    "train_test_split",
]
