"""RRC timer configurations per carrier/deployment (paper Table 7).

All times are in milliseconds, exactly as reported by RRC-Probe in
Appendix A.3. The bracketed secondary tail timers in the paper (NSA
low-band settings where packets sometimes arrive over the 4G leg) are
kept as ``secondary_tail_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RRCParameters:
    """RRC state-machine timer set for one carrier network.

    Attributes:
        network_key: key into :data:`repro.radio.carriers.NETWORKS`.
        inactivity_ms: UE-inactivity (tail) timer; time spent in
            RRC_CONNECTED after the last packet before demotion.
        secondary_tail_ms: alternate tail observed when NSA traffic rides
            the 4G anchor leg (None when not applicable).
        long_drx_ms: connected-mode Long DRX cycle period.
        idle_drx_ms: idle-mode DRX (paging) cycle period.
        promo_4g_ms: RRC_IDLE -> LTE_RRC_CONNECTED promotion delay
            (None for SA, which has no 4G anchor).
        promo_5g_ms: RRC_IDLE -> NR_RRC_CONNECTED promotion delay (None
            for LTE-only and for Verizon low-band DSS where the paper
            could not measure it).
        inactive_duration_ms: time spent in RRC_INACTIVE before falling
            to RRC_IDLE (SA only; the paper observes ~5 s).
        inactive_resume_ms: lightweight RRC_INACTIVE -> CONNECTED resume
            delay (SA only; a fraction of the full promotion delay).
    """

    network_key: str
    inactivity_ms: float
    long_drx_ms: float
    idle_drx_ms: float
    promo_4g_ms: Optional[float] = None
    promo_5g_ms: Optional[float] = None
    secondary_tail_ms: Optional[float] = None
    inactive_duration_ms: Optional[float] = None
    inactive_resume_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.inactivity_ms <= 0:
            raise ValueError("inactivity_ms must be positive")
        if self.long_drx_ms <= 0 or self.idle_drx_ms <= 0:
            raise ValueError("DRX cycles must be positive")
        if self.promo_4g_ms is None and self.promo_5g_ms is None:
            raise ValueError("at least one promotion delay is required")

    @property
    def has_inactive_state(self) -> bool:
        return self.inactive_duration_ms is not None

    @property
    def promotion_delay_ms(self) -> float:
        """Full RRC_IDLE -> data-plane-CONNECTED promotion delay.

        For NSA this is the 5G promotion (which already includes the
        intermediate LTE connection step); for LTE-only, the 4G
        promotion; for SA, the direct NR promotion.
        """
        if self.promo_5g_ms is not None:
            return self.promo_5g_ms
        return self.promo_4g_ms


# Table 7, verbatim.
RRC_PARAMETERS: Dict[str, RRCParameters] = {
    "tmobile-sa-lowband": RRCParameters(
        network_key="tmobile-sa-lowband",
        inactivity_ms=10400.0,
        long_drx_ms=40.0,
        idle_drx_ms=1250.0,
        promo_4g_ms=None,
        promo_5g_ms=341.0,
        inactive_duration_ms=5000.0,
        inactive_resume_ms=120.0,
    ),
    "tmobile-nsa-lowband": RRCParameters(
        network_key="tmobile-nsa-lowband",
        inactivity_ms=10400.0,
        secondary_tail_ms=12120.0,
        long_drx_ms=320.0,
        idle_drx_ms=1200.0,
        promo_4g_ms=210.0,
        promo_5g_ms=1440.0,
    ),
    "verizon-nsa-mmwave": RRCParameters(
        network_key="verizon-nsa-mmwave",
        inactivity_ms=10500.0,
        long_drx_ms=320.0,
        idle_drx_ms=1280.0,
        promo_4g_ms=396.0,
        promo_5g_ms=1907.0,
    ),
    "verizon-nsa-lowband": RRCParameters(
        network_key="verizon-nsa-lowband",
        inactivity_ms=10200.0,
        secondary_tail_ms=18800.0,
        long_drx_ms=400.0,
        idle_drx_ms=1100.0,
        promo_4g_ms=288.0,
        promo_5g_ms=None,
    ),
    "tmobile-lte": RRCParameters(
        network_key="tmobile-lte",
        inactivity_ms=5000.0,
        long_drx_ms=400.0,
        idle_drx_ms=1300.0,
        promo_4g_ms=190.0,
        promo_5g_ms=None,
    ),
    "verizon-lte": RRCParameters(
        network_key="verizon-lte",
        inactivity_ms=10200.0,
        long_drx_ms=300.0,
        idle_drx_ms=1280.0,
        promo_4g_ms=265.0,
        promo_5g_ms=None,
    ),
}


def get_parameters(network_key: str) -> RRCParameters:
    """RRC parameters for a network key (see Table 7)."""
    try:
        return RRC_PARAMETERS[network_key]
    except KeyError:
        raise KeyError(
            f"no RRC parameters for {network_key!r}; "
            f"known: {sorted(RRC_PARAMETERS)}"
        ) from None
