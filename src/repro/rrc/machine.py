"""Timed RRC state machine.

Implements the state/timer semantics the paper infers (section 4.2,
Appendix A.3):

* after the last packet, the UE holds RRC_CONNECTED for the
  UE-inactivity (tail) timer; a short continuous-reception window is
  followed by connected-mode DRX cycles,
* SA 5G then dwells in RRC_INACTIVE for ~5 s before RRC_IDLE,
* NSA/LTE drop straight to RRC_IDLE,
* a packet arriving in RRC_IDLE pays an idle-DRX paging wait plus the
  promotion delay (for NSA: via the LTE anchor, hence the large 5G
  promotion values in Table 7); in RRC_INACTIVE it pays only the
  lightweight resume.

Time is a float in milliseconds. The machine is deterministic except for
the DRX paging-wait draws, which use an injected ``numpy`` generator so
experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.rrc.parameters import RRCParameters
from repro.rrc.states import RRCState

# Continuous-reception window after a transfer before DRX kicks in.
_CR_WINDOW_MS = 100.0
# Short DRX phase after CR: cycles too fast (tens of ms) for RRC-Probe
# to observe (the paper could not infer them either, Appendix A.3).
_SHORT_DRX_WINDOW_MS = 500.0
_SHORT_DRX_CYCLE_MS = 40.0


@dataclass
class RRCStateMachine:
    """Event-driven RRC state tracker for a single UE.

    The machine tracks the time of the last data activity and derives
    the current state lazily; :meth:`deliver_packet` returns the extra
    radio-side latency a downlink packet experiences when it arrives at
    a given absolute time, and promotes the machine to CONNECTED.
    """

    params: RRCParameters
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _last_activity_ms: float = field(init=False, default=float("-inf"))

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- state queries ---------------------------------------------------
    def state_at(self, t_ms: float) -> RRCState:
        """RRC state at absolute time ``t_ms`` (before any new packet)."""
        elapsed = t_ms - self._last_activity_ms
        if elapsed < 0:
            raise ValueError("time moved backwards")
        if elapsed <= _CR_WINDOW_MS:
            return RRCState.CONNECTED
        if elapsed <= self.params.inactivity_ms:
            return RRCState.CONNECTED_TAIL
        if self.params.has_inactive_state:
            inactive_end = (
                self.params.inactivity_ms + self.params.inactive_duration_ms
            )
            if elapsed <= inactive_end:
                return RRCState.INACTIVE
        if (
            self.params.secondary_tail_ms is not None
            and elapsed <= self.params.secondary_tail_ms
        ):
            # NSA: the 5G leg released, but the LTE anchor connection
            # lingers until the secondary tail (Table 7's bracketed
            # timers); packets arrive over 4G with anchor-leg latency.
            return RRCState.CONNECTED_4G_LEG
        return RRCState.IDLE

    def schedule(self, horizon_ms: float) -> List[Tuple[float, float, RRCState]]:
        """State intervals from the last activity out to ``horizon_ms``.

        Returns ``(start_ms, end_ms, state)`` tuples relative to the last
        activity; used by the power simulator to integrate tail energy.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        boundaries: List[Tuple[float, RRCState]] = [
            (0.0, RRCState.CONNECTED),
            (_CR_WINDOW_MS, RRCState.CONNECTED_TAIL),
        ]
        tail_end = self.params.inactivity_ms
        if self.params.has_inactive_state:
            boundaries.append((tail_end, RRCState.INACTIVE))
            boundaries.append(
                (tail_end + self.params.inactive_duration_ms, RRCState.IDLE)
            )
        elif self.params.secondary_tail_ms is not None:
            boundaries.append((tail_end, RRCState.CONNECTED_4G_LEG))
            boundaries.append((self.params.secondary_tail_ms, RRCState.IDLE))
        else:
            boundaries.append((tail_end, RRCState.IDLE))
        intervals = []
        for (start, state), (end, _unused) in zip(boundaries, boundaries[1:]):
            if start >= horizon_ms:
                break
            intervals.append((start, min(end, horizon_ms), state))
        last_start, last_state = boundaries[-1]
        if last_start < horizon_ms:
            intervals.append((last_start, horizon_ms, last_state))
        return intervals

    # -- packet handling ---------------------------------------------------
    def deliver_packet(self, t_ms: float, transfer_ms: float = 0.0) -> float:
        """Deliver a downlink packet at ``t_ms``; return radio delay (ms).

        The returned delay is the RRC-induced component only (DRX paging
        wait + promotion); propagation/queueing delay belongs to the
        network latency model. The machine transitions to CONNECTED and
        records activity until ``t_ms + delay + transfer_ms``.
        """
        state = self.state_at(t_ms)
        elapsed = t_ms - self._last_activity_ms
        if (
            state is RRCState.CONNECTED_TAIL
            and elapsed <= _CR_WINDOW_MS + _SHORT_DRX_WINDOW_MS
        ):
            # Short DRX phase: sub-probe-resolution wake-up delays.
            delay = float(self._rng.uniform(0.0, _SHORT_DRX_CYCLE_MS))
        else:
            delay = self._radio_delay_ms(state)
        self._last_activity_ms = t_ms + delay + transfer_ms
        return delay

    def _radio_delay_ms(self, state: RRCState) -> float:
        params = self.params
        if state is RRCState.CONNECTED:
            return 0.0
        if state is RRCState.CONNECTED_TAIL:
            # Early in the tail the UE cycles Short DRX (delays of tens
            # of ms, invisible to second-scale probing); afterwards it
            # waits for the next Long DRX ON window.
            return float(self._rng.uniform(0.0, params.long_drx_ms))
        if state is RRCState.CONNECTED_4G_LEG:
            # Packet rides the LTE anchor: Long-DRX wait plus the extra
            # anchor-leg latency, no idle promotion.
            anchor_extra = 30.0
            return float(
                anchor_extra + self._rng.uniform(0.0, params.long_drx_ms)
            )
        if state is RRCState.INACTIVE:
            resume = params.inactive_resume_ms or 0.0
            return float(
                resume + self._rng.uniform(0.0, params.long_drx_ms)
            )
        # RRC_IDLE: paging wait + full promotion.
        paging = float(self._rng.uniform(0.0, params.idle_drx_ms))
        return paging + params.promotion_delay_ms

    def reset(self) -> None:
        """Forget all activity (UE returns to a long-idle state)."""
        self._last_activity_ms = float("-inf")

    @property
    def last_activity_ms(self) -> float:
        return self._last_activity_ms
