"""RRC-Probe: unrooted, network-based RRC parameter inference.

Reproduces the paper's tool (section 4.1): a server sends UDP packets to
the UE at a controlled inter-packet idle interval and measures the RTT
of each ACK. Because a packet that lands in a deeper RRC state pays a
longer radio wake-up delay, sweeping the idle interval traces out the
state machine (Fig. 10/25), and change-point analysis over the sweep
recovers the Table 7 timers:

* the *UE-inactivity timer* is where RTT first jumps off the connected
  plateau,
* an intermediate plateau between connected and idle levels reveals
  RRC_INACTIVE (SA 5G) and its dwell time,
* on the idle plateau, ``min(RTT) - base`` estimates the promotion
  delay and ``max(RTT) - min(RTT)`` the idle DRX (paging) cycle,
* on the connected plateau the same spread estimates the Long DRX cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.rrc.machine import RRCStateMachine
from repro.rrc.parameters import RRCParameters
from repro.rrc.states import RRCState


@dataclass
class ProbeSample:
    """One probe packet: idle interval used, RTT observed, true state."""

    interval_s: float
    rtt_ms: float
    state: RRCState


@dataclass
class ProbeResult:
    """Sweep data plus inferred RRC parameters."""

    samples: List[ProbeSample]
    inferred: Dict[str, float]

    def rtts_for_interval(self, interval_s: float) -> np.ndarray:
        return np.array(
            [s.rtt_ms for s in self.samples if s.interval_s == interval_s]
        )

    @property
    def intervals(self) -> np.ndarray:
        return np.unique([s.interval_s for s in self.samples])

    def median_rtt_by_interval(self) -> Dict[float, float]:
        return {
            float(i): float(np.median(self.rtts_for_interval(i)))
            for i in self.intervals
        }


@dataclass
class RRCProbe:
    """Probe driver around a simulated UE RRC machine.

    Attributes:
        params: ground-truth RRC parameters of the network under test
            (the probe only *observes* RTTs; the inference never reads
            these directly).
        base_rtt_ms: network round-trip baseline to the probing server.
        jitter_ms: std-dev of Gaussian RTT noise.
        seed: RNG seed for reproducible sweeps.
    """

    params: RRCParameters
    base_rtt_ms: float = 30.0
    jitter_ms: float = 3.0
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def sweep(
        self,
        intervals_s: Sequence[float],
        packets_per_interval: int = 20,
    ) -> ProbeResult:
        """Run the probe at each idle interval and infer parameters."""
        if packets_per_interval < 3:
            raise ValueError("need at least 3 packets per interval")
        samples: List[ProbeSample] = []
        for interval_s in intervals_s:
            if interval_s <= 0:
                raise ValueError("intervals must be positive")
            machine = RRCStateMachine(
                self.params, seed=int(self._rng.integers(0, 2**31))
            )
            t_ms = 0.0
            # Warm-up packet promotes the UE out of deep idle; discarded.
            machine.deliver_packet(t_ms)
            for _ in range(packets_per_interval):
                t_ms = machine.last_activity_ms + interval_s * 1000.0
                state = machine.state_at(t_ms)
                radio_delay = machine.deliver_packet(t_ms)
                rtt = (
                    self.base_rtt_ms
                    + radio_delay
                    + abs(self._rng.normal(0.0, self.jitter_ms))
                )
                samples.append(
                    ProbeSample(
                        interval_s=float(interval_s),
                        rtt_ms=float(rtt),
                        state=state,
                    )
                )
        inferred = self._infer(samples)
        return ProbeResult(samples=samples, inferred=inferred)

    # -- inference -------------------------------------------------------
    @staticmethod
    def _segment_plateaus(rtts_by_interval: List[np.ndarray]) -> List[slice]:
        """Split the sweep into plateaus where the RTT *distribution*
        shifts.

        A boundary is declared between consecutive intervals when the
        next interval's median falls outside the [p5, p95] envelope of
        the current one (with a small jitter guard). This is robust to
        the huge within-plateau spread the idle paging wait induces,
        while still catching the small CONNECTED->INACTIVE step on SA.
        """
        guard_ms = 25.0
        boundaries = [0]
        for i in range(len(rtts_by_interval) - 1):
            current = rtts_by_interval[i]
            next_median = float(np.median(rtts_by_interval[i + 1]))
            low = float(np.percentile(current, 5)) - guard_ms
            high = float(np.percentile(current, 95)) + guard_ms
            if next_median > high or next_median < low:
                boundaries.append(i + 1)
        boundaries.append(len(rtts_by_interval))
        return [
            slice(start, end)
            for start, end in zip(boundaries, boundaries[1:])
            if end > start
        ]

    def _infer(self, samples: List[ProbeSample]) -> Dict[str, float]:
        intervals = np.unique([s.interval_s for s in samples])
        by_interval = {
            float(i): np.array([s.rtt_ms for s in samples if s.interval_s == i])
            for i in intervals
        }

        inferred: Dict[str, float] = {}
        plateaus = self._segment_plateaus(
            [by_interval[float(i)] for i in intervals]
        )
        if len(plateaus) == 1:
            # Never left CONNECTED within the sweep range.
            inferred["inactivity_ms"] = float("nan")
            return inferred

        def plateau_rtts(p: slice) -> np.ndarray:
            return np.concatenate(
                [by_interval[float(i)] for i in intervals[p]]
            )

        connected = plateaus[0]
        idle = plateaus[-1]

        connected_rtts = plateau_rtts(connected)
        base_estimate = float(np.min(connected_rtts))
        inferred["base_rtt_ms"] = base_estimate
        inferred["long_drx_ms"] = float(
            np.percentile(connected_rtts, 98) - base_estimate
        )

        # Inactivity timer: midpoint between the last connected interval
        # and the first interval of the next plateau.
        last_connected = intervals[connected][-1]
        first_departed = intervals[plateaus[1]][0]
        inferred["inactivity_ms"] = float(
            (last_connected + first_departed) / 2.0 * 1000.0
        )

        # A middle plateau between the connected and idle levels is an
        # *intermediate* low-cost state. On SA 5G it is RRC_INACTIVE; on
        # NSA low-band it is the lingering LTE anchor leg whose end is
        # the secondary tail (Table 7's bracketed timers). The probe
        # cannot tell which without knowing the deployment mode, so it
        # reports the raw observation and leaves interpretation to the
        # caller.
        middle = plateaus[1:-1]
        if middle and len(plateaus) >= 3:
            intermediate = middle[0]
            first_idle = intervals[idle][0]
            inferred["has_intermediate"] = 1.0
            inferred["intermediate_duration_ms"] = float(
                (first_idle - intervals[intermediate][0]) * 1000.0
            )
            intermediate_rtts = plateau_rtts(intermediate)
            inferred["intermediate_resume_ms"] = float(
                np.median(intermediate_rtts)
                - base_estimate
                - inferred["long_drx_ms"] / 2.0
            )
            # End of the intermediate plateau = the secondary tail.
            inferred["secondary_tail_ms"] = float(
                (intervals[intermediate][-1] + first_idle) / 2.0 * 1000.0
            )
        else:
            inferred["has_intermediate"] = 0.0

        idle_rtts = plateau_rtts(idle)
        inferred["promotion_ms"] = float(np.min(idle_rtts) - base_estimate)
        inferred["idle_drx_ms"] = float(
            np.percentile(idle_rtts, 98) - np.min(idle_rtts)
        )
        return inferred
