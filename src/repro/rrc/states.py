"""RRC state definitions.

NSA 5G inherits the 4G-like two-state machine (CONNECTED/IDLE); SA 5G
adds RRC_INACTIVE, a low-power state with a lightweight resume path
(paper section 4.2).
"""

from __future__ import annotations

import enum


class RRCState(enum.Enum):
    """Radio Resource Control state of the UE.

    ``CONNECTED_4G_LEG`` models the NSA dual-connectivity quirk from
    Appendix A.3: after the 5G leg's tail expires, the UE can linger in
    LTE_RRC_CONNECTED (packets then arrive over the anchor with higher
    latency) until the *secondary* tail timer — the bracketed values in
    Table 7 — finally demotes it to idle.
    """

    CONNECTED = "RRC_CONNECTED"
    CONNECTED_TAIL = "RRC_CONNECTED (tail/DRX)"
    CONNECTED_4G_LEG = "LTE_RRC_CONNECTED (NSA anchor leg)"
    INACTIVE = "RRC_INACTIVE"
    IDLE = "RRC_IDLE"

    @property
    def is_connected(self) -> bool:
        """True for every sub-state with an active RRC connection."""
        return self in (
            RRCState.CONNECTED,
            RRCState.CONNECTED_TAIL,
            RRCState.CONNECTED_4G_LEG,
        )
