"""RRC substrate: states, carrier parameters, state machine, RRC-Probe.

Models the Radio Resource Control behaviour the paper infers in
sections 4.1-4.2 and Appendix A.3: RRC_CONNECTED / RRC_INACTIVE (SA
only) / RRC_IDLE states, UE-inactivity (tail) timers, connected- and
idle-mode DRX cycles, and 4G/5G promotion delays (Table 7). The
:class:`~repro.rrc.probe.RRCProbe` tool reproduces the paper's
unrooted, network-based inference methodology (Fig. 10/25).
"""

from repro.rrc.states import RRCState
from repro.rrc.parameters import RRC_PARAMETERS, RRCParameters, get_parameters
from repro.rrc.machine import RRCStateMachine
from repro.rrc.probe import ProbeResult, RRCProbe

__all__ = [
    "ProbeResult",
    "RRCParameters",
    "RRCProbe",
    "RRCState",
    "RRCStateMachine",
    "RRC_PARAMETERS",
    "get_parameters",
]
