"""``repro report``: one self-contained HTML artifact per campaign.

Reads a run ledger (the EventLog JSONL a sweep wrote), optionally a
run manifest and a gauge-override file, and renders a single HTML page
with everything you want to see after a campaign:

* headline counters (jobs/ok/cached/failed/skipped, retries, timeouts,
  cache health, elapsed);
* the calibration-gauge scoreboard (pass/warn/fail per paper-pinned
  gauge, re-scored against overridden targets when ``--gauges`` is
  given — the recorded *measured* values are judged against the new
  targets without re-running anything);
* a sweep timeline (one bar per job, anchored at its ``job_start``
  ledger timestamp);
* per-runner span timelines for the slowest job of each runner, drawn
  from the replayed worker-side spans (``t_rel`` offsets, so the
  flames show where time went *inside* the job);
* per-runner latency percentiles and a span-name roll-up table.

All charts are inline SVG from :mod:`repro.viz.svg`; the page embeds
no external resources, so it can be archived as a CI artifact and
opened anywhere.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.calib import load_overrides, rescore
from repro.obs.events import read_events
from repro.obs.stats import aggregate_events
from repro.viz.svg import BarChart, TimelineChart, TimelineSpan

PathLike = Union[str, Path]

__all__ = ["build_report", "render_html", "write_report"]

_STATUS_COLOR = {
    "pass": "#2ca02c",
    "warn": "#ff7f0e",
    "fail": "#d62728",
    "skipped": "#7f7f7f",
}

#: At most this many jobs appear in the sweep timeline, and this many
#: runners get a span flame — the slowest win, and the cut is noted.
MAX_TIMELINE_JOBS = 40
MAX_FLAME_RUNNERS = 8


def build_report(
    events: Sequence[Mapping[str, Any]],
    manifest: Optional[Mapping[str, Any]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    """Fold a ledger into the report's data model (plain dicts).

    ``overrides`` re-scores recorded gauge events against new
    targets/thresholds (see :func:`repro.obs.calib.rescore`).
    """
    aggregate = aggregate_events(events)

    epoch: Optional[float] = None
    jobs: Dict[Any, Dict[str, Any]] = {}
    spans_by_job: Dict[Any, List[Dict[str, Any]]] = {}
    gauges: Dict[str, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("event")
        if kind == "sweep_start" and epoch is None:
            epoch = float(event.get("t", 0.0))
        elif kind == "job_start":
            key = (event.get("label"), event.get("index"))
            jobs[key] = {
                "label": str(event.get("label", "?")),
                "runner": str(event.get("runner", "?")),
                "index": event.get("index"),
                "t_start": float(event.get("t", 0.0)),
                "duration_s": 0.0,
                "status": "running",
            }
        elif kind == "job_end":
            key = (event.get("label"), event.get("index"))
            job = jobs.setdefault(
                key,
                {
                    "label": str(event.get("label", "?")),
                    "runner": str(event.get("runner", "?")),
                    "index": event.get("index"),
                    "t_start": float(event.get("t", 0.0)),
                },
            )
            job["duration_s"] = float(event.get("duration_s", 0.0))
            job["status"] = str(event.get("status", "?"))
            if event.get("profile_path"):
                job["profile_path"] = event["profile_path"]
        elif kind == "span_end" and "index" in event:
            key = (event.get("label"), event.get("index"))
            spans_by_job.setdefault(key, []).append(dict(event))
        elif kind == "gauge":
            gauges[str(event.get("name", "?"))] = dict(event)

    if overrides:
        gauges = {
            name: rescore(fields, overrides)
            for name, fields in gauges.items()
        }
        counts = {"pass": 0, "warn": 0, "fail": 0, "skipped": 0}
        for fields in gauges.values():
            status = str(fields.get("status", "?"))
            counts[status] = counts.get(status, 0) + 1
        aggregate["gauges"] = counts

    if epoch is None:
        epoch = min(
            (j["t_start"] for j in jobs.values()), default=0.0
        )
    job_list = sorted(jobs.values(), key=lambda j: j["t_start"])
    for job in job_list:
        job["offset_s"] = round(job["t_start"] - epoch, 6)

    return {
        "aggregate": aggregate,
        "jobs": job_list,
        "spans_by_job": {
            str(key): spans for key, spans in spans_by_job.items()
        },
        "gauges": [gauges[name] for name in sorted(gauges)],
        "manifest": dict(manifest) if manifest is not None else None,
    }


# ---------------------------------------------------------------------------
# Chart builders.
# ---------------------------------------------------------------------------

def _sweep_timeline_svg(model: Mapping[str, Any]) -> Optional[str]:
    jobs = model["jobs"]
    if not jobs:
        return None
    shown = sorted(jobs, key=lambda j: j["duration_s"], reverse=True)
    shown = sorted(shown[:MAX_TIMELINE_JOBS], key=lambda j: j["offset_s"])
    chart = TimelineChart(title="Sweep timeline", x_label="seconds into sweep")
    for job in shown:
        status = job.get("status", "?")
        color = {"ok": "#1f77b4", "cached": "#2ca02c"}.get(
            status, "#d62728"
        )
        chart.add(
            TimelineSpan(
                row=job["label"],
                start_s=job["offset_s"],
                duration_s=max(job["duration_s"], 1e-4),
                color=color,
                detail=(
                    f"{job['label']}: {status}, "
                    f"{job['duration_s'] * 1000:.1f} ms"
                ),
            )
        )
    return chart.to_svg()


def _flame_svgs(model: Mapping[str, Any]) -> List[str]:
    """One span timeline per runner, for its slowest traced job."""
    slowest: Dict[str, Dict[str, Any]] = {}
    for job in model["jobs"]:
        key = str((job["label"], job["index"]))
        if key not in model["spans_by_job"]:
            continue
        runner = job["runner"]
        if (
            runner not in slowest
            or job["duration_s"] > slowest[runner]["duration_s"]
        ):
            slowest[runner] = dict(job, span_key=key)
    svgs: List[str] = []
    for runner in sorted(slowest)[:MAX_FLAME_RUNNERS]:
        job = slowest[runner]
        spans = model["spans_by_job"][job["span_key"]]
        chart = TimelineChart(
            title=f"Spans: {job['label']}",
            x_label="seconds into job (worker clock)",
        )
        depth_of: Dict[str, int] = {}
        for span in sorted(spans, key=lambda s: float(s.get("t_rel", 0.0))):
            parent = span.get("parent_id")
            depth = depth_of.get(parent, -1) + 1 if parent else 0
            depth_of[str(span.get("span_id"))] = depth
            chart.add(
                TimelineSpan(
                    row=str(span.get("name", "?")),
                    start_s=float(span.get("t_rel", 0.0)),
                    duration_s=max(float(span.get("duration_s", 0.0)), 1e-6),
                    depth=depth,
                    detail=(
                        f"{span.get('name')}: "
                        f"{float(span.get('duration_s', 0.0)) * 1000:.2f} ms"
                    ),
                )
            )
        svgs.append(chart.to_svg())
    return svgs


def _latency_svg(model: Mapping[str, Any]) -> Optional[str]:
    runners = model["aggregate"]["runners"]
    # Runners without duration samples (all cached, or only interrupted
    # jobs) carry null percentiles — they have no latency to chart.
    names = [
        name
        for name, s in runners.items()
        if s["jobs"] and s["p50_s"] is not None
    ]
    if not names:
        return None
    chart = BarChart(
        title="Per-runner job latency",
        x_label="runner",
        y_label="seconds",
        categories=names,
    )
    chart.add_group("p50", [runners[n]["p50_s"] for n in names])
    chart.add_group("p95", [runners[n]["p95_s"] for n in names])
    chart.add_group("max", [runners[n]["max_s"] for n in names])
    return chart.to_svg()


# ---------------------------------------------------------------------------
# HTML rendering.
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 900px; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.9em; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f4f4f4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.status { font-weight: bold; color: white; border-radius: 3px;
          padding: 1px 7px; font-size: 0.85em; }
.counters span { display: inline-block; margin-right: 1.4em; }
.counters b { font-size: 1.25em; }
.note { color: #666; font-size: 0.85em; }
svg { max-width: 100%; height: auto; }
"""


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return html.escape(str(value))


def _status_badge(status: str) -> str:
    color = _STATUS_COLOR.get(status, "#333")
    return (
        f'<span class="status" style="background:{color}">'
        f"{html.escape(status)}</span>"
    )


def _gauge_table(model: Mapping[str, Any]) -> str:
    gauges = model["gauges"]
    if not gauges:
        return (
            '<p class="note">No calibration gauges recorded in this '
            "ledger (run the sweep with an event log and gauge "
            "evaluation enabled).</p>"
        )
    rows = [
        "<tr><th>gauge</th><th>paper ref</th><th>description</th>"
        "<th>measured</th><th>target</th><th>err</th><th>status</th></tr>"
    ]
    for g in gauges:
        measured = g.get("measured")
        err = g.get("err")
        unit = f" {g['unit']}" if g.get("unit") else ""
        detail = (
            f'<div class="note">{html.escape(str(g["detail"]))}</div>'
            if g.get("detail")
            else ""
        )
        rows.append(
            "<tr>"
            f"<td>{html.escape(str(g.get('name', '?')))}</td>"
            f"<td>{html.escape(str(g.get('paper_ref', '')))}</td>"
            f"<td>{html.escape(str(g.get('description', '')))}{detail}</td>"
            f"<td class='num'>"
            f"{_fmt(measured) + unit if measured is not None else '—'}</td>"
            f"<td class='num'>{_fmt(g.get('target', ''))}{unit}</td>"
            f"<td class='num'>{_fmt(err) if err is not None else '—'}</td>"
            f"<td>{_status_badge(str(g.get('status', '?')))}</td>"
            "</tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def _span_table(model: Mapping[str, Any]) -> str:
    spans = model["aggregate"].get("spans") or {}
    if not spans:
        return '<p class="note">No spans recorded (tracing off?).</p>'
    rows = [
        "<tr><th>span</th><th>count</th><th>total</th><th>mean</th>"
        "<th>p95</th><th>max</th></tr>"
    ]
    for name, s in spans.items():
        rows.append(
            "<tr>"
            f"<td>{html.escape(name)}</td>"
            f"<td class='num'>{s['count']}</td>"
            f"<td class='num'>{s['total_s']:.3f}s</td>"
            f"<td class='num'>{s['mean_s'] * 1000:.2f}ms</td>"
            f"<td class='num'>{s['p95_s'] * 1000:.2f}ms</td>"
            f"<td class='num'>{s['max_s'] * 1000:.2f}ms</td>"
            "</tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def _counters_html(model: Mapping[str, Any]) -> str:
    overall = model["aggregate"]["overall"]
    parts = []
    for key in (
        "sweeps", "jobs", "ok", "cached", "failed", "skipped",
        "retries", "timeouts", "cache_quarantines", "cache_put_errors",
    ):
        parts.append(f"<span><b>{overall[key]}</b> {key}</span>")
    parts.append(f"<span><b>{overall['elapsed_s']:.2f}s</b> elapsed</span>")
    parts.append(
        f"<span><b>{100.0 * overall['cache_hit_rate']:.0f}%</b> "
        "cache hits</span>"
    )
    return '<div class="counters">' + "".join(parts) + "</div>"


def _manifest_html(model: Mapping[str, Any]) -> str:
    manifest = model["manifest"]
    if not manifest:
        return ""
    keep = {
        k: manifest[k]
        for k in (
            "created_at", "argv", "code_version", "base_seed", "scale",
            "workers", "partial",
        )
        if k in manifest
    }
    blob = html.escape(json.dumps(keep, indent=2, default=str))
    return f"<h2>Provenance</h2><pre>{blob}</pre>"


def render_html(model: Mapping[str, Any], title: str = "repro report") -> str:
    """The full self-contained HTML page for one report model."""
    gauges = model["aggregate"].get("gauges") or {}
    badge = ""
    if any(gauges.values()):
        worst = (
            "fail" if gauges.get("fail") else
            "warn" if gauges.get("warn") else "pass"
        )
        badge = " " + _status_badge(worst)
    sections: List[str] = [
        f"<h1>{html.escape(title)}{badge}</h1>",
        _counters_html(model),
        "<h2>Calibration gauges</h2>",
        _gauge_table(model),
    ]
    timeline = _sweep_timeline_svg(model)
    if timeline:
        sections.append("<h2>Sweep timeline</h2>")
        if len(model["jobs"]) > MAX_TIMELINE_JOBS:
            sections.append(
                f'<p class="note">showing the {MAX_TIMELINE_JOBS} slowest '
                f"of {len(model['jobs'])} jobs</p>"
            )
        sections.append(timeline)
    flames = _flame_svgs(model)
    if flames:
        sections.append("<h2>Span timelines (slowest job per runner)</h2>")
        sections.extend(flames)
    latency = _latency_svg(model)
    if latency:
        sections.append("<h2>Per-runner latency</h2>")
        sections.append(latency)
    sections.append("<h2>Span roll-up</h2>")
    sections.append(_span_table(model))
    sections.append(_manifest_html(model))
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(sections)
        + "\n</body></html>\n"
    )


def write_report(
    ledger_path: PathLike,
    out_path: PathLike,
    manifest_path: Optional[PathLike] = None,
    gauges_path: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Build and write the HTML report; returns the data model.

    The caller decides exit semantics from the model (``repro report``
    exits 1 when any gauge fails).
    """
    events = read_events(ledger_path)
    manifest = None
    if manifest_path is not None:
        manifest = json.loads(Path(manifest_path).read_text())
    overrides = None
    if gauges_path is not None:
        overrides = load_overrides(gauges_path)
    model = build_report(events, manifest=manifest, overrides=overrides)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        render_html(model, title=f"repro report — {Path(ledger_path).name}")
    )
    return model
