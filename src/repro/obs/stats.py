"""Aggregate an event ledger into per-runner latency/retry/cache stats.

``python -m repro stats EVENTS.jsonl`` renders what
:func:`aggregate_events` computes: per-runner job counts, p50/p95/max
latency over ``job_end`` durations, retry and timeout counts, and
cache hit rate (hits over hits + executed jobs), plus a sweep-level
roll-up reconciled from ``sweep_end`` events. Works on any ledger an
:class:`repro.obs.events.EventLog` wrote — including one several
sweeps appended to.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

from repro.obs.events import iter_events
from repro.obs.metrics import percentile

#: Version of the aggregate dict :func:`aggregate_events` returns (and
#: ``repro stats --json`` prints). Bump on any shape change so archived
#: aggregates stay interpretable; consumers (``repro compare``) warn on
#: versions newer than they know rather than guessing.
STATS_SCHEMA = 1


def _runner_of(event: Mapping[str, Any]) -> str:
    return str(event.get("runner", "?"))


def aggregate_events(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold a flat event sequence into overall + per-runner stats.

    Besides the per-runner table, the aggregate carries a per-span-name
    roll-up (``"spans"``, from ``span_end`` events) and the calibration
    scoreboard (``"gauges"``, last status per gauge name wins so a
    re-scored ledger reflects its newest verdict).
    """
    per_runner: Dict[str, Dict[str, Any]] = {}
    span_durations: Dict[str, List[float]] = {}
    gauge_status: Dict[str, str] = {}
    # Multiset of job_start events not yet matched by a job_end, keyed
    # (runner, label, index). Whatever is left open at the end of the
    # ledger was torn off mid-run — a killed sweep, a crashed parent,
    # an interrupted lease — and must be *counted*, not silently
    # dropped, or a torn ledger under-reports exactly the runs that
    # most need auditing.
    open_jobs: Dict[tuple, int] = {}
    overall = {
        "sweeps": 0,
        "jobs": 0,
        "ok": 0,
        "failed": 0,
        "cached": 0,
        "skipped": 0,
        "interrupted": 0,
        "retries": 0,
        "timeouts": 0,
        "cache_puts": 0,
        "cache_quarantines": 0,
        "cache_put_errors": 0,
        "elapsed_s": 0.0,
    }

    def bucket(runner: str) -> Dict[str, Any]:
        if runner not in per_runner:
            per_runner[runner] = {
                "jobs": 0,
                "ok": 0,
                "failed": 0,
                "cached": 0,
                "skipped": 0,
                "interrupted": 0,
                "retries": 0,
                "timeouts": 0,
                "durations": [],
            }
        return per_runner[runner]

    def _job_key(event: Mapping[str, Any]) -> tuple:
        return (_runner_of(event), event.get("label"), event.get("index"))

    for event in events:
        kind = event.get("event")
        if kind == "sweep_start":
            overall["sweeps"] += 1
        elif kind == "sweep_end":
            overall["elapsed_s"] += float(event.get("elapsed_s", 0.0))
        elif kind == "job_start":
            key3 = _job_key(event)
            open_jobs[key3] = open_jobs.get(key3, 0) + 1
        elif kind == "job_end":
            key3 = _job_key(event)
            if open_jobs.get(key3):
                open_jobs[key3] -= 1
            stats = bucket(_runner_of(event))
            stats["jobs"] += 1
            status = event.get("status")
            key = "ok" if status == "ok" else "failed"
            stats[key] += 1
            overall[key] += 1
            overall["jobs"] += 1
            stats["durations"].append(float(event.get("duration_s", 0.0)))
        elif kind == "job_skipped":
            stats = bucket(_runner_of(event))
            stats["skipped"] += 1
            overall["skipped"] += 1
            overall["jobs"] += 1
        elif kind == "job_retry":
            bucket(_runner_of(event))["retries"] += 1
            overall["retries"] += 1
        elif kind == "job_timeout":
            bucket(_runner_of(event))["timeouts"] += 1
            overall["timeouts"] += 1
        elif kind == "cache_hit":
            stats = bucket(_runner_of(event))
            stats["cached"] += 1
            overall["cached"] += 1
            overall["jobs"] += 1
        elif kind == "cache_put":
            overall["cache_puts"] += 1
        elif kind == "cache_quarantine":
            overall["cache_quarantines"] += 1
        elif kind == "cache_put_error":
            overall["cache_put_errors"] += 1
        elif kind == "span_end":
            span_durations.setdefault(str(event.get("name", "?")), []).append(
                float(event.get("duration_s", 0.0))
            )
        elif kind == "gauge":
            gauge_status[str(event.get("name", "?"))] = str(
                event.get("status", "?")
            )

    # Reconcile torn ledgers: any job_start never matched by a job_end
    # is an interrupted job (the worker — or the whole parent — died
    # mid-flight). Count it as a failure so totals add up instead of
    # quietly shrinking.
    for (runner, _label, _index), open_count in open_jobs.items():
        if open_count <= 0:
            continue
        stats = bucket(runner)
        stats["interrupted"] += open_count
        stats["failed"] += open_count
        stats["jobs"] += open_count
        overall["interrupted"] += open_count
        overall["failed"] += open_count
        overall["jobs"] += open_count

    runners: Dict[str, Dict[str, Any]] = {}
    for runner in sorted(per_runner):
        stats = per_runner[runner]
        durations: List[float] = stats.pop("durations")
        total = stats["jobs"] + stats["cached"]
        # A runner whose jobs were all cached (or skipped/failed before
        # timing) has no duration samples. Percentiles over nothing are
        # None/null, not 0.0 — a 0.0 would be indistinguishable from a
        # genuinely instant run in `repro stats` and the HTML report.
        runners[runner] = dict(
            stats,
            total=total,
            p50_s=round(percentile(durations, 50.0), 6) if durations else None,
            p95_s=round(percentile(durations, 95.0), 6) if durations else None,
            max_s=round(max(durations), 6) if durations else None,
            cache_hit_rate=(stats["cached"] / total) if total else 0.0,
        )
    total_jobs = overall["jobs"]
    overall["cache_hit_rate"] = (
        overall["cached"] / total_jobs if total_jobs else 0.0
    )
    overall["elapsed_s"] = round(overall["elapsed_s"], 6)

    spans: Dict[str, Dict[str, Any]] = {}
    for name in sorted(span_durations):
        durations = span_durations[name]
        spans[name] = {
            "count": len(durations),
            "total_s": round(sum(durations), 6),
            "mean_s": round(sum(durations) / len(durations), 6),
            "p95_s": round(percentile(durations, 95.0), 6),
            "max_s": round(max(durations), 6),
        }
    gauges = {"pass": 0, "warn": 0, "fail": 0, "skipped": 0}
    for status in gauge_status.values():
        gauges[status] = gauges.get(status, 0) + 1
    return {
        "schema": STATS_SCHEMA,
        "overall": overall,
        "runners": runners,
        "spans": spans,
        "gauges": gauges,
    }


def aggregate_events_file(path) -> Dict[str, Any]:
    """Aggregate a ledger file, streaming it (never fully resident)."""
    return aggregate_events(iter_events(path))


def _fmt_row(cells: List[str], widths: List[int]) -> str:
    return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()


def _fmt_seconds(value) -> str:
    """``n/a`` for missing (None) samples, ``X.XXXs`` otherwise."""
    return "n/a" if value is None else f"{value:.3f}s"


def render_stats(aggregate: Dict[str, Any]) -> str:
    """A terminal-friendly report over :func:`aggregate_events` output."""
    overall = aggregate["overall"]
    # Failure-mode fields only appear when non-zero, so healthy-run
    # output (which CI greps for) is unchanged by their existence.
    skipped_part = (
        ", {skipped} skipped".format(**overall) if overall["skipped"] else ""
    )
    interrupted_part = (
        " ({interrupted} interrupted)".format(**overall)
        if overall.get("interrupted")
        else ""
    )
    lines = [
        "{sweeps} sweep(s), {jobs} jobs: {ok} ok, {cached} cached, "
        "{failed} failed{interrupted_part}{skipped_part} "
        "in {elapsed_s:.2f}s".format(
            skipped_part=skipped_part,
            interrupted_part=interrupted_part,
            **overall,
        ),
        "retries: {retries}  timeouts: {timeouts}  "
        "cache hit rate: {rate:.0f}%".format(
            retries=overall["retries"],
            timeouts=overall["timeouts"],
            rate=100.0 * overall["cache_hit_rate"],
        ),
    ]
    if overall["cache_quarantines"] or overall["cache_put_errors"]:
        lines.append(
            "cache quarantines: {cache_quarantines}  "
            "cache put errors: {cache_put_errors}".format(**overall)
        )
    runners = aggregate["runners"]
    if runners:
        headers = [
            "runner", "jobs", "ok", "failed", "cached",
            "retries", "timeouts", "p50", "p95", "hit%",
        ]
        rows = [headers]
        for runner, stats in runners.items():
            rows.append(
                [
                    runner,
                    str(stats["total"]),
                    str(stats["ok"]),
                    str(stats["failed"]),
                    str(stats["cached"]),
                    str(stats["retries"]),
                    str(stats["timeouts"]),
                    _fmt_seconds(stats["p50_s"]),
                    _fmt_seconds(stats["p95_s"]),
                    f"{100.0 * stats['cache_hit_rate']:.0f}",
                ]
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(headers))
        ]
        lines.append("")
        lines.append(_fmt_row(rows[0], widths))
        lines.append(_fmt_row(["-" * w for w in widths], widths))
        lines.extend(_fmt_row(row, widths) for row in rows[1:])
    spans = aggregate.get("spans") or {}
    if spans:
        headers = ["span", "count", "total", "mean", "p95", "max"]
        rows = [headers]
        for name, stats in spans.items():
            rows.append(
                [
                    name,
                    str(stats["count"]),
                    f"{stats['total_s']:.3f}s",
                    f"{stats['mean_s'] * 1000:.2f}ms",
                    f"{stats['p95_s'] * 1000:.2f}ms",
                    f"{stats['max_s'] * 1000:.2f}ms",
                ]
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(headers))
        ]
        lines.append("")
        lines.append(_fmt_row(rows[0], widths))
        lines.append(_fmt_row(["-" * w for w in widths], widths))
        lines.extend(_fmt_row(row, widths) for row in rows[1:])
    gauges = aggregate.get("gauges") or {}
    if any(gauges.values()):
        lines.append("")
        lines.append(
            "calibration gauges: {p} pass, {w} warn, {f} fail, "
            "{s} skipped".format(
                p=gauges.get("pass", 0),
                w=gauges.get("warn", 0),
                f=gauges.get("fail", 0),
                s=gauges.get("skipped", 0),
            )
        )
    return "\n".join(lines)
