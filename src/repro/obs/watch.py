"""``repro watch``: a live terminal view over a growing run ledger.

Tails an events JSONL *while it is being written* — a local file, or
``repro serve``'s server-wide follow stream
(``GET /v1/events?follow=1``) — and folds the events into one
continuously redrawn status panel:

* in-flight progress (done/total with a bar), elapsed, ETA, jobs/s;
* per-runner throughput and p50 over the settled jobs so far;
* fault/retry counters (retries, timeouts, worker crashes, cache
  quarantines) as they happen;
* converging **fleet quantiles** mid-sweep, from the
  ``reducer_snapshot`` events the fleet tracker emits as shard
  partials settle (:class:`repro.fleet.FleetSnapshotTracker`);
* the gauge scoreboard and the engine's ``run_summary`` once the
  sweep lands.

The tailer never yields a half-written event: bytes are buffered until
a newline, so a reader racing the writer sees only complete lines. A
line that *completes* but does not parse (a torn write that a later
writer appended after) is skipped with a single ``RuntimeWarning`` —
the tail keeps going — and a trailing unterminated fragment left at
shutdown warns the same way (the writer died mid-append).

Keybindings (interactive TTY only): ``q`` quits, ``r`` forces a
redraw. See docs/observability.md.
"""

from __future__ import annotations

import json
import sys
import time
import warnings
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterator,
    Mapping,
    Optional,
    Union,
)

PathLike = Union[str, Path]

#: Events that mark "this run is over" for the default watch loop.
TERMINAL_EVENTS = frozenset({"run_summary", "serve_stop"})

_BAR_WIDTH = 24


class _LineAssembler:
    """Byte buffering: complete lines out, partial writes held back."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._buffer = ""
        self._warned = False

    def push(self, chunk: str) -> Iterator[Dict[str, Any]]:
        """Feed raw text; yields every event completed by it."""
        if not chunk:
            return
        self._buffer += chunk
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                self._warn(
                    f"{self.source}: skipping malformed event line "
                    "(torn write?); tail continues"
                )

    def finish(self) -> None:
        """Call at end-of-follow: a leftover fragment is a torn tail."""
        if self._buffer.strip():
            self._warn(
                f"{self.source}: dropping torn trailing event fragment "
                "(writer likely died mid-append)"
            )
            self._buffer = ""

    def _warn(self, message: str) -> None:
        if self._warned:
            return
        self._warned = True
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def follow_events(
    path: PathLike,
    *,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = True,
) -> Iterator[Optional[Dict[str, Any]]]:
    """Tail a ledger file, yielding events as lines complete.

    Yields ``None`` once per idle poll so the driver can redraw clocks
    and check its own exit conditions without a second thread. The
    file may not exist yet (a sweep about to start); the tailer waits
    for it. ``stop()`` is checked every poll; when it returns True the
    generator drains whatever is already on disk and returns.
    ``from_start=False`` starts at the current end of file (attach to
    a long-running serve ledger without replaying history).
    """
    path = Path(path)
    assembler = _LineAssembler(str(path))
    handle: Optional[IO[str]] = None
    try:
        while True:
            if handle is None:
                if path.exists():
                    handle = path.open("r")
                    if not from_start:
                        handle.seek(0, 2)
            got_data = False
            if handle is not None:
                chunk = handle.read()
                if chunk:
                    got_data = True
                    for event in assembler.push(chunk):
                        yield event
            if stop is not None and stop():
                return
            if not got_data:
                yield None
                time.sleep(poll_s)
    finally:
        assembler.finish()
        if handle is not None:
            handle.close()


def follow_url(
    url: str,
    *,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Optional[Dict[str, Any]]]:
    """Tail a serve follow stream (``GET /v1/events?follow=1``).

    Same yield contract as :func:`follow_events` (events, with ``None``
    heartbeats on idle). A pump thread does blocking chunked reads and
    hands bytes over a queue — short *socket* timeouts are not usable
    as a heartbeat because a timeout raised mid-chunk-header
    permanently desyncs ``http.client``'s chunked decoder. The server
    ends the stream at drain/stop, which ends the generator; ``stop()``
    ends it from this side (the response is closed under the pump,
    which unblocks it).
    """
    import http.client
    import queue as queue_mod
    import threading
    import urllib.request

    assembler = _LineAssembler(url)
    response = urllib.request.urlopen(url, timeout=10.0)
    chunks: "queue_mod.Queue[bytes]" = queue_mod.Queue()

    def _pump() -> None:
        try:
            while True:
                data = response.read1(65536)
                chunks.put(data)
                if not data:
                    return  # server closed the stream (drain/stop)
        except (OSError, ValueError, http.client.HTTPException):
            # Closed under us (stop path — the socket shutdown can
            # surface as IncompleteRead mid-chunk) or the server died;
            # either way the stream is over.
            chunks.put(b"")

    pump = threading.Thread(target=_pump, daemon=True)
    pump.start()
    try:
        while True:
            if stop is not None and stop():
                return
            try:
                chunk = chunks.get(timeout=max(poll_s, 0.01))
            except queue_mod.Empty:
                yield None
                continue
            if not chunk:
                return
            for event in assembler.push(chunk.decode("utf-8", "replace")):
                yield event
    finally:
        assembler.finish()
        # ``response.close()`` needs the BufferedReader lock the pump
        # holds while blocked in ``read1`` — so shut the raw socket
        # down first (lock-free), which makes that read return at once
        # instead of after the full socket timeout.
        import socket as socket_mod

        sock = getattr(getattr(response, "fp", None), "raw", None)
        sock = getattr(sock, "_sock", None)
        if sock is not None:
            try:
                sock.shutdown(socket_mod.SHUT_RDWR)
            except OSError:
                pass
        try:
            response.close()
        except OSError:
            pass
        pump.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The live view model.
# ---------------------------------------------------------------------------

class WatchView:
    """Folds a live event stream into a renderable status panel.

    Pure state machine: :meth:`feed` one event at a time (in ledger
    order), :meth:`render` whenever a redraw is due. Works identically
    on a finished ledger (replay) and a growing one (tail).
    """

    def __init__(self, source: str = "") -> None:
        self.source = source
        self.total = 0
        self.ok = 0
        self.cached = 0
        self.failed = 0
        self.skipped = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.quarantines = 0
        self.sweeps_started = 0
        self.sweeps_ended = 0
        self.events_seen = 0
        self.last_event: Optional[str] = None
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self.workers: Optional[int] = None
        self.runners: Dict[str, Dict[str, Any]] = {}
        self.running: Dict[Any, Dict[str, Any]] = {}
        self.snapshot: Optional[Dict[str, Any]] = None
        self.gauges: Dict[str, str] = {}
        self.run_summary: Optional[Dict[str, Any]] = None
        self.serve_counts: Dict[str, int] = {}

    # -- ingestion -------------------------------------------------------
    def feed(self, event: Mapping[str, Any]) -> None:
        self.events_seen += 1
        kind = str(event.get("event", "?"))
        self.last_event = kind
        t = event.get("t")
        if isinstance(t, (int, float)):
            if self.first_t is None:
                self.first_t = float(t)
            self.last_t = float(t)
        if kind == "sweep_start":
            self.sweeps_started += 1
            self.total += int(event.get("jobs", 0))
            if event.get("workers"):
                self.workers = int(event["workers"])
        elif kind == "sweep_end":
            self.sweeps_ended += 1
        elif kind == "job_start":
            key = (event.get("label"), event.get("index"))
            self.running[key] = {
                "label": str(event.get("label", "?")),
                "t": float(event.get("t", 0.0) or 0.0),
            }
        elif kind == "job_end":
            self.running.pop(
                (event.get("label"), event.get("index")), None
            )
            status = str(event.get("status", "failed"))
            bucket = self._runner(str(event.get("runner", "?")))
            bucket["done"] += 1
            bucket["duration_s"] += float(event.get("duration_s", 0.0))
            bucket["durations"].append(float(event.get("duration_s", 0.0)))
            if status == "ok":
                self.ok += 1
            else:
                self.failed += 1
                if event.get("error_type") == "WorkerCrashError":
                    self.crashes += 1
        elif kind == "cache_hit":
            self.cached += 1
            self._runner(str(event.get("runner", "?")))["cached"] += 1
        elif kind == "job_skipped":
            self.skipped += 1
        elif kind == "job_retry":
            self.retries += 1
            self._runner(str(event.get("runner", "?")))["retries"] += 1
        elif kind == "job_timeout":
            self.timeouts += 1
        elif kind == "cache_quarantine":
            self.quarantines += 1
        elif kind == "reducer_snapshot":
            self.snapshot = dict(event)
        elif kind == "gauge":
            self.gauges[str(event.get("name", "?"))] = str(
                event.get("status", "?")
            )
        elif kind == "run_summary":
            self.run_summary = dict(event)
        elif kind.startswith("serve_"):
            self.serve_counts[kind] = self.serve_counts.get(kind, 0) + 1

    def _runner(self, name: str) -> Dict[str, Any]:
        if name not in self.runners:
            self.runners[name] = {
                "done": 0,
                "cached": 0,
                "retries": 0,
                "duration_s": 0.0,
                "durations": [],
            }
        return self.runners[name]

    # -- derived ---------------------------------------------------------
    @property
    def done(self) -> int:
        return self.ok + self.cached + self.failed + self.skipped

    @property
    def finished(self) -> bool:
        """True once the stream says the run is over.

        ``run_summary`` (or ``serve_stop``) is authoritative; matched
        ``sweep_start``/``sweep_end`` pairs cover ledgers written
        before the summary hook existed.
        """
        if self.run_summary is not None:
            return True
        if self.serve_counts.get("serve_stop"):
            return True
        return 0 < self.sweeps_started == self.sweeps_ended

    @property
    def elapsed_s(self) -> float:
        if self.first_t is None or self.last_t is None:
            return 0.0
        return max(0.0, self.last_t - self.first_t)

    def eta_s(self) -> Optional[float]:
        remaining = self.total - self.done
        if remaining <= 0 or self.done == 0 or self.elapsed_s <= 0:
            return None
        return remaining * self.elapsed_s / self.done

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        lines = [f"repro watch — {self.source or 'ledger'}"]
        total = max(self.total, self.done)
        frac = (self.done / total) if total else 0.0
        filled = int(round(frac * _BAR_WIDTH))
        bar = "#" * filled + "." * (_BAR_WIDTH - filled)
        rate = (
            f"{self.done / self.elapsed_s:.2f} jobs/s"
            if self.elapsed_s > 0 and self.done
            else "— jobs/s"
        )
        eta = self.eta_s()
        eta_s = (
            "done"
            if self.finished
            else (f"ETA {eta:.0f}s" if eta is not None else "ETA —")
        )
        lines.append(
            f"[{bar}] {self.done}/{total} jobs  "
            f"({self.ok} ok, {self.cached} cached, {self.failed} failed"
            + (f", {self.skipped} skipped" if self.skipped else "")
            + f")  elapsed {self.elapsed_s:.1f}s  {eta_s}  {rate}"
        )
        fault_bits = [
            f"{self.retries} retries",
            f"{self.timeouts} timeouts",
            f"{self.crashes} crashes",
        ]
        if self.quarantines:
            fault_bits.append(f"{self.quarantines} quarantines")
        line = "faults: " + ", ".join(fault_bits)
        if self.workers:
            line += f"  workers: {self.workers}"
        if self.gauges:
            tally: Dict[str, int] = {}
            for status in self.gauges.values():
                tally[status] = tally.get(status, 0) + 1
            line += "  gauges: " + "/".join(
                f"{count} {status}" for status, count in sorted(tally.items())
            )
        lines.append(line)
        if self.running:
            labels = [info["label"] for info in self.running.values()]
            shown = ", ".join(labels[:4])
            more = f" (+{len(labels) - 4} more)" if len(labels) > 4 else ""
            lines.append(f"in flight: {shown}{more}")
        if self.runners:
            lines.append("runner throughput:")
            width = max(len(name) for name in self.runners)
            for name in sorted(self.runners):
                bucket = self.runners[name]
                durations = bucket["durations"]
                p50 = ""
                if durations:
                    ordered = sorted(durations)
                    p50 = f"  p50 {ordered[len(ordered) // 2]:.3f}s"
                per_s = (
                    f"{bucket['done'] / bucket['duration_s']:.2f}/s"
                    if bucket["duration_s"] > 0
                    else "—"
                )
                cached = (
                    f"  {bucket['cached']} cached" if bucket["cached"] else ""
                )
                retried = (
                    f"  {bucket['retries']} retries"
                    if bucket["retries"]
                    else ""
                )
                lines.append(
                    f"  {name.ljust(width)}  {bucket['done']} done  "
                    f"{per_s}{p50}{cached}{retried}"
                )
        if self.snapshot is not None:
            snap = self.snapshot
            lines.append(
                "fleet quantiles ({done}/{total} shards, {ues} UEs):".format(
                    done=snap.get("shards_done", "?"),
                    total=snap.get("shards_total", "?"),
                    ues=snap.get("ues", "?"),
                )
            )
            for name, stats in (snap.get("groups") or {}).items():
                bits = "  ".join(
                    f"{level} {stats[level]:.2f}"
                    for level in ("p5", "p50", "p95")
                    if isinstance(stats.get(level), (int, float))
                )
                count = stats.get("count")
                count_s = f"  (n={count})" if count else ""
                lines.append(f"  {name}: {bits}{count_s}")
        if self.serve_counts:
            bits = ", ".join(
                f"{count} {kind[len('serve_'):]}"
                for kind, count in sorted(self.serve_counts.items())
            )
            lines.append(f"serve: {bits}")
        if self.run_summary is not None:
            summary = self.run_summary
            lines.append(
                "run summary: {jobs} jobs in {elapsed:.2f}s "
                "(workers {workers}, dispatch {dispatch})".format(
                    jobs=summary.get("jobs", "?"),
                    elapsed=float(summary.get("elapsed_s", 0.0) or 0.0),
                    workers=summary.get("workers", "?"),
                    dispatch=summary.get("dispatch", "?"),
                )
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The interactive driver behind ``repro watch``.
# ---------------------------------------------------------------------------

class _KeyPoller:
    """Non-blocking single-key reads from a TTY stdin; no-op otherwise."""

    def __init__(self) -> None:
        self._active = False
        self._fd: Optional[int] = None
        self._saved: Any = None

    def __enter__(self) -> "_KeyPoller":
        try:
            import termios
            import tty

            if sys.stdin.isatty():
                self._fd = sys.stdin.fileno()
                self._saved = termios.tcgetattr(self._fd)
                tty.setcbreak(self._fd)
                self._active = True
        except (ImportError, OSError, ValueError):
            self._active = False
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._active and self._fd is not None:
            import termios

            termios.tcsetattr(self._fd, termios.TCSADRAIN, self._saved)
        self._active = False

    def poll(self) -> Optional[str]:
        if not self._active:
            return None
        import select

        ready, _, _ = select.select([sys.stdin], [], [], 0)
        if ready:
            return sys.stdin.read(1)
        return None


def watch(
    source: str,
    *,
    out: Optional[IO[str]] = None,
    interval_s: float = 0.5,
    duration_s: Optional[float] = None,
    once: bool = False,
    linger_s: float = 1.0,
) -> int:
    """Drive the live view until the run finishes (or ``q``).

    ``source`` is a ledger path or an ``http(s)://`` follow URL. With
    a TTY the panel redraws in place; otherwise one snapshot is
    printed when the run finishes (plus the final state on exit), so
    piping into a file stays readable. ``once`` renders the current
    state and returns immediately; ``duration_s`` bounds the whole
    watch (for CI). After the terminal event the tail lingers
    ``linger_s`` to catch trailing gauge events, then stops.
    """
    stream = out if out is not None else sys.stdout
    view = WatchView(source=source)
    started = time.monotonic()
    finished_at: Optional[float] = None
    stop_requested = False

    def _stop() -> bool:
        if stop_requested:
            return True
        if once:
            return True
        if duration_s is not None and time.monotonic() - started > duration_s:
            return True
        if finished_at is not None:
            return time.monotonic() - finished_at > linger_s
        return False

    if source.startswith(("http://", "https://")):
        events = follow_url(source, poll_s=interval_s / 2, stop=_stop)
    else:
        events = follow_events(source, poll_s=interval_s / 2, stop=_stop)

    is_tty = hasattr(stream, "isatty") and stream.isatty()
    last_draw = 0.0
    drawn_lines = 0

    def _draw(force: bool = False) -> None:
        nonlocal last_draw, drawn_lines
        now = time.monotonic()
        if not force and now - last_draw < interval_s:
            return
        last_draw = now
        panel = view.render()
        if is_tty:
            if drawn_lines:
                stream.write(f"\x1b[{drawn_lines}F\x1b[J")
            stream.write(panel + "\n")
            drawn_lines = panel.count("\n") + 1
        stream.flush() if hasattr(stream, "flush") else None

    with _KeyPoller() as keys:
        for event in events:
            key = keys.poll()
            if key == "q":
                stop_requested = True
            elif key == "r":
                _draw(force=True)
            if event is not None:
                view.feed(event)
                if view.finished and finished_at is None:
                    finished_at = time.monotonic()
            if is_tty:
                _draw()
    # Final (or only, when not a TTY) snapshot.
    if is_tty:
        _draw(force=True)
    else:
        panel = view.render()
        stream.write(panel + "\n")
        if hasattr(stream, "flush"):
            stream.flush()
    return 0


__all__ = [
    "TERMINAL_EVENTS",
    "WatchView",
    "follow_events",
    "follow_url",
    "watch",
]
