"""repro.obs — run-ledger observability for the scenario engine.

Four pieces, threaded through :mod:`repro.engine` and the CLI:

* :mod:`repro.obs.events` — typed event stream (``sweep_start`` …
  ``cache_put``) with an :class:`~repro.obs.events.EventLog` JSONL
  sink; a no-op when no sink is attached.
* :mod:`repro.obs.metrics` — ``Counter``/``Timer`` registry with
  scoped spans; the pool and :class:`repro.core.campaign.Campaign`
  aggregate into a per-sweep stats block.
* :mod:`repro.obs.manifest` — provenance manifests written next to
  exports and cache directories; replayable via
  :func:`~repro.obs.manifest.specs_from_manifest`.
* :mod:`repro.obs.stats` — folds an event ledger into per-runner
  p50/p95 latency, retry/timeout counts, and cache hit rates
  (``python -m repro stats``).

``events`` and ``metrics`` are stdlib-only and import nothing from the
engine, so the engine can import them without cycles; ``manifest`` and
``stats`` (which look back at engine types) load lazily via module
``__getattr__``. See docs/observability.md.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    EventSink,
    RecordingSink,
    read_events,
)
from repro.obs.metrics import Counter, MetricsRegistry, Timer, percentile

_LAZY = {
    "build_manifest": "repro.obs.manifest",
    "write_manifest": "repro.obs.manifest",
    "load_manifest": "repro.obs.manifest",
    "manifest_path_for": "repro.obs.manifest",
    "specs_from_manifest": "repro.obs.manifest",
    "MANIFEST_VERSION": "repro.obs.manifest",
    "aggregate_events": "repro.obs.stats",
    "aggregate_events_file": "repro.obs.stats",
    "render_stats": "repro.obs.stats",
}

__all__ = [
    "EVENT_TYPES",
    "Counter",
    "EventLog",
    "EventSink",
    "MetricsRegistry",
    "RecordingSink",
    "Timer",
    "percentile",
    "read_events",
] + sorted(_LAZY)


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
