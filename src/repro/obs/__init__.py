"""repro.obs — run-ledger observability for the scenario engine.

Four pieces, threaded through :mod:`repro.engine` and the CLI:

* :mod:`repro.obs.events` — typed event stream (``sweep_start`` …
  ``cache_put``) with an :class:`~repro.obs.events.EventLog` JSONL
  sink; a no-op when no sink is attached.
* :mod:`repro.obs.metrics` — ``Counter``/``Timer`` registry with
  scoped spans; the pool and :class:`repro.core.campaign.Campaign`
  aggregate into a per-sweep stats block.
* :mod:`repro.obs.manifest` — provenance manifests written next to
  exports and cache directories; replayable via
  :func:`~repro.obs.manifest.specs_from_manifest`.
* :mod:`repro.obs.stats` — folds an event ledger into per-runner
  p50/p95 latency, retry/timeout counts, and cache hit rates
  (``python -m repro stats``).
* :mod:`repro.obs.trace` — hierarchical spans threaded through
  ``execute()`` → worker → runner → simulation kernels, landing in the
  ledger as ``span_start``/``span_end`` events (docs/tracing.md).
* :mod:`repro.obs.calib` — paper-pinned calibration gauges scored
  against sweep outputs (``gauge`` events; docs/calibration.md).
* :mod:`repro.obs.report` — ``python -m repro report``: one
  self-contained HTML artifact per campaign.
* :mod:`repro.obs.openmetrics` — OpenMetrics textfile export of the
  gauge scoreboard for scraping.
* :mod:`repro.obs.reducers` — streaming, mergeable, memory-bounded
  accumulators (pairwise sums, moments, histograms, quantile
  sketches) for fleet-scale sweeps (docs/fleet.md).
* :mod:`repro.obs.history` — the :class:`RunArchive`: an append-only
  cross-run store every sweep/serve-drain/benchmark appends to, with
  trend extraction and change-point flags (``repro history``).
* :mod:`repro.obs.compare` — statistical diff of two archived runs
  (bootstrap latency CIs, gauge drift, cache deltas) behind
  ``repro compare``; exits non-zero past thresholds.
* :mod:`repro.obs.watch` — live terminal tail of a growing ledger or
  a serve follow stream (``repro watch``), including converging
  fleet quantiles from ``reducer_snapshot`` events.

``events``, ``metrics``, and ``trace`` are stdlib-only and import
nothing from the engine, so the engine (and the kernels) can import
them without cycles; ``manifest``, ``stats``, ``calib``, ``report``,
and ``openmetrics`` load lazily via module ``__getattr__``. See
docs/observability.md.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    EventSink,
    RecordingSink,
    iter_events,
    read_events,
)
from repro.obs.metrics import Counter, MetricsRegistry, Timer, percentile
from repro.obs.trace import Span, Tracer, activate, current_tracer, span

_LAZY = {
    "build_manifest": "repro.obs.manifest",
    "write_manifest": "repro.obs.manifest",
    "load_manifest": "repro.obs.manifest",
    "manifest_path_for": "repro.obs.manifest",
    "specs_from_manifest": "repro.obs.manifest",
    "MANIFEST_VERSION": "repro.obs.manifest",
    "aggregate_events": "repro.obs.stats",
    "aggregate_events_file": "repro.obs.stats",
    "render_stats": "repro.obs.stats",
    "GaugeSpec": "repro.obs.calib",
    "GaugeResult": "repro.obs.calib",
    "PAPER_GAUGES": "repro.obs.calib",
    "evaluate_gauges": "repro.obs.calib",
    "values_from_result": "repro.obs.calib",
    "ks_distance_to_quantiles": "repro.obs.calib",
    "PairwiseSum": "repro.obs.reducers",
    "StreamMoments": "repro.obs.reducers",
    "FixedHistogram": "repro.obs.reducers",
    "QuantileSketch": "repro.obs.reducers",
    "render_openmetrics": "repro.obs.openmetrics",
    "parse_openmetrics": "repro.obs.openmetrics",
    "build_report": "repro.obs.report",
    "render_html": "repro.obs.report",
    "write_report": "repro.obs.report",
    "RunArchive": "repro.obs.history",
    "ARCHIVE_SCHEMA": "repro.obs.history",
    "record_from_result": "repro.obs.history",
    "record_from_ledger": "repro.obs.history",
    "record_from_bench": "repro.obs.history",
    "build_history": "repro.obs.history",
    "render_history_text": "repro.obs.history",
    "render_history_html": "repro.obs.history",
    "compare_records": "repro.obs.compare",
    "render_comparison": "repro.obs.compare",
    "CompareThresholds": "repro.obs.compare",
    "WatchView": "repro.obs.watch",
    "follow_events": "repro.obs.watch",
}

__all__ = [
    "EVENT_TYPES",
    "Counter",
    "EventLog",
    "EventSink",
    "MetricsRegistry",
    "RecordingSink",
    "Span",
    "Timer",
    "Tracer",
    "activate",
    "current_tracer",
    "iter_events",
    "percentile",
    "read_events",
    "span",
] + sorted(_LAZY)


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
