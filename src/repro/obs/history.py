"""Cross-run telemetry: the append-only :class:`RunArchive`.

Every other ``repro.obs`` module sees *one* run at a time — a ledger,
a manifest, a report. The archive is the longitudinal layer on top: an
append-only on-disk store that every ``repro sweep --archive``,
``repro serve`` drain, and benchmark run appends one **run record** to,
so gauge drift, latency regressions, and BENCH_*.json trends become
data instead of something a human diffs by hand.

Layout (one directory, safe to commit or ship as a CI artifact)::

    <archive>/
      index.jsonl           # one summary line per run, append-only
      runs/<run_id>.json    # the full record (atomic tmp+rename)

The index is the cheap scan path (``repro history`` renders trends
from it alone when it can); the per-run files carry everything a
statistical diff needs — notably **per-runner duration samples**
(capped, deterministically decimated) so ``repro compare`` can
bootstrap confidence intervals months later, long after the original
ledger is gone.

Record builders:

* :func:`record_from_result` — from an in-memory
  :class:`repro.engine.pool.SweepResult` (duck-typed; this module
  never imports the engine, mirroring :mod:`repro.obs.manifest`).
* :func:`record_from_ledger` — one streaming pass over an events
  JSONL (used by ``repro serve`` at drain time and by
  ``repro sweep`` when only a ledger is at hand).
* :func:`record_from_bench` — wraps a ``BENCH_*.json`` payload so
  benchmark runs land in the same timeline.

Trend analysis (:func:`trend_series`, :func:`flag_change_points`,
:func:`sparkline`) and the ``repro history`` HTML section live here
too; thresholds and schema are documented in docs/observability.md.
"""

from __future__ import annotations

import html
import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.obs.events import iter_events
from repro.obs.metrics import percentile
from repro.obs.stats import STATS_SCHEMA, aggregate_events

PathLike = Union[str, Path]

#: Version stamped on every archived run record (top-level ``schema``).
#: Bump on any shape change; readers tolerate-and-warn on newer ones.
ARCHIVE_SCHEMA = 1

#: Per-runner duration samples kept in a record. Enough for stable
#: bootstrap CIs, small enough that a 1M-job fleet sweep archives in
#: kilobytes.
MAX_SAMPLES = 512

#: Index-line fields mirrored out of the full record (the scan path).
_INDEX_KEYS = (
    "run_id", "created", "kind", "label", "schema", "code_version",
)

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class SampleReservoir:
    """Bounded, deterministic duration-sample keeper.

    Appends are O(1); when the buffer reaches ``2 * cap`` every other
    element is dropped and the stride doubles, so the survivors are an
    evenly spaced subsample of the full stream — the same input stream
    always keeps the same samples (no RNG), which keeps archived
    records reproducible.
    """

    def __init__(self, cap: int = MAX_SAMPLES) -> None:
        self.cap = max(1, int(cap))
        self.count = 0
        self._stride = 1
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        if self.count % self._stride == 0:
            self._samples.append(float(value))
            if len(self._samples) >= 2 * self.cap:
                self._samples = self._samples[::2]
                self._stride *= 2
        self.count += 1

    def samples(self) -> List[float]:
        return list(self._samples)


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


def _make_run_id(created: datetime, kind: str) -> str:
    stamp = created.strftime("%Y%m%dT%H%M%S.%f")
    return f"{stamp}-{kind}-{os.getpid()}"


def _round6(value: float) -> float:
    return round(float(value), 6)


def _gauge_entries(gauges: Optional[Sequence[Any]]) -> List[Dict[str, Any]]:
    """Normalise gauge results (objects or dicts) into record entries."""
    entries: List[Dict[str, Any]] = []
    for gauge in gauges or ():
        if hasattr(gauge, "event_fields"):
            fields = dict(gauge.event_fields())
        else:
            fields = {k: v for k, v in dict(gauge).items() if k != "event"}
        entries.append(
            {
                key: fields[key]
                for key in ("name", "status", "measured", "target", "unit")
                if key in fields
            }
        )
    return entries


def _gauge_tally(entries: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    tally: Dict[str, int] = {}
    for entry in entries:
        status = str(entry.get("status", "?"))
        tally[status] = tally.get(status, 0) + 1
    return tally


# ---------------------------------------------------------------------------
# Record builders.
# ---------------------------------------------------------------------------

def record_from_result(
    result: Any,
    *,
    label: str,
    kind: str = "sweep",
    gauges: Optional[Sequence[Any]] = None,
    dispatch: Optional[str] = None,
    backend: Optional[str] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build an archive record from a sweep result (duck-typed).

    ``result`` is anything shaped like
    :class:`repro.engine.pool.SweepResult`: ``outcomes`` (each with
    ``spec.runner``, ``status``, ``duration_s``), ``elapsed_s``,
    ``workers``, ``stats``, ``code_version``. Per-runner duration
    samples come from the executed outcomes (cached hits have no
    latency to archive).
    """
    reservoirs: Dict[str, SampleReservoir] = {}
    per_runner: Dict[str, Dict[str, int]] = {}
    counts = {"ok": 0, "cached": 0, "failed": 0, "skipped": 0}
    for outcome in result.outcomes:
        runner = outcome.spec.runner
        bucket = per_runner.setdefault(
            runner,
            {"jobs": 0, "ok": 0, "cached": 0, "failed": 0, "skipped": 0},
        )
        bucket["jobs"] += 1
        status = outcome.status if outcome.status in counts else "failed"
        bucket[status] += 1
        counts[status] += 1
        if outcome.status in ("ok", "failed"):
            reservoirs.setdefault(runner, SampleReservoir()).add(
                outcome.duration_s
            )
    stats = getattr(result, "stats", None) or {}
    counters = stats.get("counters", {})
    runners: Dict[str, Dict[str, Any]] = {}
    for runner in sorted(per_runner):
        bucket = per_runner[runner]
        samples = (
            reservoirs[runner].samples() if runner in reservoirs else []
        )
        runners[runner] = _runner_entry(bucket, samples)
    record = {
        "schema": ARCHIVE_SCHEMA,
        "kind": kind,
        "label": label,
        "code_version": getattr(result, "code_version", None),
        "workers": int(getattr(result, "workers", 1)),
        "dispatch": dispatch,
        "backend": backend,
        "overall": {
            "jobs": len(result.outcomes),
            "ok": counts["ok"],
            "cached": counts["cached"],
            "failed": counts["failed"],
            "skipped": counts["skipped"],
            "retries": int(counters.get("retries", 0)),
            "timeouts": int(counters.get("timeouts", 0)),
            "elapsed_s": _round6(getattr(result, "elapsed_s", 0.0)),
            "cache_hit_rate": (
                counts["cached"] / len(result.outcomes)
                if result.outcomes
                else 0.0
            ),
        },
        "runners": runners,
        "gauges": _gauge_entries(gauges),
    }
    if extra:
        record["extra"] = dict(extra)
    return record


def _runner_entry(
    bucket: Mapping[str, int], samples: Sequence[float]
) -> Dict[str, Any]:
    samples = [float(s) for s in samples]
    entry: Dict[str, Any] = dict(bucket)
    entry["p50_s"] = (
        _round6(percentile(samples, 50.0)) if samples else None
    )
    entry["p95_s"] = (
        _round6(percentile(samples, 95.0)) if samples else None
    )
    entry["max_s"] = _round6(max(samples)) if samples else None
    total = bucket.get("jobs", 0)
    entry["cache_hit_rate"] = (
        bucket.get("cached", 0) / total if total else 0.0
    )
    entry["samples"] = [_round6(s) for s in samples]
    return entry


def record_from_ledger(
    path: PathLike,
    *,
    label: str,
    kind: str = "sweep",
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build an archive record from an events ledger in one pass.

    Streams the ledger (:func:`repro.obs.events.iter_events`), feeding
    the same events to :func:`~repro.obs.stats.aggregate_events` while
    siphoning off per-runner duration samples, the latest ``gauge``
    fields per name, and the engine's ``run_summary`` metadata — one
    read, bounded memory, works on multi-GB fleet ledgers.
    """
    reservoirs: Dict[str, SampleReservoir] = {}
    gauge_latest: Dict[str, Dict[str, Any]] = {}
    meta: Dict[str, Any] = {}

    def _stream() -> Iterator[Mapping[str, Any]]:
        for event in iter_events(path):
            event_kind = event.get("event")
            if event_kind == "job_end":
                runner = str(event.get("runner", "?"))
                reservoirs.setdefault(runner, SampleReservoir()).add(
                    float(event.get("duration_s", 0.0))
                )
            elif event_kind == "gauge":
                gauge_latest[str(event.get("name", "?"))] = dict(event)
            elif event_kind == "run_summary":
                for key in ("code_version", "workers", "dispatch", "backend"):
                    if event.get(key) is not None:
                        meta[key] = event[key]
            yield event

    aggregate = aggregate_events(_stream())
    overall = aggregate["overall"]
    runners: Dict[str, Dict[str, Any]] = {}
    for runner, stats in aggregate["runners"].items():
        samples = (
            reservoirs[runner].samples() if runner in reservoirs else []
        )
        bucket = {
            "jobs": stats["total"],
            "ok": stats["ok"],
            "cached": stats["cached"],
            "failed": stats["failed"],
            "skipped": stats["skipped"],
        }
        runners[runner] = _runner_entry(bucket, samples)
    gauges = _gauge_entries(
        [gauge_latest[name] for name in sorted(gauge_latest)]
    )
    record = {
        "schema": ARCHIVE_SCHEMA,
        "kind": kind,
        "label": label,
        "code_version": meta.get("code_version"),
        "workers": int(meta.get("workers", 0)) or None,
        "dispatch": meta.get("dispatch"),
        "backend": meta.get("backend"),
        "stats_schema": aggregate.get("schema", STATS_SCHEMA),
        "overall": {
            "jobs": overall["jobs"],
            "ok": overall["ok"],
            "cached": overall["cached"],
            "failed": overall["failed"],
            "skipped": overall["skipped"],
            "interrupted": overall.get("interrupted", 0),
            "retries": overall["retries"],
            "timeouts": overall["timeouts"],
            "elapsed_s": overall["elapsed_s"],
            "cache_hit_rate": overall["cache_hit_rate"],
        },
        "runners": runners,
        "gauges": gauges,
    }
    if extra:
        record["extra"] = dict(extra)
    return record


def record_from_bench(
    name: str, payload: Mapping[str, Any]
) -> Dict[str, Any]:
    """Wrap one ``BENCH_*.json`` payload as an archive record.

    The numeric ``results`` block (every baseline-gated benchmark emits
    one) is lifted to the top so trends over benchmark metrics come
    straight off the index-adjacent record without digging through the
    full payload; the payload itself is kept verbatim under ``bench``.
    """
    results = payload.get("results")
    record: Dict[str, Any] = {
        "schema": ARCHIVE_SCHEMA,
        "kind": "bench",
        "label": str(name),
        "overall": {},
        "runners": {},
        "gauges": [],
        "bench": dict(payload),
    }
    if isinstance(results, Mapping):
        record["results"] = {
            key: value
            for key, value in results.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
    return record


# ---------------------------------------------------------------------------
# The archive itself.
# ---------------------------------------------------------------------------

class RunArchive:
    """Append-only JSONL-indexed store of run records (see module doc).

    Appends are crash-tolerant the same way the event ledger is: the
    full record lands first (atomic ``tmp`` + ``rename``), then one
    index line is appended and flushed — a torn final index line is
    tolerated by the reader and the orphaned record file is harmless.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.index_path = self.root / "index.jsonl"
        self.runs_dir = self.root / "runs"

    # -- writing ---------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> str:
        """Persist one record; returns its (possibly assigned) run id."""
        record = dict(record)
        record.setdefault("schema", ARCHIVE_SCHEMA)
        created = record.get("created")
        if not created:
            now = _utc_now()
            record["created"] = now.isoformat()
        else:
            now = _utc_now()
        run_id = record.get("run_id") or _make_run_id(
            now, str(record.get("kind", "run"))
        )
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        while (self.runs_dir / f"{run_id}.json").exists():
            run_id += "x"
        record["run_id"] = run_id
        run_path = self.runs_dir / f"{run_id}.json"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.runs_dir), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, run_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        index_entry = {
            key: record.get(key) for key in _INDEX_KEYS if key in record
        }
        overall = record.get("overall") or {}
        for key in ("jobs", "ok", "failed", "cached", "elapsed_s"):
            if key in overall:
                index_entry[key] = overall[key]
        gauges = record.get("gauges") or []
        if gauges:
            index_entry["gauges"] = _gauge_tally(gauges)
        with self.index_path.open("a") as handle:
            handle.write(
                json.dumps(index_entry, separators=(",", ":")) + "\n"
            )
            handle.flush()
        return run_id

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index())

    def index(self) -> List[Dict[str, Any]]:
        """Index entries, oldest first (append order)."""
        if not self.index_path.exists():
            return []
        return [dict(entry) for entry in iter_events(self.index_path)]

    def load(self, run_id: str) -> Dict[str, Any]:
        path = self.runs_dir / f"{run_id}.json"
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in archive {self.root}")
        return json.loads(path.read_text())

    def resolve(self, ref: str) -> Dict[str, Any]:
        """Load a record by id, unique prefix, or ``last[~N]``.

        ``last`` is the newest run, ``last~1`` the one before it, and
        so on (mirroring git's revision syntax). A path to a record
        JSON file also resolves, so un-archived records can be
        compared directly.
        """
        as_path = Path(ref)
        if as_path.suffix == ".json" and as_path.exists():
            return json.loads(as_path.read_text())
        entries = self.index()
        if ref == "last" or ref.startswith("last~"):
            back = 0
            if ref.startswith("last~"):
                try:
                    back = int(ref[len("last~"):])
                except ValueError:
                    raise KeyError(f"bad run reference {ref!r}") from None
            if back < 0 or back >= len(entries):
                raise KeyError(
                    f"{ref!r} is out of range: archive has "
                    f"{len(entries)} run(s)"
                )
            return self.load(str(entries[-(back + 1)]["run_id"]))
        ids = [str(entry["run_id"]) for entry in entries]
        if ref in ids:
            return self.load(ref)
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if len(matches) == 1:
            return self.load(matches[0])
        if len(matches) > 1:
            raise KeyError(
                f"run reference {ref!r} is ambiguous: "
                f"{', '.join(matches[:4])}..."
            )
        raise KeyError(f"no run matching {ref!r} in archive {self.root}")

    def records(self) -> Iterator[Dict[str, Any]]:
        """Full records, oldest first (streams one at a time)."""
        for entry in self.index():
            yield self.load(str(entry["run_id"]))


# ---------------------------------------------------------------------------
# Trends, change points, sparklines.
# ---------------------------------------------------------------------------

def trend_series(
    entries: Sequence[Mapping[str, Any]], key: str
) -> List[Optional[float]]:
    """Extract one numeric series (None where a run lacks the key)."""
    series: List[Optional[float]] = []
    for entry in entries:
        value = entry.get(key)
        series.append(
            float(value)
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            else None
        )
    return series


def flag_change_points(
    values: Sequence[Optional[float]],
    ratio: float = 1.5,
    window: int = 5,
) -> List[int]:
    """Indices where a series jumps vs its trailing median.

    A point is a change point when it differs from the median of the
    up-to-``window`` preceding non-null points by more than ``ratio``×
    in either direction (both must be positive for a ratio to mean
    anything; zero/None points are skipped). Deliberately simple and
    deterministic — a trend flag for the HTML/terminal history view,
    not a test statistic.
    """
    flagged: List[int] = []
    seen: List[float] = []
    for i, value in enumerate(values):
        if value is None:
            continue
        if seen:
            tail = seen[-window:]
            baseline = percentile(tail, 50.0)
            if baseline > 0 and value > 0:
                if value > ratio * baseline or value < baseline / ratio:
                    flagged.append(i)
        seen.append(value)
    return flagged


def sparkline(values: Sequence[Optional[float]]) -> str:
    """A unicode block sparkline (``·`` where a value is missing)."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    chars: List[str] = []
    for value in values:
        if value is None:
            chars.append("·")
        elif span <= 0:
            chars.append(_SPARK_BLOCKS[3])
        else:
            idx = int((value - lo) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[idx])
    return "".join(chars)


def build_history(
    archive: RunArchive, limit: int = 50
) -> Dict[str, Any]:
    """Fold the archive into the history model (trends + flags).

    Uses the index scan for overall trends and loads full records only
    for the covered window (per-runner p50 and bench metrics live in
    the records, not the index).
    """
    entries = archive.index()[-limit:]
    records = [archive.load(str(entry["run_id"])) for entry in entries]
    sweeps = [r for r in records if r.get("kind") != "bench"]
    benches = [r for r in records if r.get("kind") == "bench"]

    trends: List[Dict[str, Any]] = []

    def _add_trend(name: str, values: List[Optional[float]], unit: str) -> None:
        if not any(v is not None for v in values):
            return
        trends.append(
            {
                "name": name,
                "unit": unit,
                "values": values,
                "change_points": flag_change_points(values),
                "spark": sparkline(values),
            }
        )

    if sweeps:
        overalls = [r.get("overall", {}) for r in sweeps]
        _add_trend("elapsed_s", trend_series(overalls, "elapsed_s"), "s")
        _add_trend(
            "cache_hit_rate", trend_series(overalls, "cache_hit_rate"), ""
        )
        _add_trend("failed", trend_series(overalls, "failed"), "jobs")
        runner_names = sorted(
            {name for r in sweeps for name in (r.get("runners") or {})}
        )
        for runner in runner_names:
            values = [
                (r.get("runners") or {}).get(runner, {}).get("p50_s")
                for r in sweeps
            ]
            _add_trend(
                f"{runner} p50",
                [v if isinstance(v, (int, float)) else None for v in values],
                "s",
            )
    bench_labels = sorted({str(r.get("label")) for r in benches})
    for label in bench_labels:
        rows = [r for r in benches if str(r.get("label")) == label]
        metric_names = sorted(
            {key for r in rows for key in (r.get("results") or {})}
        )
        for metric in metric_names:
            values = [
                (r.get("results") or {}).get(metric) for r in rows
            ]
            _add_trend(
                f"{label}:{metric}",
                [v if isinstance(v, (int, float)) else None for v in values],
                "",
            )
    gauge_fails = []
    for record in sweeps:
        tally = _gauge_tally(record.get("gauges") or [])
        gauge_fails.append(float(tally.get("fail", 0)))
    if sweeps:
        _add_trend("gauge failures", gauge_fails, "gauges")
    return {
        "entries": entries,
        "n_runs": len(entries),
        "n_sweeps": len(sweeps),
        "n_benches": len(benches),
        "trends": trends,
    }


def render_history_text(model: Mapping[str, Any]) -> str:
    """Terminal rendering: one sparkline row per trend, flags called out."""
    lines = [
        "{n_runs} run(s) in archive window: {n_sweeps} sweep(s), "
        "{n_benches} benchmark(s)".format(**model)
    ]
    trends = model["trends"]
    if not trends:
        lines.append("no numeric trends yet (need at least one run)")
        return "\n".join(lines)
    width = max(len(t["name"]) for t in trends)
    for trend in trends:
        values = [v for v in trend["values"] if v is not None]
        last = values[-1] if values else None
        last_s = "n/a" if last is None else f"{last:g}"
        flag = ""
        if trend["change_points"]:
            flag = (
                "  ⚑ change at run "
                + ",".join(str(i) for i in trend["change_points"])
            )
        lines.append(
            f"{trend['name'].ljust(width)}  {trend['spark']}  "
            f"last={last_s}{trend['unit']}{flag}"
        )
    return "\n".join(lines)


def render_history_html(
    model: Mapping[str, Any], title: str = "repro history"
) -> str:
    """A self-contained HTML page: run table + trend charts.

    Reuses the ``repro report`` stylesheet so the two artifacts read
    as one family; every chart is inline SVG from
    :mod:`repro.viz.svg`.
    """
    from repro.obs.report import _CSS
    from repro.viz.svg import Chart, Series

    sections: List[str] = [f"<h1>{html.escape(title)}</h1>"]
    sections.append(
        '<div class="counters">'
        f"<span><b>{model['n_runs']}</b> runs</span>"
        f"<span><b>{model['n_sweeps']}</b> sweeps</span>"
        f"<span><b>{model['n_benches']}</b> benchmarks</span>"
        "</div>"
    )
    entries = model["entries"]
    if entries:
        rows = [
            "<tr><th>#</th><th>run</th><th>kind</th><th>label</th>"
            "<th>jobs</th><th>failed</th><th>elapsed</th>"
            "<th>gauges</th></tr>"
        ]
        for i, entry in enumerate(entries):
            gauges = entry.get("gauges") or {}
            gauge_s = (
                ", ".join(
                    f"{count} {status}"
                    for status, count in sorted(gauges.items())
                )
                or "—"
            )
            elapsed = entry.get("elapsed_s")
            rows.append(
                "<tr>"
                f"<td class='num'>{i}</td>"
                f"<td>{html.escape(str(entry.get('run_id', '?')))}</td>"
                f"<td>{html.escape(str(entry.get('kind', '?')))}</td>"
                f"<td>{html.escape(str(entry.get('label', '')))}</td>"
                f"<td class='num'>{entry.get('jobs', '—')}</td>"
                f"<td class='num'>{entry.get('failed', '—')}</td>"
                f"<td class='num'>"
                f"{'—' if elapsed is None else f'{elapsed:.2f}s'}</td>"
                f"<td>{html.escape(gauge_s)}</td>"
                "</tr>"
            )
        sections.append("<h2>Runs (oldest first)</h2>")
        sections.append("<table>" + "".join(rows) + "</table>")
    for trend in model["trends"]:
        points = [
            (i, v) for i, v in enumerate(trend["values"]) if v is not None
        ]
        if len(points) < 2:
            continue
        chart = Chart(
            title=trend["name"],
            x_label="run (archive order)",
            y_label=trend["unit"] or "value",
            width=640,
            height=240,
        )
        chart.add(
            Series(
                label=trend["name"],
                x=[float(i) for i, _ in points],
                y=[float(v) for _, v in points],
            )
        )
        flagged = trend["change_points"]
        if flagged:
            chart.add(
                Series(
                    label="change point",
                    x=[float(i) for i in flagged],
                    y=[
                        float(trend["values"][i])
                        for i in flagged
                        if trend["values"][i] is not None
                    ],
                    kind="scatter",
                    color="#d62728",
                )
            )
        sections.append(chart.to_svg())
        if flagged:
            sections.append(
                f'<p class="note">change point(s) at run '
                f"{', '.join(str(i) for i in flagged)} "
                f"(&gt;1.5× vs trailing median)</p>"
            )
    if not model["trends"]:
        sections.append(
            '<p class="note">No numeric trends yet — archive at least '
            "one sweep or benchmark run.</p>"
        )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(sections)
        + "\n</body></html>\n"
    )


__all__ = [
    "ARCHIVE_SCHEMA",
    "MAX_SAMPLES",
    "RunArchive",
    "SampleReservoir",
    "build_history",
    "flag_change_points",
    "record_from_bench",
    "record_from_ledger",
    "record_from_result",
    "render_history_html",
    "render_history_text",
    "sparkline",
    "trend_series",
]
