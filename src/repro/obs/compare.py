"""``repro compare``: the statistical diff between two archived runs.

Given two :mod:`repro.obs.history` records (baseline ``A``, candidate
``B``), :func:`compare_records` produces a verdict a CI gate can act
on:

* **per-runner latency ratios** — p50(B)/p50(A) with a bootstrap
  confidence interval over the archived duration samples. The
  bootstrap is deterministic (seeded from the runner name), so the
  same two records always compare identically. A runner regresses
  when its point ratio exceeds ``p50_ratio`` (default 2×); when both
  sides archived enough samples the CI tightens the call — a ratio
  whose CI still straddles 1.0 is reported but marked unconfirmed.
* **gauge drift** — a gauge that flipped from pass/warn to ``fail``
  between A and B is a regression; measured-value drift is reported
  either way.
* **cache-behaviour deltas** — hit-rate drop beyond
  ``cache_hit_drop`` and newly appearing failures/timeouts.

``repro compare`` exits non-zero exactly when ``regressions`` is
non-empty (bit-identical reruns compare clean by construction: every
ratio is 1.0 and no gauge flips). Records written by a *newer* archive
schema are tolerated with a warning — the fields this module reads are
append-only by convention — so old binaries can still gate against new
archives (satellite: versioned aggregates).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.history import ARCHIVE_SCHEMA
from repro.obs.metrics import percentile
from repro.obs.stats import STATS_SCHEMA

#: Bootstrap resamples per runner. Enough for a stable 95% interval
#: over <=512 archived samples, cheap enough to run in a CI gate.
BOOTSTRAP_ROUNDS = 400

#: Minimum samples per side before a CI is computed at all.
MIN_SAMPLES_FOR_CI = 5


@dataclass(frozen=True)
class CompareThresholds:
    """Knobs for when a delta becomes a *regression*.

    ``p50_ratio``: candidate/baseline p50 beyond this is a latency
    regression (default 2× — the acceptance gate from ISSUE 10).
    ``cache_hit_drop``: absolute hit-rate drop (0..1) that counts as a
    cache regression. ``gauge_fail``: whether a gauge flipping to
    ``fail`` trips the gate. ``new_failures``: whether failed/timeout
    counts rising from zero trips it.
    """

    p50_ratio: float = 2.0
    cache_hit_drop: float = 0.25
    gauge_fail: bool = True
    new_failures: bool = True


def _check_schema(record: Mapping[str, Any], which: str) -> None:
    schema = record.get("schema")
    if schema is not None and schema > ARCHIVE_SCHEMA:
        warnings.warn(
            f"run {which} was archived with schema {schema} "
            f"(this build knows {ARCHIVE_SCHEMA}); comparing "
            "best-effort on the shared fields",
            RuntimeWarning,
            stacklevel=3,
        )
    stats_schema = record.get("stats_schema")
    if stats_schema is not None and stats_schema > STATS_SCHEMA:
        warnings.warn(
            f"run {which} carries stats schema {stats_schema} "
            f"(this build knows {STATS_SCHEMA}); aggregate fields "
            "may be incomplete",
            RuntimeWarning,
            stacklevel=3,
        )


def _bootstrap_ratio_ci(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    rounds: int = BOOTSTRAP_ROUNDS,
    seed: str = "",
) -> Optional[Dict[str, float]]:
    """95% bootstrap CI for p50(B)/p50(A); None when underpowered.

    Seeded from ``seed`` (the runner name) via Python's deterministic
    str-seeding, so re-running the comparison — any machine, any
    PYTHONHASHSEED — reproduces the interval bit for bit.
    """
    if (
        len(samples_a) < MIN_SAMPLES_FOR_CI
        or len(samples_b) < MIN_SAMPLES_FOR_CI
    ):
        return None
    rng = random.Random(f"repro.compare:{seed}")
    ratios: List[float] = []
    n_a, n_b = len(samples_a), len(samples_b)
    for _ in range(rounds):
        res_a = [samples_a[rng.randrange(n_a)] for _ in range(n_a)]
        res_b = [samples_b[rng.randrange(n_b)] for _ in range(n_b)]
        p50_a = percentile(res_a, 50.0)
        if p50_a <= 0:
            continue
        ratios.append(percentile(res_b, 50.0) / p50_a)
    if not ratios:
        return None
    return {
        "low": round(percentile(ratios, 2.5), 4),
        "high": round(percentile(ratios, 97.5), 4),
    }


def _runner_diffs(
    record_a: Mapping[str, Any],
    record_b: Mapping[str, Any],
    thresholds: CompareThresholds,
) -> Dict[str, Dict[str, Any]]:
    runners_a = record_a.get("runners") or {}
    runners_b = record_b.get("runners") or {}
    diffs: Dict[str, Dict[str, Any]] = {}
    for runner in sorted(set(runners_a) | set(runners_b)):
        entry_a = runners_a.get(runner) or {}
        entry_b = runners_b.get(runner) or {}
        p50_a = entry_a.get("p50_s")
        p50_b = entry_b.get("p50_s")
        diff: Dict[str, Any] = {
            "p50_a": p50_a,
            "p50_b": p50_b,
            "only_in": (
                "b" if runner not in runners_a
                else "a" if runner not in runners_b
                else None
            ),
        }
        ratio = None
        if p50_a and p50_b and p50_a > 0:
            ratio = p50_b / p50_a
            diff["ratio"] = round(ratio, 4)
            ci = _bootstrap_ratio_ci(
                entry_a.get("samples") or [],
                entry_b.get("samples") or [],
                seed=runner,
            )
            if ci is not None:
                diff["ci"] = ci
            regressed = ratio > thresholds.p50_ratio
            diff["regression"] = regressed
            if regressed:
                # A CI that still straddles 1.0 means the point ratio
                # may be noise; the regression stands (the gate errs
                # loud) but is flagged unconfirmed for the human.
                diff["confirmed"] = ci is None or ci["low"] > 1.0
        else:
            diff["regression"] = False
        diffs[runner] = diff
    return diffs


def _gauge_diffs(
    record_a: Mapping[str, Any], record_b: Mapping[str, Any]
) -> Dict[str, Dict[str, Any]]:
    def _by_name(record: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        return {
            str(g.get("name", "?")): dict(g)
            for g in record.get("gauges") or []
        }

    gauges_a = _by_name(record_a)
    gauges_b = _by_name(record_b)
    diffs: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(gauges_a) | set(gauges_b)):
        entry_a = gauges_a.get(name) or {}
        entry_b = gauges_b.get(name) or {}
        status_a = entry_a.get("status")
        status_b = entry_b.get("status")
        measured_a = entry_a.get("measured")
        measured_b = entry_b.get("measured")
        drift = None
        if isinstance(measured_a, (int, float)) and isinstance(
            measured_b, (int, float)
        ):
            drift = round(float(measured_b) - float(measured_a), 6)
        diffs[name] = {
            "status_a": status_a,
            "status_b": status_b,
            "measured_a": measured_a,
            "measured_b": measured_b,
            "drift": drift,
            "target": entry_b.get("target", entry_a.get("target")),
            "flipped_to_fail": (
                status_b == "fail" and status_a in ("pass", "warn")
            ),
        }
    return diffs


def compare_records(
    record_a: Mapping[str, Any],
    record_b: Mapping[str, Any],
    thresholds: Optional[CompareThresholds] = None,
) -> Dict[str, Any]:
    """Diff two archive records; see the module doc for semantics.

    Returns a plain-JSON comparison with a ``regressions`` list —
    empty exactly when the gate should pass.
    """
    thresholds = thresholds or CompareThresholds()
    _check_schema(record_a, "A")
    _check_schema(record_b, "B")
    overall_a = record_a.get("overall") or {}
    overall_b = record_b.get("overall") or {}
    runners = _runner_diffs(record_a, record_b, thresholds)
    gauges = _gauge_diffs(record_a, record_b)
    hit_a = float(overall_a.get("cache_hit_rate", 0.0) or 0.0)
    hit_b = float(overall_b.get("cache_hit_rate", 0.0) or 0.0)
    cache = {
        "hit_rate_a": round(hit_a, 4),
        "hit_rate_b": round(hit_b, 4),
        "delta": round(hit_b - hit_a, 4),
    }
    counts = {}
    for key in ("failed", "skipped", "retries", "timeouts", "interrupted"):
        value_a = int(overall_a.get(key, 0) or 0)
        value_b = int(overall_b.get(key, 0) or 0)
        counts[key] = {"a": value_a, "b": value_b, "delta": value_b - value_a}

    regressions: List[str] = []
    for runner, diff in runners.items():
        if diff.get("regression"):
            ci = diff.get("ci")
            ci_s = (
                f" (95% CI {ci['low']:.2f}–{ci['high']:.2f})" if ci else ""
            )
            tag = "" if diff.get("confirmed", True) else " [unconfirmed]"
            regressions.append(
                f"runner {runner}: p50 {diff['p50_a']:.4f}s → "
                f"{diff['p50_b']:.4f}s, ratio {diff['ratio']:.2f}x > "
                f"{thresholds.p50_ratio:g}x{ci_s}{tag}"
            )
    if thresholds.gauge_fail:
        for name, diff in gauges.items():
            if diff["flipped_to_fail"]:
                regressions.append(
                    f"gauge {name}: {diff['status_a']} → fail "
                    f"(measured {diff['measured_a']} → "
                    f"{diff['measured_b']})"
                )
    if hit_a - hit_b > thresholds.cache_hit_drop:
        regressions.append(
            f"cache hit rate dropped {hit_a:.0%} → {hit_b:.0%} "
            f"(more than {thresholds.cache_hit_drop:.0%})"
        )
    if thresholds.new_failures:
        for key in ("failed", "timeouts", "interrupted"):
            if counts[key]["a"] == 0 and counts[key]["b"] > 0:
                regressions.append(
                    f"{counts[key]['b']} new {key} job event(s) "
                    "(baseline had none)"
                )
    return {
        "a": {
            "run_id": record_a.get("run_id"),
            "label": record_a.get("label"),
            "created": record_a.get("created"),
        },
        "b": {
            "run_id": record_b.get("run_id"),
            "label": record_b.get("label"),
            "created": record_b.get("created"),
        },
        "runners": runners,
        "gauges": gauges,
        "cache": cache,
        "counts": counts,
        "regressions": regressions,
        "ok": not regressions,
    }


def render_comparison(comparison: Mapping[str, Any]) -> str:
    """Terminal rendering of one :func:`compare_records` result."""
    a, b = comparison["a"], comparison["b"]
    lines = [
        f"compare {a.get('run_id') or a.get('label') or 'A'} → "
        f"{b.get('run_id') or b.get('label') or 'B'}"
    ]
    runners = comparison["runners"]
    shown = {
        name: diff
        for name, diff in runners.items()
        if diff.get("ratio") is not None or diff.get("only_in")
    }
    if shown:
        lines.append("")
        lines.append("runner latency (p50 B/A):")
        for name, diff in shown.items():
            if diff.get("only_in"):
                lines.append(
                    f"  {name}: only in run "
                    f"{diff['only_in'].upper()}"
                )
                continue
            ci = diff.get("ci")
            ci_s = (
                f"  CI [{ci['low']:.2f}, {ci['high']:.2f}]" if ci else ""
            )
            mark = "  << REGRESSION" if diff.get("regression") else ""
            lines.append(
                f"  {name}: {diff['p50_a']:.4f}s → {diff['p50_b']:.4f}s "
                f"({diff['ratio']:.2f}x){ci_s}{mark}"
            )
    gauge_lines = []
    for name, diff in comparison["gauges"].items():
        if diff["status_a"] == diff["status_b"] and not diff.get("drift"):
            continue
        mark = "  << REGRESSION" if diff["flipped_to_fail"] else ""
        drift = diff.get("drift")
        drift_s = f" (drift {drift:+g})" if drift else ""
        gauge_lines.append(
            f"  {name}: {diff['status_a']} → {diff['status_b']}"
            f"{drift_s}{mark}"
        )
    if gauge_lines:
        lines.append("")
        lines.append("gauges:")
        lines.extend(gauge_lines)
    cache = comparison["cache"]
    lines.append("")
    lines.append(
        f"cache hit rate: {cache['hit_rate_a']:.0%} → "
        f"{cache['hit_rate_b']:.0%} ({cache['delta']:+.0%})"
    )
    counts = comparison["counts"]
    count_bits = [
        f"{key} {entry['a']}→{entry['b']}"
        for key, entry in counts.items()
        if entry["delta"]
    ]
    if count_bits:
        lines.append("count deltas: " + ", ".join(count_bits))
    lines.append("")
    if comparison["regressions"]:
        lines.append(f"REGRESSED ({len(comparison['regressions'])}):")
        lines.extend(f"  - {reason}" for reason in comparison["regressions"])
    else:
        lines.append("no regressions past thresholds")
    return "\n".join(lines)


__all__ = [
    "BOOTSTRAP_ROUNDS",
    "CompareThresholds",
    "compare_records",
    "render_comparison",
]
