"""Structured event stream: the engine's append-only run ledger.

The scenario engine narrates a sweep as a flat sequence of typed
events (:data:`EVENT_TYPES`): one ``sweep_start``/``sweep_end`` pair
per :func:`repro.engine.pool.execute` call, ``job_start``/``job_end``
per executed job (with ``job_retry``/``job_timeout`` in between when
attempts fail, ``job_timeout_unenforced`` when a budget exists but no
enforcement mechanism does, and ``job_skipped`` for jobs shed past
``max_failures``), and ``cache_hit``/``cache_put``/
``cache_quarantine``/``cache_put_error``/``cache_evict`` from the
result cache. The ``repro.serve`` job server appends its own
``serve_*`` lifecycle events to the same JSONL wire format (see
``repro.serve.server.SERVE_EVENT_TYPES``). With tracing on
(:mod:`repro.obs.trace`), ``span_start``/``span_end`` pairs record the
hierarchical timing inside the sweep and each job, and calibration
gauges (:mod:`repro.obs.calib`) land as ``gauge`` events. Each event
carries a monotonic timestamp and a per-log sequence number, so
ordering survives even sub-millisecond bursts.

Sinks implement one method, :meth:`EventSink.emit`; the engine guards
every emission site with ``if events is not None`` so a disabled
ledger costs nothing. :class:`EventLog` appends JSON Lines to disk
(one flushed line per event — a crashed sweep keeps everything emitted
so far); :class:`RecordingSink` keeps events in memory for tests and
ad-hoc inspection. Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: Every event type the engine emits (see docs/observability.md for
#: the per-type field schema).
EVENT_TYPES = frozenset(
    {
        "sweep_start",
        "sweep_end",
        "job_start",
        "job_retry",
        "job_timeout",
        "job_timeout_unenforced",
        "job_end",
        "job_skipped",
        "cache_hit",
        "cache_put",
        "cache_quarantine",
        "cache_put_error",
        "cache_evict",
        "span_start",
        "span_end",
        "gauge",
        "run_summary",
        "reducer_snapshot",
    }
)


class EventSink:
    """Receiver interface for engine events; the base class discards."""

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event. ``fields`` must be JSON-serialisable."""

    def close(self) -> None:
        """Release any resources; emitting after close is an error."""


class RecordingSink(EventSink):
    """Keeps emitted events as dicts in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"event": event}
        record.update(fields)
        self.events.append(record)

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["event"] == event]


class EventLog(EventSink):
    """Appends one JSON line per event to ``path``.

    Lines look like ``{"event": "job_end", "seq": 7, "t": 12.04, ...}``
    where ``t`` is :func:`time.monotonic` (comparable *within* one
    process; use ``seq`` to order across restarts) and ``seq`` is a
    per-log counter. The file is opened lazily in append mode, so
    several sweeps can share one ledger, and every line is flushed as
    it is written.

    Durability: the per-line ``flush()`` hands each event to the
    kernel, so a crashed *process* keeps everything emitted so far —
    at worst the final line is torn, which :func:`read_events`
    tolerates. Surviving a crashed *machine* (power loss) additionally
    needs ``fsync=True``, which fsyncs after every line; that is one
    disk round-trip per event, easily 10-100x slower on spinning
    rust, so it is off by default — sweeps are cheap to re-run from
    the cache, ledgers are telemetry, not transactions.

    ``faults`` accepts a :class:`repro.faults.FaultPlan` (wired by
    ``execute``); a ``ledger_tear`` fault writes half of one line and
    then drops every later event, simulating a writer killed
    mid-append.
    """

    def __init__(
        self,
        path: PathLike,
        clock=time.monotonic,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()
        self._handle = None
        self.faults: Optional[Any] = None
        self._dead = False

    def emit(self, event: str, **fields: Any) -> None:
        with self._lock:
            if self._dead:
                return
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a")
            self._seq += 1
            record: Dict[str, Any] = {
                "event": event,
                "seq": self._seq,
                "t": round(float(self._clock()), 6),
            }
            record.update(fields)
            line = (
                json.dumps(record, separators=(",", ":"), allow_nan=False)
                + "\n"
            )
            if self.faults is not None and self.faults.decide(
                "ledger_tear", index=self._seq
            ):
                # Simulate the writer dying mid-append: half a line
                # reaches the disk, nothing after it ever does.
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                self._dead = True
                return
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def events(self) -> List[Dict[str, Any]]:
        """Read the ledger back (flushes pending writes first)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        return read_events(self.path)


def iter_events(path: PathLike) -> "Iterator[Dict[str, Any]]":
    """Stream a JSONL event file one event at a time.

    Same contract as :func:`read_events` — a torn *final* line (writer
    killed mid-append) is dropped with a single ``RuntimeWarning``, a
    malformed line anywhere else raises ``ValueError`` — but events
    are yielded as they are parsed instead of materialised into a
    list, so a multi-gigabyte fleet ledger never lives in the parent's
    RSS. Because a generator cannot know a line is final until it sees
    EOF, an unparseable line is *held back* one step: if another line
    follows, the held line was mid-file and the ledger is corrupt; if
    EOF follows, it was the torn tail and is dropped with the warning.
    """
    path = Path(path)
    with path.open("r") as handle:
        bad_lineno: Optional[int] = None
        for lineno, raw in enumerate(handle, start=1):
            if bad_lineno is not None:
                raise ValueError(
                    f"{path}: malformed event on line {bad_lineno}"
                ) from None
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                bad_lineno = lineno
                continue
            yield event
        if bad_lineno is not None:
            warnings.warn(
                f"{path}: dropping torn final event on line "
                f"{bad_lineno} (writer likely died mid-append)",
                RuntimeWarning,
                stacklevel=2,
            )


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a JSONL event file; a trailing partial line is skipped.

    A torn final line happens when a sweep is killed mid-write; every
    complete line before it is still valid, so it is dropped — with a
    ``RuntimeWarning`` naming the line, so silent data loss is never
    *silent* — rather than poisoning the whole ledger. A malformed
    line anywhere *else* is a corrupt file and raises ``ValueError``.
    Materialises the whole ledger; prefer :func:`iter_events` when a
    single pass is enough.
    """
    return list(iter_events(path))
