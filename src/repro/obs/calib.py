"""Paper-pinned calibration gauges: is the simulated 5G still the paper's?

The reproduction's claim to validity is that its simulated
RSRP/throughput/RTT/power distributions stay pinned to the SIGCOMM '21
measurements (peak ~3.1 Gbps mmWave DL, ~6 ms RTT floor, the Table 2
RRC power rows, ...). This module makes that comparison a declarative,
continuously-watched surface instead of a one-off test: each
:class:`GaugeSpec` names a paper figure/table, a target value, and an
extractor from a runner's output; :func:`evaluate_gauges` scores a
sweep's outcomes into pass/warn/fail :class:`GaugeResult` records.

Two distance modes:

* ``"rel"`` — relative error ``|measured - target| / |target|``
  against a scalar paper value (peaks, floors, power rows);
* ``"abs"`` — absolute error ``|measured - target|``, used both for
  dBm-scale medians and for distribution gauges, where *measured* is
  already a Kolmogorov-Smirnov distance against pinned reference
  quantiles (:func:`ks_distance_to_quantiles`) and *target* is 0.

Results are emitted into the run ledger as ``gauge`` events (see
``repro sweep --gauges`` / ``repro report``) and exported as an
OpenMetrics textfile (:mod:`repro.obs.openmetrics`) for scraping.

Targets can be overridden from a JSON file
(``{"gauge-name": {"target": ..., "warn": ..., "fail": ...}}``) —
that is the mis-calibration fixture mechanism: point ``--gauges`` at a
file with a wrong target and the corresponding gauge must flip to
fail, proving the alarm path end to end.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "GaugeSpec",
    "GaugeResult",
    "PAPER_GAUGES",
    "evaluate_gauges",
    "values_from_result",
    "ks_distance_to_quantiles",
    "histogram_ks_to_quantiles",
    "score_value",
    "load_overrides",
    "apply_overrides",
    "rescore",
]


# ---------------------------------------------------------------------------
# Scoring primitives.
# ---------------------------------------------------------------------------

def score_value(
    measured: float, target: float, warn: float, fail: float, mode: str = "rel"
) -> Dict[str, Any]:
    """Score one measurement against its target.

    Returns ``{"err": ..., "status": "pass" | "warn" | "fail"}``.
    ``mode="rel"`` uses relative error (target must be nonzero);
    ``mode="abs"`` uses absolute error. A non-finite measurement is an
    automatic fail.
    """
    if mode not in ("rel", "abs"):
        raise ValueError(f"unknown gauge mode {mode!r}")
    measured = float(measured)
    target = float(target)
    if not np.isfinite(measured):
        return {"err": float("inf"), "status": "fail"}
    if mode == "rel":
        if target == 0.0:
            raise ValueError("rel mode needs a nonzero target; use abs")
        err = abs(measured - target) / abs(target)
    else:
        err = abs(measured - target)
    if err <= warn:
        status = "pass"
    elif err <= fail:
        status = "warn"
    else:
        status = "fail"
    return {"err": float(err), "status": status}


def ks_distance_to_quantiles(
    sample: Sequence[float],
    q_levels: Sequence[float],
    q_values: Sequence[float],
) -> float:
    """Kolmogorov-Smirnov distance of ``sample`` vs pinned quantiles.

    The reference CDF is the piecewise-linear interpolation through
    ``(q_values, q_levels/100)`` — the form a paper's published
    percentile table pins down — clamped to [0, 1] outside the pinned
    range. Returns ``sup |F_emp - F_ref|`` evaluated at the sample
    points (both one-sided limits of the empirical step function).
    """
    sample = np.sort(np.asarray(sample, dtype=float))
    n = sample.size
    if n == 0:
        raise ValueError("sample must be non-empty")
    levels = np.asarray(q_levels, dtype=float) / 100.0
    values = np.asarray(q_values, dtype=float)
    if levels.shape != values.shape or levels.size < 2:
        raise ValueError("need >= 2 matching quantile levels/values")
    ref = np.interp(sample, values, levels, left=0.0, right=1.0)
    emp_hi = np.arange(1, n + 1, dtype=float) / n
    emp_lo = np.arange(0, n, dtype=float) / n
    return float(
        np.max(np.maximum(np.abs(emp_hi - ref), np.abs(emp_lo - ref)))
    )


# ---------------------------------------------------------------------------
# Declarative gauge registry.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GaugeSpec:
    """One paper-pinned calibration check.

    ``extract`` maps the named runner's output value to the measured
    scalar (for KS gauges, the KS distance itself — ``target`` is then
    0.0 and ``mode`` is ``"abs"``).
    """

    name: str
    runner: str
    paper_ref: str
    description: str
    unit: str
    target: float
    warn: float
    fail: float
    extract: Callable[[Any], float]
    mode: str = "rel"


@dataclass
class GaugeResult:
    """A scored gauge: the spec's identity plus measured/err/status.

    ``status`` is ``pass``/``warn``/``fail``, or ``skipped`` when the
    sweep did not run the gauge's runner (no measurement to score).
    """

    name: str
    runner: str
    paper_ref: str
    description: str
    unit: str
    target: float
    warn: float
    fail: float
    mode: str
    status: str
    measured: Optional[float] = None
    err: Optional[float] = None
    detail: str = ""

    def event_fields(self) -> Dict[str, Any]:
        """Fields for the ledger's ``gauge`` event (JSON-safe)."""
        fields: Dict[str, Any] = {
            "name": self.name,
            "runner": self.runner,
            "paper_ref": self.paper_ref,
            "description": self.description,
            "unit": self.unit,
            "target": self.target,
            "warn": self.warn,
            "fail": self.fail,
            "mode": self.mode,
            "status": self.status,
        }
        if self.measured is not None and np.isfinite(self.measured):
            fields["measured"] = round(float(self.measured), 6)
        if self.err is not None and np.isfinite(self.err):
            fields["err"] = round(float(self.err), 6)
        if self.detail:
            fields["detail"] = self.detail
        return fields


# -- extractors (tolerant of JSON round-tripped cache values) --------------

def _rtt_points(result: Any, key: str) -> np.ndarray:
    points = result["series"][key]
    return np.asarray([[float(p[0]), float(p[1])] for p in points])


def _rtt_floor(key: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        return float(np.min(_rtt_points(result, key)[:, 1]))

    return extract


def _rtt_slope(result: Any) -> float:
    points = _rtt_points(result, "verizon-nsa-mmwave")
    return float(np.polyfit(points[:, 0], points[:, 1], 1)[0])


def _walk_series(result: Any, field: str) -> np.ndarray:
    return np.asarray(result["scatter"][field], dtype=float)


#: Pinned deciles of the Fig. 13 walking-loop RSRP distribution
#: (dBm at cumulative probability levels, percent).
WALK_RSRP_LEVELS = (5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0)
WALK_RSRP_DBM = (-101.87, -96.72, -91.36, -86.02, -80.01, -74.16, -70.57)


def _walk_rsrp_ks(result: Any) -> float:
    return ks_distance_to_quantiles(
        _walk_series(result, "rsrp_dbm"), WALK_RSRP_LEVELS, WALK_RSRP_DBM
    )


def _walk_rsrp_median(result: Any) -> float:
    return float(np.median(_walk_series(result, "rsrp_dbm")))


def _walk_power_per_mbps(result: Any) -> float:
    rsrp = _walk_series(result, "rsrp_dbm")
    power = _walk_series(result, "power_mw")
    tput = _walk_series(result, "throughput_mbps")
    good = rsrp >= -80.0
    if not np.any(good):
        return float("nan")
    return float(np.mean(power[good]) / np.mean(tput[good]))


def _peak(field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        return float(max(float(row[field]) for row in result["rows"]))

    return extract


def _peak_nested(branch: str, field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        return float(
            max(float(row[field]) for row in result[branch]["rows"])
        )

    return extract


def _handoff_count(configuration: str, field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        for row in result["rows"]:
            if row["configuration"] == configuration:
                return float(row[field])
        raise KeyError(f"no handoff row for configuration {configuration!r}")

    return extract


def _power_row(network: str, field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        for row in result["rows"]:
            if row["network"] == network:
                return float(row[field])
        raise KeyError(f"no power row for network {network!r}")

    return extract


def histogram_ks_to_quantiles(
    hist_state: Mapping[str, Any],
    q_levels: Sequence[float],
    q_values: Sequence[float],
) -> float:
    """KS distance of a :class:`FixedHistogram` state vs pinned quantiles.

    Fleet sweeps never keep per-sample series, so the empirical CDF is
    reconstructed from the fixed-bin histogram with mass spread
    uniformly within each bin, then compared to the pinned
    ``(q_values, q_levels/100)`` table at the pinned values. With 0.5 dB
    bins the reconstruction error is well under the gauge's warn band.
    """
    counts = np.asarray(hist_state["counts"], dtype=float)
    under = float(hist_state["underflow"])
    total = counts.sum() + under + float(hist_state["overflow"])
    if total <= 0:
        raise ValueError("histogram is empty")
    edges = np.linspace(
        float(hist_state["lo"]), float(hist_state["hi"]), counts.size + 1
    )
    cum = under + np.concatenate([[0.0], np.cumsum(counts)])
    levels = np.asarray(q_levels, dtype=float) / 100.0
    emp = np.interp(np.asarray(q_values, dtype=float), edges, cum / total)
    return float(np.max(np.abs(emp - levels)))


def _fleet_quantile(group: str, level: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        return float(result["groups"][group]["quantiles"][level])

    return extract


def _fleet_max(group: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        return float(result["groups"][group]["max"])

    return extract


def _fleet_walk_rsrp_ks(result: Any) -> float:
    return histogram_ks_to_quantiles(
        result["groups"]["walk_mmwave_rsrp"]["hist"],
        WALK_RSRP_LEVELS,
        WALK_RSRP_DBM,
    )


def _live_row(controller: str, field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        for row in result["rows"]:
            if row["controller"] == controller:
                return float(row[field])
        raise KeyError(f"no live row for controller {controller!r}")

    return extract


def _energy_abr_row_at_max_weight(field: str) -> Callable[[Any], float]:
    def extract(result: Any) -> float:
        row = max(result["rows"], key=lambda r: float(r["energy_weight"]))
        return float(row[field])

    return extract


#: The paper-pinned gauge registry. A ``fig2 fig13`` sweep alone
#: evaluates six of these; the rest light up as their runners join the
#: sweep. Targets cite the figure/table they are pinned to.
PAPER_GAUGES: List[GaugeSpec] = [
    GaugeSpec(
        name="rtt_floor_mmwave",
        runner="fig2",
        paper_ref="Fig. 2",
        description="min RTT to the nearest server on Verizon mmWave",
        unit="ms",
        target=6.0,
        warn=0.15,
        fail=0.5,
        extract=_rtt_floor("verizon-nsa-mmwave"),
    ),
    GaugeSpec(
        name="rtt_floor_lte",
        runner="fig2",
        paper_ref="Fig. 2",
        description="min RTT to the nearest server on Verizon LTE",
        unit="ms",
        target=21.0,
        warn=0.15,
        fail=0.5,
        extract=_rtt_floor("verizon-lte"),
    ),
    GaugeSpec(
        name="rtt_distance_slope",
        runner="fig2",
        paper_ref="Fig. 2",
        description="mmWave min-RTT growth per km of UE-server distance",
        unit="ms/km",
        target=0.021,
        warn=0.10,
        fail=0.30,
        extract=_rtt_slope,
    ),
    GaugeSpec(
        name="walk_rsrp_ks",
        runner="fig13",
        paper_ref="Fig. 13",
        description="KS distance of walking-loop RSRP vs pinned deciles",
        unit="",
        target=0.0,
        warn=0.12,
        fail=0.25,
        mode="abs",
        extract=_walk_rsrp_ks,
    ),
    GaugeSpec(
        name="walk_rsrp_median",
        runner="fig13",
        paper_ref="Fig. 13",
        description="median RSRP over the walking loop",
        unit="dBm",
        target=-86.0,
        warn=4.0,
        fail=10.0,
        mode="abs",
        extract=_walk_rsrp_median,
    ),
    GaugeSpec(
        name="walk_power_per_mbps",
        runner="fig13",
        paper_ref="Fig. 12-13",
        description="radio power per Mbps at good RSRP (>= -80 dBm)",
        unit="mW/Mbps",
        target=4.65,
        warn=0.12,
        fail=0.40,
        extract=_walk_power_per_mbps,
    ),
    GaugeSpec(
        name="mmwave_peak_dl",
        runner="fig3",
        paper_ref="Fig. 3",
        description="peak multi-connection mmWave downlink",
        unit="Mbps",
        target=3100.0,
        warn=0.05,
        fail=0.20,
        extract=_peak("dl_multi_mbps"),
    ),
    GaugeSpec(
        name="mmwave_peak_ul",
        runner="fig3",
        paper_ref="Fig. 3",
        description="peak multi-connection mmWave uplink",
        unit="Mbps",
        target=220.0,
        warn=0.05,
        fail=0.20,
        extract=_peak("ul_multi_mbps"),
    ),
    GaugeSpec(
        name="lowband_peak_dl_nsa",
        runner="fig6",
        paper_ref="Fig. 6",
        description="peak T-Mobile NSA low-band downlink",
        unit="Mbps",
        target=210.0,
        warn=0.08,
        fail=0.25,
        extract=_peak_nested("nsa", "dl_multi_mbps"),
    ),
    GaugeSpec(
        name="handoffs_nsa_vertical",
        runner="fig9",
        paper_ref="Fig. 9",
        description="vertical handoffs over the NSA drive loop",
        unit="",
        target=90.0,
        warn=0.25,
        fail=0.60,
        extract=_handoff_count("NSA-5G + LTE", "vertical"),
    ),
    GaugeSpec(
        name="tail_power_mmwave",
        runner="table2",
        paper_ref="Table 2",
        description="Verizon mmWave RRC tail power",
        unit="mW",
        target=1092.0,
        warn=0.01,
        fail=0.05,
        extract=_power_row("verizon-nsa-mmwave", "tail_mw"),
    ),
    GaugeSpec(
        name="switch_power_mmwave",
        runner="table2",
        paper_ref="Table 2",
        description="Verizon mmWave RRC switch power",
        unit="mW",
        target=1494.0,
        warn=0.01,
        fail=0.05,
        extract=_power_row("verizon-nsa-mmwave", "switch_mw"),
    ),
    GaugeSpec(
        name="fleet_walk_rsrp_median",
        runner="fleet",
        paper_ref="Fig. 13",
        description="fleet-marginal median RSRP, walking mmWave UEs",
        unit="dBm",
        target=-86.0,
        warn=4.0,
        fail=10.0,
        mode="abs",
        extract=_fleet_quantile("walk_mmwave_rsrp", "50"),
    ),
    GaugeSpec(
        name="fleet_walk_rsrp_ks",
        runner="fleet",
        paper_ref="Fig. 13",
        description="KS distance of fleet walking-RSRP vs pinned deciles",
        unit="",
        target=0.0,
        warn=0.12,
        fail=0.25,
        mode="abs",
        extract=_fleet_walk_rsrp_ks,
    ),
    GaugeSpec(
        name="fleet_mmwave_peak_dl",
        runner="fleet",
        paper_ref="Fig. 3",
        description="fleet peak mmWave speedtest downlink",
        unit="Mbps",
        target=3100.0,
        warn=0.05,
        fail=0.20,
        extract=_fleet_max("speedtest_mmwave_dl"),
    ),
    GaugeSpec(
        name="live_latency_lolp",
        runner="live",
        paper_ref="LL-DASH study (PAPERS.md)",
        description="mean LoL+ live latency over mmWave walks (3 s target)",
        unit="s",
        target=6.8,
        warn=0.20,
        fail=0.45,
        extract=_live_row("LoL+", "mean_latency_s"),
    ),
    GaugeSpec(
        name="live_rate_deviation_lolp",
        runner="live",
        paper_ref="LL-DASH study (PAPERS.md)",
        description="mean LoL+ playback-rate deviation from 1.0x",
        unit="",
        target=0.038,
        warn=0.02,
        fail=0.05,
        mode="abs",
        extract=_live_row("LoL+", "rate_deviation"),
    ),
    GaugeSpec(
        name="energy_abr_saving",
        runner="energy_abr",
        paper_ref="energy-aware streaming study (PAPERS.md)",
        description="radio energy saved at max energy weight vs λ=0",
        unit="",
        target=0.13,
        warn=0.05,
        fail=0.10,
        mode="abs",
        extract=lambda result: float(result["energy_saving_frac"]),
    ),
    GaugeSpec(
        name="energy_abr_stall_floor",
        runner="energy_abr",
        paper_ref="energy-aware streaming study (PAPERS.md)",
        description="stall %% at max energy weight (savings must not stall)",
        unit="%",
        target=0.0,
        warn=4.0,
        fail=8.0,
        mode="abs",
        extract=_energy_abr_row_at_max_weight("stall_percent"),
    ),
]


# ---------------------------------------------------------------------------
# Evaluation.
# ---------------------------------------------------------------------------

def values_from_result(sweep_result: Any) -> Dict[str, Any]:
    """First successful value per runner from a ``SweepResult``."""
    values: Dict[str, Any] = {}
    for outcome in sweep_result:
        if outcome.status in ("ok", "cached") and (
            outcome.spec.runner not in values
        ):
            values[outcome.spec.runner] = outcome.value
    return values


def evaluate_gauges(
    values_by_runner: Mapping[str, Any],
    gauges: Optional[Sequence[GaugeSpec]] = None,
) -> List[GaugeResult]:
    """Score every gauge whose runner produced a value.

    Gauges whose runner is absent come back ``skipped``; an extractor
    that raises scores as ``fail`` with the error in ``detail`` — a
    result shape the gauge can no longer read *is* a calibration
    failure, not a pass.
    """
    results: List[GaugeResult] = []
    for spec in gauges if gauges is not None else PAPER_GAUGES:
        base = dict(
            name=spec.name,
            runner=spec.runner,
            paper_ref=spec.paper_ref,
            description=spec.description,
            unit=spec.unit,
            target=spec.target,
            warn=spec.warn,
            fail=spec.fail,
            mode=spec.mode,
        )
        if spec.runner not in values_by_runner:
            results.append(GaugeResult(status="skipped", **base))
            continue
        try:
            measured = float(spec.extract(values_by_runner[spec.runner]))
            scored = score_value(
                measured, spec.target, spec.warn, spec.fail, spec.mode
            )
        except Exception as exc:
            results.append(
                GaugeResult(
                    status="fail",
                    detail=f"{exc.__class__.__name__}: {exc}",
                    **base,
                )
            )
            continue
        results.append(
            GaugeResult(
                status=scored["status"],
                measured=measured,
                err=scored["err"],
                **base,
            )
        )
    return results


def summarize_gauges(results: Sequence[GaugeResult]) -> Dict[str, int]:
    """Status counts over evaluated gauges (skipped counted apart)."""
    counts = {"pass": 0, "warn": 0, "fail": 0, "skipped": 0}
    for result in results:
        counts[result.status] = counts.get(result.status, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Overrides: the mis-calibration fixture mechanism.
# ---------------------------------------------------------------------------

def load_overrides(path: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    """Load a gauge-override JSON file: name -> {target/warn/fail}."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: gauge overrides must be a JSON object")
    allowed = {"target", "warn", "fail", "mode"}
    for name, fields in data.items():
        if not isinstance(fields, dict) or not set(fields) <= allowed:
            raise ValueError(
                f"{path}: override for {name!r} must be an object with "
                f"keys from {sorted(allowed)}"
            )
    return data


def apply_overrides(
    gauges: Sequence[GaugeSpec],
    overrides: Mapping[str, Mapping[str, Any]],
) -> List[GaugeSpec]:
    """Gauge specs with targets/thresholds replaced per ``overrides``."""
    unknown = set(overrides) - {g.name for g in gauges}
    if unknown:
        raise ValueError(f"overrides for unknown gauges: {sorted(unknown)}")
    return [
        dataclasses.replace(g, **overrides[g.name])
        if g.name in overrides
        else g
        for g in gauges
    ]


def rescore(
    gauge_event: Mapping[str, Any],
    overrides: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Re-score a recorded ``gauge`` event against overridden targets.

    The ledger stores each gauge's *measured* value, so a report can
    re-judge it against new targets without re-running the sweep —
    which is how ``repro report --gauges`` flips a deliberately
    mis-calibrated gauge to fail from the recorded run alone. Events
    without a measurement (skipped/extractor-error) pass through.
    """
    fields = dict(gauge_event)
    override = overrides.get(fields.get("name", ""))
    if override is None or "measured" not in fields:
        return fields
    fields.update(override)
    scored = score_value(
        fields["measured"],
        fields["target"],
        fields["warn"],
        fields["fail"],
        fields.get("mode", "rel"),
    )
    fields["err"] = round(scored["err"], 6)
    fields["status"] = scored["status"]
    return fields
