"""Hierarchical spans: see inside every sweep, job, and simulated radio.

The run ledger (:mod:`repro.obs.events`) records *that* jobs ran; this
module records *where the time goes inside them*. A span is one timed
region with identity (``trace_id``/``span_id``/``parent_id``), a
monotonic start, a duration, and free-form attributes. Spans nest:
the engine opens a ``sweep`` root span, each worker opens a ``job``
span under it, each attempt a span under that, and the hot simulation
kernels (:class:`repro.radio.signal.RsrpProcess`,
:class:`repro.radio.link.LinkBudget`, :class:`repro.transport.flow`,
the power model) annotate their batch entry points — so one ledger
reconstructs a per-job flame timeline.

Usage, anywhere in library code::

    from repro.obs.trace import span

    with span("kernel.rsrp.simulate", n=n):
        ...

``span()`` is free when no tracer is installed: it returns a shared
no-op context manager after one thread-local lookup, which is why the
kernels can stay instrumented unconditionally without budging the
engine's <5% overhead gate.

Crossing the process boundary: worker processes cannot share the
parent's sink (an open file handle), so the engine serialises *span
context* — ``{"trace_id", "parent_id"}`` — into the job payload, the
worker runs under a collecting :class:`Tracer` built from that context
(:meth:`Tracer.for_payload`), and the finished spans travel home in
the job record (:meth:`Tracer.export`) where the parent replays them
into the ledger as ``span_start``/``span_end`` events at settle time.
Each exported span keeps ``t_rel``, its start offset on the *worker's*
monotonic clock relative to the job's start — so a flame timeline
shows real in-job timing, not the settle-time artifact of when the
record crossed the pipe.

Everything here is stdlib-only (the sink is duck-typed), so any module
may import it without cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "span",
]

#: Default cap on spans kept per tracer. A runner that calls a scalar
#: kernel in a tight loop could otherwise flood the ledger; beyond the
#: cap spans are counted (``Tracer.dropped``) but not kept.
MAX_SPANS = 2000


@dataclass
class Span:
    """One timed region. ``duration_s`` is ``None`` while still open."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    t_rel: float
    duration_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (what crosses the process boundary)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_rel": round(self.t_rel, 6),
            "duration_s": round(self.duration_s or 0.0, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision-safe across processes)."""
    import os

    return os.urandom(8).hex()


class Tracer:
    """Collects spans for one trace; optionally mirrors them to a sink.

    ``span_prefix`` namespaces span ids — the engine hands each job a
    ``j<index>.`` prefix so worker-side ids never collide with each
    other or with the parent's. With a ``sink`` attached (parent side)
    every open/close also emits a ``span_start``/``span_end`` event;
    without one (worker side) spans just accumulate for
    :meth:`export`.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        sink: Optional[Any] = None,
        parent_id: Optional[str] = None,
        span_prefix: str = "s",
        max_spans: int = MAX_SPANS,
        clock=time.monotonic,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.sink = sink
        self.root_parent_id = parent_id
        self.spans: List[Span] = []
        self.dropped = 0
        self.max_spans = int(max_spans)
        self._prefix = span_prefix
        self._count = 0
        self._stack: List[Span] = []
        self._clock = clock
        self._epoch = clock()

    # -- span lifecycle --------------------------------------------------
    def start(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        self._count += 1
        parent = self._stack[-1].span_id if self._stack else self.root_parent_id
        record = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self._prefix}{self._count}",
            parent_id=parent,
            t_rel=self._clock() - self._epoch,
            attrs=dict(attrs) if attrs else {},
        )
        self._stack.append(record)
        if self.sink is not None:
            self.sink.emit("span_start", **record.as_dict())
        return record

    def finish(self, record: Span) -> None:
        record.duration_s = (self._clock() - self._epoch) - record.t_rel
        # Tolerate mispaired finishes: pop up to and including `record`.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.dropped += 1
        if self.sink is not None:
            self.sink.emit("span_end", **record.as_dict())

    def span(self, name: str, **attrs: Any) -> "_SpanHandle":
        return _SpanHandle(self, name, attrs)

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- process-boundary plumbing ---------------------------------------
    def context(self, parent_id: Optional[str] = None) -> Dict[str, Any]:
        """Span context for a job payload (see :meth:`for_payload`)."""
        return {
            "trace_id": self.trace_id,
            "parent_id": parent_id
            if parent_id is not None
            else self.root_parent_id,
        }

    @classmethod
    def for_payload(
        cls, context: Dict[str, Any], index: int = 0
    ) -> "Tracer":
        """A collecting (sink-less) tracer for one job in a worker."""
        return cls(
            trace_id=context.get("trace_id"),
            parent_id=context.get("parent_id"),
            span_prefix=f"j{int(index)}.",
        )

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans as JSONable dicts, ordered by start offset."""
        return [
            record.as_dict()
            for record in sorted(self.spans, key=lambda s: s.t_rel)
        ]


class _SpanHandle:
    """Context manager for one span on one tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: Optional[Span] = None

    def __enter__(self) -> Span:
        self._record = self._tracer.start(self._name, self._attrs)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        # An error inside the block is part of the story: record it,
        # but still time the span (and never swallow the exception).
        if exc_type is not None and self._record is not None:
            self._record.attrs["error"] = exc_type.__name__
        if self._record is not None:
            self._tracer.finish(self._record)
        return False


class _NullSpan:
    """Shared no-op stand-in used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_STATE = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, or ``None``."""
    return getattr(_STATE, "tracer", None)


class activate:
    """Install ``tracer`` on this thread for a ``with`` block.

    Re-entrant: the previous tracer (possibly ``None``) is restored on
    exit. ``activate(None)`` explicitly disables tracing for the block
    — the worker entry point uses this so a tracer inherited across a
    ``fork`` can never write to the parent's sink.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer

    def __enter__(self) -> Optional[Tracer]:
        self._previous = getattr(_STATE, "tracer", None)
        _STATE.tracer = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STATE.tracer = self._previous
        return False


def span(name: str, **attrs: Any):
    """Open a span on the current tracer; a shared no-op when disabled.

    The disabled path is one thread-local lookup and no allocation, so
    hot kernels can call this unconditionally.
    """
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
