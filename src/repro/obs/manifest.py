"""Run manifests: the provenance record behind every exported artifact.

A manifest ties one sweep's outputs back to exactly what produced
them: the full job specs (runner, kwargs, seed, scale), the code
version the cache keyed on, worker count, per-job attempts/durations,
structured failure records, and the sweep's metrics block. The CLI
writes one next to every ``--json`` export and into the cache
directory, so any regenerated figure or table is auditable months
later.

Manifests also *replay*: :func:`specs_from_manifest` rebuilds the job
list, and re-executing it against the same cache under the recorded
``code_version`` is all hits — the acceptance check that a manifest
really pins its artifact (see tests/obs/test_manifest.py).

This module deliberately imports only ``repro.engine.spec`` /
``repro.engine.cache`` (never ``repro.engine.pool``, which imports
``repro.obs`` back); the sweep result is consumed duck-typed.
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.cache import default_code_version
from repro.engine.spec import JobSpec
from repro.experiments.export import to_jsonable

PathLike = Union[str, Path]

MANIFEST_VERSION = 1


def _job_record(outcome: Any) -> Dict[str, Any]:
    spec = outcome.spec
    record: Dict[str, Any] = {
        "index": spec.index,
        "runner": spec.runner,
        "label": spec.display,
        "kwargs": to_jsonable(dict(spec.kwargs)),
        "seed": spec.seed,
        "scale": spec.scale,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "duration_s": round(float(outcome.duration_s), 6),
    }
    if spec.backend is not None:
        record["backend"] = spec.backend
    if outcome.failure is not None:
        failure = outcome.failure
        record["failure"] = {
            "error": failure.error,
            "error_type": failure.error_type,
            "attempts": failure.attempts,
            "transient": failure.transient,
        }
        if failure.traceback:
            record["failure"]["traceback"] = failure.traceback
    return record


def build_manifest(
    result: Any,
    *,
    code_version: Optional[str] = None,
    base_seed: Optional[int] = None,
    scale: Optional[float] = None,
    argv: Optional[List[str]] = None,
    cache_dir: Optional[PathLike] = None,
    events_path: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one ``SweepResult``.

    ``code_version`` defaults to the result's recorded version (set
    whenever a cache was attached) and falls back to hashing the
    installed sources, so a manifest always pins *some* code identity.
    """
    version = (
        code_version
        or getattr(result, "code_version", None)
        or default_code_version()
    )
    return {
        "manifest_version": MANIFEST_VERSION,
        "created_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "code_version": version,
        "argv": list(argv) if argv is not None else None,
        "base_seed": base_seed,
        "scale": scale,
        "workers": result.workers,
        "elapsed_s": round(float(result.elapsed_s), 6),
        "partial": bool(getattr(result, "partial", False)),
        "counts": {
            "jobs": len(result.outcomes),
            "ok": result.ok_count,
            "cached": result.cached_count,
            "failed": result.failed_count,
            "skipped": int(getattr(result, "skipped_count", 0)),
        },
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "events_path": str(events_path) if events_path is not None else None,
        "stats": getattr(result, "stats", {}) or {},
        "jobs": [_job_record(outcome) for outcome in result.outcomes],
    }


def write_manifest(manifest: Dict[str, Any], path: PathLike) -> Path:
    """Atomically write a manifest as strict, indented JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-manifest-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest, handle, indent=1, allow_nan=False)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_manifest(path: PathLike) -> Dict[str, Any]:
    with Path(path).open() as handle:
        manifest = json.load(handle)
    if not isinstance(manifest, dict) or "jobs" not in manifest:
        raise ValueError(f"{path} is not a run manifest")
    return manifest


def manifest_path_for(export_path: PathLike) -> Path:
    """Default sibling for an export: ``out.json`` → ``out.manifest.json``."""
    export_path = Path(export_path)
    if export_path.suffix == ".json":
        return export_path.with_suffix(".manifest.json")
    return export_path.with_name(export_path.name + ".manifest.json")


def specs_from_manifest(manifest: Dict[str, Any]) -> List[JobSpec]:
    """Rebuild the job list a manifest records, in job-index order.

    Executing these against the manifest's ``cache_dir`` with
    ``code_version=manifest["code_version"]`` replays the sweep as
    cache hits (kwargs must be JSON-representable, which everything
    the CLI dispatches is).
    """
    specs = []
    for job in sorted(manifest["jobs"], key=lambda j: j["index"]):
        specs.append(
            JobSpec(
                runner=job["runner"],
                kwargs=job["kwargs"] or {},
                seed=job["seed"],
                scale=job["scale"],
                index=job["index"],
                label=job["label"],
                backend=job.get("backend"),
            )
        )
    return specs
