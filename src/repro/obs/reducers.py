"""Streaming, mergeable, memory-bounded reducers for fleet sweeps.

A million-UE sweep must never materialise a per-UE (let alone per-tick)
series in the parent process. Instead each shard folds its samples into
a handful of fixed-size accumulators, ships their JSON state over the
engine's normal result transport, and the parent merges the partials.
Four reducers cover the fleet's summary surface:

* :class:`PairwiseSum` — float sums (means) that are **bit-identical**
  for any contiguous sharding of the leaf sequence. Floating-point
  addition is not associative, so a naive per-shard ``sum`` changes
  with the shard split; ``PairwiseSum`` instead fixes one canonical
  binary tree over the *global* leaf index range and every shard
  computes exactly the tree nodes its leaf range covers. Merging
  adjacent shards recombines nodes in the same canonical order, so
  serial and any sharded-parallel execution produce the same bits.
* :class:`StreamMoments` — count / mean / variance / min / max built
  on two ``PairwiseSum`` trees (x and x²); same bit-exactness.
* :class:`FixedHistogram` — fixed-bin integer counts with underflow /
  overflow tails; merging is integer addition, hence exact and
  order-invariant.
* :class:`QuantileSketch` — a DDSketch-style log-bucket quantile
  sketch with **relative** error ≤ ``alpha`` (default 1%); integer
  bucket counts make merging exact and fully order-invariant.

Every reducer round-trips through ``to_state()`` / ``from_state()``
as plain JSON types (string dict keys, lists, numbers), so shard
partials survive the engine's result cache unchanged. Error bounds
and the memory model are documented in docs/fleet.md.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PairwiseSum",
    "StreamMoments",
    "FixedHistogram",
    "QuantileSketch",
]


class PairwiseSum:
    """Split-invariant float summation over an ordered leaf sequence.

    The canonical tree: leaf ``j`` of the global sequence sits in
    aligned blocks ``[j - j % 2**k, j - j % 2**k + 2**k)``; a block's
    value is the perfect pairwise tree over its leaves (left half +
    right half, recursively). The accumulator holds the canonical
    maximal-aligned-block decomposition of its leaf range — ascending
    block sizes then descending, at most ~128 nodes, O(log n) memory
    regardless of n.

    A shard covering global leaves ``[start, stop)`` builds the same
    decomposition *relative to the global index* (``origin=start``),
    which is what makes :meth:`merge` of adjacent shards reproduce the
    serial accumulator bit for bit: the nodes pushed during a merge
    are exactly the nodes a straight left-to-right run would have
    pushed, combined in the same order.
    """

    __slots__ = ("origin", "count", "_nodes")

    def __init__(self, origin: int = 0) -> None:
        if origin < 0:
            raise ValueError("origin must be non-negative")
        self.origin = int(origin)
        self.count = 0
        # (start, level, value): the aligned block of 2**level leaves
        # beginning at global leaf index `start`. Nodes are spatially
        # ordered and contiguous from `origin`.
        self._nodes: List[Tuple[int, int, float]] = []

    # -- building ----------------------------------------------------------

    def _push(self, start: int, level: int, value: float) -> None:
        nodes = self._nodes
        # Merge with the left neighbour only when the pair forms the
        # canonical *aligned* double block — two adjacent equal-level
        # blocks whose union is not aligned (possible when the shard
        # origin sits mid-block) must stay separate, or the float
        # association diverges from the canonical tree.
        while (
            nodes
            and nodes[-1][1] == level
            and nodes[-1][0] % (2 << level) == 0
        ):
            start, _, left_value = nodes.pop()
            value = left_value + value
            level += 1
        nodes.append((start, level, value))

    @staticmethod
    def _tree_sum(block: np.ndarray) -> float:
        """Perfect pairwise tree over a power-of-two-length block."""
        while block.shape[0] > 1:
            block = block[0::2] + block[1::2]
        return float(block[0])

    def add(self, values) -> None:
        """Fold the next leaves (in order) into the accumulator."""
        values = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        m = values.shape[0]
        pos = self.origin + self.count
        i = 0
        while i < m:
            remaining = m - i
            # Largest aligned power-of-two block starting at pos that
            # fits in what's left (segment-tree range decomposition).
            align = (pos & -pos) if pos else 1 << 62
            size = min(align, 1 << (remaining.bit_length() - 1))
            self._push(
                pos,
                size.bit_length() - 1,
                self._tree_sum(values[i : i + size]),
            )
            pos += size
            i += size
        self.count += m

    # -- combining ---------------------------------------------------------

    def merge(self, other: "PairwiseSum") -> None:
        """Absorb the adjacent-on-the-right accumulator ``other``."""
        if other.origin != self.origin + self.count:
            raise ValueError(
                f"cannot merge: right accumulator starts at leaf "
                f"{other.origin}, left ends at {self.origin + self.count}"
            )
        for start, level, value in other._nodes:
            self._push(start, level, value)
        self.count += other.count

    def total(self) -> float:
        """The canonical-tree sum of everything folded in so far.

        Nodes are combined right to left (smallest block first), which
        is the order the canonical tree itself implies — so the total
        is a pure function of (origin, leaves), not of sharding.
        """
        if not self._nodes:
            return 0.0
        nodes = self._nodes
        acc = nodes[-1][2]
        for _, _, value in reversed(nodes[:-1]):
            acc = value + acc
        return float(acc)

    # -- serialization -----------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        return {
            "origin": self.origin,
            "count": self.count,
            "nodes": [
                [start, level, value] for start, level, value in self._nodes
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "PairwiseSum":
        out = cls(origin=int(state["origin"]))
        out.count = int(state["count"])
        out._nodes = [
            (int(start), int(level), float(value))
            for start, level, value in state["nodes"]
        ]
        return out


class StreamMoments:
    """Count / mean / variance / min / max over a global leaf sequence.

    Mean and variance come from two :class:`PairwiseSum` trees (x and
    x²), inheriting their bit-exact split invariance; min and max are
    exact under any ordering.
    """

    __slots__ = ("_sum", "_sumsq", "_min", "_max")

    def __init__(self, origin: int = 0) -> None:
        self._sum = PairwiseSum(origin)
        self._sumsq = PairwiseSum(origin)
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._sum.count

    def add(self, values) -> None:
        values = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        if values.shape[0] == 0:
            return
        self._sum.add(values)
        self._sumsq.add(values * values)
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))

    def merge(self, other: "StreamMoments") -> None:
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def summary(self) -> Dict[str, Any]:
        n = self.count
        if n == 0:
            return {"count": 0, "mean": None, "var": None,
                    "min": None, "max": None}
        mean = self._sum.total() / n
        var = max(self._sumsq.total() / n - mean * mean, 0.0)
        return {
            "count": n,
            "mean": mean,
            "var": var,
            "min": self._min,
            "max": self._max,
        }

    def to_state(self) -> Dict[str, Any]:
        return {
            "sum": self._sum.to_state(),
            "sumsq": self._sumsq.to_state(),
            "min": None if math.isinf(self._min) else self._min,
            "max": None if math.isinf(self._max) else self._max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "StreamMoments":
        out = cls.__new__(cls)
        out._sum = PairwiseSum.from_state(state["sum"])
        out._sumsq = PairwiseSum.from_state(state["sumsq"])
        out._min = math.inf if state["min"] is None else float(state["min"])
        out._max = -math.inf if state["max"] is None else float(state["max"])
        return out


class FixedHistogram:
    """Fixed-bin histogram with int64 counts and explicit tails.

    ``nbins`` equal-width bins over ``[lo, hi)``; samples below ``lo``
    land in ``underflow``, at or above ``hi`` in ``overflow``. Integer
    counts merge by addition, so any shard split or merge order yields
    the same histogram exactly.
    """

    __slots__ = ("lo", "hi", "nbins", "counts", "underflow", "overflow")

    def __init__(self, lo: float, hi: float, nbins: int) -> None:
        if not hi > lo:
            raise ValueError("hi must be greater than lo")
        if nbins < 1:
            raise ValueError("nbins must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.nbins = int(nbins)
        self.counts = np.zeros(self.nbins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    @property
    def count(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    def edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.nbins + 1)

    def add(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.shape[0] == 0:
            return
        under = values < self.lo
        over = values >= self.hi
        self.underflow += int(under.sum())
        self.overflow += int(over.sum())
        inside = values[~(under | over)]
        if inside.shape[0]:
            width = (self.hi - self.lo) / self.nbins
            idx = np.minimum(
                ((inside - self.lo) / width).astype(np.int64), self.nbins - 1
            )
            self.counts += np.bincount(idx, minlength=self.nbins).astype(
                np.int64
            )

    def merge(self, other: "FixedHistogram") -> None:
        if (other.lo, other.hi, other.nbins) != (self.lo, self.hi, self.nbins):
            raise ValueError("cannot merge histograms with different bins")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow

    def to_state(self) -> Dict[str, Any]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "nbins": self.nbins,
            "counts": self.counts.tolist(),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FixedHistogram":
        out = cls(state["lo"], state["hi"], int(state["nbins"]))
        out.counts = np.asarray(state["counts"], dtype=np.int64)
        out.underflow = int(state["underflow"])
        out.overflow = int(state["overflow"])
        return out


class QuantileSketch:
    """Mergeable log-bucket quantile sketch (DDSketch-style).

    Positive magnitudes map to bucket ``ceil(log_gamma |x|)`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; the bucket midpoint
    ``2 * gamma**k / (gamma + 1)`` is within relative error ``alpha``
    of every value in the bucket. Negative values use a mirrored
    bucket map, and magnitudes below ``min_value`` collapse into an
    exact-zero bucket (their absolute error is below ``min_value``).

    Bucket counts are integers, so :meth:`merge` (count addition) is
    commutative and associative — quantiles are independent of shard
    split and merge order. Buckets are never collapsed: for samples
    spanning magnitudes ``[min_value, M]`` the sketch holds at most
    ``2 * log_gamma(M / min_value) + 1`` buckets (about 2900 per sign
    at ``alpha = 0.01`` across 12 decades — a few tens of KiB, still
    O(log dynamic-range), never O(n)).

    :meth:`quantile` follows ``numpy.percentile(method="lower")``
    ranks: the returned estimate is within relative error ``alpha``
    of the exact lower-rank sample (or within ``min_value`` absolute
    when that sample's magnitude is below ``min_value``).
    """

    __slots__ = ("alpha", "min_value", "_gamma", "_log_gamma",
                 "pos", "neg", "zero")

    def __init__(self, alpha: float = 0.01, min_value: float = 1e-9) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.alpha = float(alpha)
        self.min_value = float(min_value)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self.pos: Dict[int, int] = {}
        self.neg: Dict[int, int] = {}
        self.zero = 0

    @property
    def count(self) -> int:
        return (
            sum(self.pos.values()) + sum(self.neg.values()) + self.zero
        )

    def _keys(self, magnitudes: np.ndarray) -> np.ndarray:
        return np.ceil(
            np.log(magnitudes) / self._log_gamma - 1e-12
        ).astype(np.int64)

    def add(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.shape[0] == 0:
            return
        if not np.isfinite(values).all():
            raise ValueError("QuantileSketch cannot absorb non-finite values")
        magnitudes = np.abs(values)
        tiny = magnitudes < self.min_value
        self.zero += int(tiny.sum())
        for store, mask in (
            (self.pos, (values > 0) & ~tiny),
            (self.neg, (values < 0) & ~tiny),
        ):
            if not mask.any():
                continue
            keys, counts = np.unique(
                self._keys(magnitudes[mask]), return_counts=True
            )
            for key, cnt in zip(keys.tolist(), counts.tolist()):
                store[key] = store.get(key, 0) + cnt

    def merge(self, other: "QuantileSketch") -> None:
        if (other.alpha, other.min_value) != (self.alpha, self.min_value):
            raise ValueError("cannot merge sketches with different alpha")
        for key, cnt in other.pos.items():
            self.pos[key] = self.pos.get(key, 0) + cnt
        for key, cnt in other.neg.items():
            self.neg[key] = self.neg.get(key, 0) + cnt
        self.zero += other.zero

    def _bucket_value(self, key: int, sign: int) -> float:
        mid = 2.0 * self._gamma**key / (self._gamma + 1.0)
        return sign * mid

    def quantile(self, q: float) -> Optional[float]:
        """Estimate of the ``q``-th percentile (``0 <= q <= 100``).

        Uses the lower-rank convention of
        ``numpy.percentile(method="lower")``; returns None when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        n = self.count
        if n == 0:
            return None
        target = int(math.floor(q / 100.0 * (n - 1))) + 1  # 1-based rank
        cumulative = 0
        # Ascending value order: most-negative first (descending key),
        # then the zero bucket, then positives (ascending key).
        for key in sorted(self.neg, reverse=True):
            cumulative += self.neg[key]
            if cumulative >= target:
                return self._bucket_value(key, -1)
        cumulative += self.zero
        if cumulative >= target:
            return 0.0
        for key in sorted(self.pos):
            cumulative += self.pos[key]
            if cumulative >= target:
                return self._bucket_value(key, +1)
        raise AssertionError("rank beyond total count")  # pragma: no cover

    def quantiles(self, qs: Sequence[float]) -> List[Optional[float]]:
        return [self.quantile(q) for q in qs]

    def to_state(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "min_value": self.min_value,
            "pos": {str(k): v for k, v in self.pos.items()},
            "neg": {str(k): v for k, v in self.neg.items()},
            "zero": self.zero,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "QuantileSketch":
        out = cls(alpha=float(state["alpha"]),
                  min_value=float(state["min_value"]))
        out.pos = {int(k): int(v) for k, v in state["pos"].items()}
        out.neg = {int(k): int(v) for k, v in state["neg"].items()}
        out.zero = int(state["zero"])
        return out
