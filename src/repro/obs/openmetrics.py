"""OpenMetrics textfile export of calibration gauges and sweep counts.

Renders the gauge scoreboard (and the sweep's headline job counters)
in the OpenMetrics text format, so a node-exporter textfile collector
or any Prometheus-compatible scraper can watch paper calibration drift
over time::

    repro_calibration_measured{gauge="rtt_floor_mmwave",...} 6.19
    repro_calibration_err{gauge="rtt_floor_mmwave",...} 0.031
    repro_calibration_status{gauge="rtt_floor_mmwave",status="pass"} 0
    repro_jobs_total{status="ok"} 12
    # EOF

``repro_calibration_status`` encodes pass=0 / warn=1 / fail=2 (the
value a dashboard alerts on); skipped gauges are omitted entirely.
:func:`parse_openmetrics` is a minimal reader used by the tests (and
handy for CI reconciliation) — it understands exactly the subset this
module emits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = ["render_openmetrics", "parse_openmetrics"]

_STATUS_CODE = {"pass": 0, "warn": 1, "fail": 2}


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs: Mapping[str, Any]) -> str:
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs.items())
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(
    gauge_results: Sequence[Any],
    job_counts: Mapping[str, int] = (),
) -> str:
    """The OpenMetrics exposition for one run.

    ``gauge_results`` is a sequence of :class:`repro.obs.calib
    .GaugeResult` (or dicts with the same fields, e.g. recorded
    ``gauge`` events); ``job_counts`` maps job status -> count
    (``{"ok": 3, "failed": 1, ...}``).
    """
    lines: List[str] = []
    gauges = [
        g if isinstance(g, dict) else g.__dict__ for g in gauge_results
    ]
    scored = [g for g in gauges if g["status"] in _STATUS_CODE]

    lines.append("# TYPE repro_calibration_measured gauge")
    lines.append(
        "# HELP repro_calibration_measured Measured value of a "
        "paper-pinned calibration gauge."
    )
    for g in scored:
        if g.get("measured") is None:
            continue
        labels = _labels(
            {"gauge": g["name"], "paper_ref": g["paper_ref"], "unit": g["unit"]}
        )
        lines.append(
            f"repro_calibration_measured{labels} "
            f"{_format_value(g['measured'])}"
        )

    lines.append("# TYPE repro_calibration_target gauge")
    lines.append(
        "# HELP repro_calibration_target Paper target the gauge is "
        "pinned to."
    )
    for g in scored:
        labels = _labels({"gauge": g["name"], "paper_ref": g["paper_ref"]})
        lines.append(
            f"repro_calibration_target{labels} {_format_value(g['target'])}"
        )

    lines.append("# TYPE repro_calibration_err gauge")
    lines.append(
        "# HELP repro_calibration_err Gauge distance from target "
        "(relative or absolute per the gauge's mode)."
    )
    for g in scored:
        if g.get("err") is None:
            continue
        labels = _labels({"gauge": g["name"], "mode": g["mode"]})
        lines.append(
            f"repro_calibration_err{labels} {_format_value(g['err'])}"
        )

    lines.append("# TYPE repro_calibration_status gauge")
    lines.append(
        "# HELP repro_calibration_status 0=pass 1=warn 2=fail."
    )
    for g in scored:
        labels = _labels({"gauge": g["name"], "status": g["status"]})
        lines.append(
            f"repro_calibration_status{labels} {_STATUS_CODE[g['status']]}"
        )

    if job_counts:
        lines.append("# TYPE repro_jobs counter")
        lines.append("# HELP repro_jobs Jobs by terminal status.")
        for status in sorted(job_counts):
            labels = _labels({"status": status})
            lines.append(
                f"repro_jobs_total{labels} "
                f"{_format_value(job_counts[status])}"
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse the subset of OpenMetrics this module writes.

    Returns ``(metric_name, labels, value)`` samples. Raises
    ``ValueError`` on a malformed line or a missing ``# EOF``
    terminator, which is what makes it useful as a format check.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("missing # EOF terminator")
    for lineno, line in enumerate(lines, 1):
        if not line or line.startswith("#"):
            continue
        name, labels, rest = _split_sample(line, lineno)
        try:
            value = float(rest)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {rest!r}"
            ) from None
        samples.append((name, labels, value))
    return samples


def _split_sample(
    line: str, lineno: int
) -> Tuple[str, Dict[str, str], str]:
    if "{" in line:
        name, after = line.split("{", 1)
        if "}" not in after:
            raise ValueError(f"line {lineno}: unterminated label set")
        label_blob, rest = after.rsplit("}", 1)
        labels = _parse_labels(label_blob, lineno)
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: malformed sample")
        name, rest = parts
        labels = {}
    return name.strip(), labels, rest.strip()


def _parse_labels(blob: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(blob):
        eq = blob.index("=", i)
        key = blob[i:eq].lstrip(",").strip()
        if blob[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        j = eq + 2
        out: List[str] = []
        while j < len(blob):
            ch = blob[j]
            if ch == "\\" and j + 1 < len(blob):
                nxt = blob[j + 1]
                out.append({"n": "\n"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        labels[key] = "".join(out)
        i = j + 1
    return labels
