"""Timers and counters: in-process metrics for sweeps and campaigns.

A :class:`MetricsRegistry` hands out named :class:`Counter` and
:class:`Timer` instances and renders everything as one plain-dict
stats block (:meth:`MetricsRegistry.as_dict`) — the shape attached to
``SweepResult.stats`` and embedded in run manifests. ``registry.span``
times a ``with`` block into a timer, which is how the pool measures
per-runner job latency and :class:`repro.core.campaign.Campaign`
measures its phases.

Everything is stdlib-only and O(1) per observation (timers keep raw
durations in a list; percentiles are computed on demand), so an
always-on registry adds no measurable overhead to jobs that do real
work.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``.

    Matches ``numpy.percentile``'s default method; 0.0 for no samples.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class Counter:
    """A named monotonically-increasing integer."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += int(n)
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Timer:
    """A named collection of duration observations (seconds)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.observations: List[float] = []

    def observe(self, seconds: float) -> None:
        self.observations.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total_s(self) -> float:
        return sum(self.observations)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.observations else 0.0

    def percentile_s(self, q: float) -> float:
        return percentile(self.observations, q)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "mean_s": round(self.mean_s, 6),
            "p50_s": round(self.percentile_s(50.0), 6),
            "p95_s": round(self.percentile_s(95.0), 6),
            "max_s": round(max(self.observations), 6)
            if self.observations
            else 0.0,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters + timers with scoped spans, one stats block out."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def timer(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name)
        return self.timers[name]

    @contextmanager
    def span(self, name: str):
        """Time a ``with`` block into ``timer(name)`` (errors included)."""
        started = time.monotonic()
        try:
            yield self
        finally:
            self.timer(name).observe(time.monotonic() - started)

    def as_dict(self) -> Dict[str, Any]:
        """The per-sweep stats block: plain data, sorted names."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "timers": {
                name: self.timers[name].as_dict()
                for name in sorted(self.timers)
            },
        }
