"""Lumos5G-like throughput trace corpus (section 5.1's dataset).

The real dataset holds 121 mmWave-5G and 175 4G traces at 1 s
granularity; the 5G mean is ~10x the 4G mean, and mmWave traces are
wildly volatile — blockage and beam loss regularly crater throughput
toward zero, which is precisely what breaks chunk-level ABR decisions
in section 5.2. The generator reproduces those statistics by walking a
virtual UE past a mmWave panel (RSRP process with blockage) and mapping
signal to rate through the link budget, then rescaling each corpus so
the *median* lands on the paper's video-ladder anchors (the top video
track bitrate matches the median throughput: 160 Mbps for 5G, 20 Mbps
for 4G).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.kernels.scan import ar1_scan
from repro.radio.bands import LTE_1900, NR_N261
from repro.radio.propagation import BlockageModel
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget, MODEMS
from repro.radio.signal import RsrpProcess
from repro.traces.schema import ThroughputTrace


@dataclass(frozen=True)
class LumosConfig:
    """Corpus generation parameters (defaults match the real dataset)."""

    n_5g: int = 121
    n_4g: int = 175
    duration_s: int = 300
    target_median_5g_mbps: float = 160.0
    target_median_4g_mbps: float = 20.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_5g < 0 or self.n_4g < 0:
            raise ValueError("trace counts must be non-negative")
        if self.duration_s < 10:
            raise ValueError("duration_s must be >= 10")


def _walk_distances(
    rng: np.random.Generator, duration_s: int, span_m: float
) -> np.ndarray:
    """A bounded random walk of tower distances (meters)."""
    steps = rng.normal(0.0, 1.2, size=duration_s)
    distances = 60.0 + np.abs(np.cumsum(steps))
    return np.clip(distances, 15.0, span_m)


def _generate_5g_trace(
    name: str, duration_s: int, rng: np.random.Generator
) -> ThroughputTrace:
    network = get_network("verizon-nsa-mmwave")
    link = LinkBudget(network, MODEMS["X55"])
    # Walking past buildings and foliage: blockages arrive often and
    # persist for many seconds, producing the long mmWave craters that
    # defeat chunk-level ABR decisions (section 5.2).
    # Blockage dwell spans tens of seconds (building shadows, indoor
    # detours on the walking routes), i.e. several chunk downloads —
    # the regime where section 5.4's interface escape pays off.
    blockage = BlockageModel(block_rate_per_m=0.013, recovery_s=15.0)
    signal = RsrpProcess(
        NR_N261, dt_s=1.0, seed=int(rng.integers(0, 2**31)), blockage=blockage
    )
    distances = _walk_distances(rng, duration_s, span_m=320.0)
    speed = float(rng.uniform(1.0, 2.5))
    rsrps = signal.simulate(distances, speed)
    rates = link.capacity_series_mbps(rsrps)
    # Per-second scheduler share: a mean-reverting log process, so even
    # at pegged link capacity the delivered rate swings the way real
    # mmWave cells do under contention and beam adaptation. The AR(1)
    # recurrence runs as a batched scan over one batched draw (the
    # draw stream matches the old per-step scalar draws).
    first = rng.normal(-0.45, 0.3)
    innovations = rng.normal(-0.065, 0.28, size=duration_s - 1)
    log_share = np.concatenate(
        [[first], ar1_scan(0.85, innovations, init=first)]
    )
    share = np.clip(np.exp(log_share), 0.02, 1.0)
    rates = rates * share
    return ThroughputTrace(
        name=name, tech="5G", throughput_mbps=rates, rsrp_dbm=rsrps
    )


def _generate_4g_trace(
    name: str, duration_s: int, rng: np.random.Generator
) -> ThroughputTrace:
    network = get_network("verizon-lte")
    link = LinkBudget(network, MODEMS["X55"])
    signal = RsrpProcess(
        LTE_1900, dt_s=1.0, seed=int(rng.integers(0, 2**31))
    )
    # A walking UE barely moves relative to its serving LTE macro cell,
    # so the signal (and rate) is *stable* — the paper's premise for
    # using 4G as the fallback radio ("4G provides relatively stable
    # bandwidth", section 5.4).
    distances = _walk_distances(rng, duration_s, span_m=1200.0) * 2.0
    speed = float(rng.uniform(0.8, 2.0))
    rsrps = signal.simulate(distances, speed)
    rates = link.capacity_series_mbps(rsrps)
    # Loaded LTE cell: modest scheduler share with gentle swings,
    # again an AR(1) scan over one batched draw.
    utilisation = rng.uniform(0.3, 0.6)
    innovations = rng.normal(0.0, 0.08, size=duration_s - 1)
    log_swing = np.concatenate([[0.0], ar1_scan(0.9, innovations, init=0.0)])
    rates = rates * utilisation * np.clip(np.exp(log_swing), 0.7, 2.0)
    return ThroughputTrace(
        name=name, tech="4G", throughput_mbps=rates, rsrp_dbm=rsrps
    )


def _rescale_to_median(
    traces: List[ThroughputTrace], target_median: float
) -> List[ThroughputTrace]:
    """Scale the whole corpus so its pooled median hits the target,
    preserving relative volatility across and within traces."""
    pooled = np.concatenate([t.throughput_mbps for t in traces])
    median = float(np.median(pooled))
    if median <= 0:
        raise ValueError("degenerate corpus: zero median throughput")
    factor = target_median / median
    return [
        ThroughputTrace(
            name=t.name,
            tech=t.tech,
            throughput_mbps=t.throughput_mbps * factor,
            dt_s=t.dt_s,
            rsrp_dbm=t.rsrp_dbm,
        )
        for t in traces
    ]


def generate_lumos_corpus(
    config: Optional[LumosConfig] = None,
) -> "tuple[List[ThroughputTrace], List[ThroughputTrace]]":
    """Generate the (5G, 4G) trace corpora."""
    config = config or LumosConfig()
    rng = np.random.default_rng(config.seed)
    traces_5g = [
        _generate_5g_trace(f"lumos-5g-{i:03d}", config.duration_s, rng)
        for i in range(config.n_5g)
    ]
    traces_4g = [
        _generate_4g_trace(f"lumos-4g-{i:03d}", config.duration_s, rng)
        for i in range(config.n_4g)
    ]
    if traces_5g:
        traces_5g = _rescale_to_median(traces_5g, config.target_median_5g_mbps)
    if traces_4g:
        traces_4g = _rescale_to_median(traces_4g, config.target_median_4g_mbps)
    return traces_5g, traces_4g
