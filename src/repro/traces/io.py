"""Trace persistence: CSV round-tripping for released-artifact parity.

The paper ships its dataset as per-experiment folders of small CSVs;
these helpers read/write the same shape so the examples can persist and
reload corpora.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.schema import ThroughputTrace, WalkingTrace

PathLike = Union[str, Path]


def save_throughput_trace(trace: ThroughputTrace, path: PathLike) -> None:
    """Write a throughput trace as CSV with a JSON header comment."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {"name": trace.name, "tech": trace.tech, "dt_s": trace.dt_s}
    with path.open("w", newline="") as handle:
        handle.write(f"# {json.dumps(meta)}\n")
        writer = csv.writer(handle)
        header = ["t_s", "throughput_mbps"]
        has_rsrp = trace.rsrp_dbm is not None
        if has_rsrp:
            header.append("rsrp_dbm")
        writer.writerow(header)
        for i in range(len(trace)):
            row = [f"{i * trace.dt_s:.3f}", f"{trace.throughput_mbps[i]:.4f}"]
            if has_rsrp:
                row.append(f"{trace.rsrp_dbm[i]:.2f}")
            writer.writerow(row)


def load_throughput_trace(path: PathLike) -> ThroughputTrace:
    """Read a trace written by :func:`save_throughput_trace`."""
    path = Path(path)
    with path.open() as handle:
        first = handle.readline()
        if not first.startswith("# "):
            raise ValueError(f"{path}: missing metadata header")
        meta = json.loads(first[2:])
        reader = csv.DictReader(handle)
        throughput = []
        rsrp = []
        for row in reader:
            throughput.append(float(row["throughput_mbps"]))
            if "rsrp_dbm" in row and row["rsrp_dbm"] is not None:
                rsrp.append(float(row["rsrp_dbm"]))
    return ThroughputTrace(
        name=meta["name"],
        tech=meta["tech"],
        throughput_mbps=np.array(throughput),
        dt_s=float(meta["dt_s"]),
        rsrp_dbm=np.array(rsrp) if rsrp else None,
    )


def save_walking_trace(trace: WalkingTrace, path: PathLike) -> None:
    """Write a walking trace as CSV with a JSON header comment."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "name": trace.name,
        "network_key": trace.network_key,
        "device_name": trace.device_name,
        "city": trace.city,
        "band_class": trace.band_class,
    }
    with path.open("w", newline="") as handle:
        handle.write(f"# {json.dumps(meta)}\n")
        writer = csv.writer(handle)
        writer.writerow(["t_s", "dl_mbps", "ul_mbps", "rsrp_dbm", "power_mw"])
        for i in range(len(trace)):
            writer.writerow(
                [
                    f"{trace.times_s[i]:.3f}",
                    f"{trace.dl_mbps[i]:.4f}",
                    f"{trace.ul_mbps[i]:.4f}",
                    f"{trace.rsrp_dbm[i]:.2f}",
                    f"{trace.power_mw[i]:.2f}",
                ]
            )


def load_walking_trace(path: PathLike) -> WalkingTrace:
    """Read a trace written by :func:`save_walking_trace`."""
    path = Path(path)
    with path.open() as handle:
        first = handle.readline()
        if not first.startswith("# "):
            raise ValueError(f"{path}: missing metadata header")
        meta = json.loads(first[2:])
        reader = csv.DictReader(handle)
        columns = {key: [] for key in ("t_s", "dl_mbps", "ul_mbps", "rsrp_dbm", "power_mw")}
        for row in reader:
            for key in columns:
                columns[key].append(float(row[key]))
    return WalkingTrace(
        name=meta["name"],
        network_key=meta["network_key"],
        device_name=meta["device_name"],
        city=meta["city"],
        band_class=meta.get("band_class", ""),
        times_s=np.array(columns["t_s"]),
        dl_mbps=np.array(columns["dl_mbps"]),
        ul_mbps=np.array(columns["ul_mbps"]),
        rsrp_dbm=np.array(columns["rsrp_dbm"]),
        power_mw=np.array(columns["power_mw"]),
    )
