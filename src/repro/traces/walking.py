"""Walking-trace generation: the section 4.4 in-the-wild campaign.

Per unique (carrier, mode, band) setting the paper collects 10 walking
traces on a fixed ~1.6 km loop: 10 Hz network logs (throughput, RSRP)
synchronised with power. The loop passes three mmWave towers while
low-band coverage is omnipresent. These traces feed Fig. 13/14 and
train the section 4.5 power models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.mobility.routes import Route, walking_loop
from repro.mobility.trajectory import Trajectory
from repro.power.device import DeviceProfile
from repro.radio.carriers import CarrierNetwork
from repro.radio.link import LinkBudget
from repro.radio.signal import RsrpProcess
from repro.radio.towers import TowerGrid
from repro.traces.schema import WalkingTrace

LOG_RATE_HZ = 10.0  # the paper's network logging rate


@dataclass
class WalkingTraceGenerator:
    """Generates synchronised 10 Hz walking traces for one setting.

    The workload is a saturating downlink transfer (the paper's data
    collection keeps the pipe full), so throughput tracks the link
    capacity at the instantaneous RSRP; power follows the device's
    ground-truth curve plus measurement residue.

    Attributes:
        network: carrier network under test.
        device: UE model.
        city: label only ("Minneapolis" / "Ann Arbor").
        route: walking route (defaults to the paper's loop).
        n_towers: towers along the loop (3 mmWave towers in the paper).
        seed: RNG seed.
    """

    network: CarrierNetwork
    device: DeviceProfile
    city: str = "Minneapolis"
    route: Optional[Route] = None
    n_towers: int = 3
    # Fraction of transfer bursts that run uplink (the paper sweeps
    # both directions in its controlled runs; UL slopes are several
    # times steeper, Table 8).
    uplink_fraction: float = 0.0
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_towers < 1:
            raise ValueError("n_towers must be >= 1")
        if not 0.0 <= self.uplink_fraction <= 1.0:
            raise ValueError("uplink_fraction must be in [0, 1]")
        self.route = self.route or walking_loop()
        self._rng = np.random.default_rng(self.seed)

    def generate(self, name: str) -> WalkingTrace:
        """One walking trace at 10 Hz.

        The hot paths run as batch kernels: serving distances, the RSRP
        series (:meth:`RsrpProcess.simulate`), both directions' capacity
        series, and the power curve are each one array pass. Only the
        inherently sequential burst state machine remains a Python loop;
        it draws from the generator's RNG in the same per-step order as
        the pre-PR implementation, so the burst/pause structure is
        unchanged for a given seed.
        """
        trajectory = Trajectory.from_route(self.route, dt_s=1.0 / LOG_RATE_HZ)
        grid = TowerGrid.along_route(
            self.network.band,
            self.route.waypoints,
            count=self.n_towers,
            jitter_m=40.0,
            seed=int(self._rng.integers(0, 2**31)),
        )
        signal = RsrpProcess(
            self.network.band,
            dt_s=1.0 / LOG_RATE_HZ,
            seed=int(self._rng.integers(0, 2**31)),
        )
        link = LinkBudget(self.network, self.device.modem)
        curve = self.device.curve(self.network.key)

        n = len(trajectory)
        max_coverage = self.network.band.coverage_km * 1000.0
        distances = grid.serving_distances(
            trajectory.x_m, trajectory.y_m, self.network.band, max_coverage
        )
        rsrps = signal.simulate(distances, trajectory.speed_mps)
        cap_dl = link.capacity_series_mbps(rsrps, downlink=True).tolist()
        cap_ul = link.capacity_series_mbps(rsrps, downlink=False).tolist()

        dls = np.zeros(n)
        uls = np.zeros(n)
        noises = np.empty(n)
        # The workload alternates saturating and controlled-rate bursts
        # with idle pauses, mirroring the paper's mixed methodology
        # (in-the-wild walks plus controlled target-throughput runs).
        # This covers the full (throughput, RSRP) operating grid the
        # power model is later asked about — including 0 Mbps at good
        # signal and mid rates at strong signal.
        transfer_active = True
        uplink_burst = False
        target_mbps = float("inf")  # saturating burst
        for i in range(n):
            if transfer_active:
                if self._rng.random() < 1.0 / 300.0:  # ~30 s mean bursts
                    transfer_active = False
                capacity = cap_ul[i] if uplink_burst else cap_dl[i]
                share = min(max(float(self._rng.normal(0.8, 0.08)), 0.3), 1.0)
                rate = min(capacity * share, target_mbps)
                if uplink_burst:
                    uls[i] = rate
                else:
                    dls[i] = rate
            else:
                if self._rng.random() < 1.0 / 50.0:  # ~5 s mean pauses
                    transfer_active = True
                    uplink_burst = self._rng.random() < self.uplink_fraction
                    # Half the bursts saturate; half run at a controlled
                    # target spanning the network's rate range.
                    if self._rng.random() < 0.5:
                        target_mbps = float("inf")
                    else:
                        peak = (
                            self.network.peak_ul_mbps
                            if uplink_burst
                            else self.network.peak_dl_mbps
                        )
                        target_mbps = float(self._rng.uniform(5.0, peak))
            noises[i] = self._rng.normal(1.0, 0.03)  # residual noise
        powers = np.maximum(
            curve.power_mw_series(dls, uls, rsrps) * noises, 0.0
        )
        return WalkingTrace(
            name=name,
            network_key=self.network.key,
            device_name=self.device.name,
            city=self.city,
            times_s=trajectory.times_s.copy(),
            dl_mbps=dls,
            ul_mbps=uls,
            rsrp_dbm=rsrps,
            power_mw=powers,
            band_class=self.network.band.band_class.value,
        )

    def generate_many(self, count: int = 10, prefix: str = "walk") -> List[WalkingTrace]:
        """The paper's 10 traces per setting."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.generate(f"{prefix}-{i:02d}") for i in range(count)]
