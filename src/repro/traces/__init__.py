"""Synthetic trace corpora standing in for the released datasets.

* :mod:`repro.traces.lumos` — a Lumos5G-like throughput corpus (121
  mmWave-5G + 175 4G traces at 1 s granularity, means ~10x apart) that
  drives the ABR video evaluation of section 5.
* :mod:`repro.traces.walking` — 10 Hz network + power walking traces
  (the section 4.4 in-the-wild campaign in Minneapolis and Ann Arbor)
  that train and evaluate the power models.
* :mod:`repro.traces.io` — CSV round-tripping so traces can be shipped
  like the paper's released artifact.
"""

from repro.traces.schema import ThroughputTrace, WalkingTrace
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.walking import WalkingTraceGenerator
from repro.traces.io import load_throughput_trace, save_throughput_trace

__all__ = [
    "LumosConfig",
    "ThroughputTrace",
    "WalkingTrace",
    "WalkingTraceGenerator",
    "generate_lumos_corpus",
    "load_throughput_trace",
    "save_throughput_trace",
]
