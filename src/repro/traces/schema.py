"""Trace dataclasses shared across the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class ThroughputTrace:
    """A 1-D throughput time series (Lumos5G-style, 1 s granularity).

    Attributes:
        name: trace identifier.
        tech: ``"5G"`` or ``"4G"``.
        throughput_mbps: per-interval achievable throughput.
        dt_s: sampling interval (1.0 s in the Lumos5G dataset).
        rsrp_dbm: optional co-recorded signal strength.
    """

    name: str
    tech: str
    throughput_mbps: np.ndarray
    dt_s: float = 1.0
    rsrp_dbm: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.throughput_mbps = np.asarray(self.throughput_mbps, dtype=float)
        if self.throughput_mbps.ndim != 1 or self.throughput_mbps.shape[0] == 0:
            raise ValueError("throughput_mbps must be a non-empty 1-D array")
        if np.any(self.throughput_mbps < 0):
            raise ValueError("throughput must be non-negative")
        if self.dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if self.rsrp_dbm is not None:
            self.rsrp_dbm = np.asarray(self.rsrp_dbm, dtype=float)
            if self.rsrp_dbm.shape != self.throughput_mbps.shape:
                raise ValueError("rsrp series must align with throughput")

    def __len__(self) -> int:
        return self.throughput_mbps.shape[0]

    @property
    def duration_s(self) -> float:
        return len(self) * self.dt_s

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self.throughput_mbps))

    @property
    def median_mbps(self) -> float:
        return float(np.median(self.throughput_mbps))

    def throughput_at(self, t_s: float) -> float:
        """Zero-order-hold lookup (wraps around for long playbacks)."""
        if t_s < 0:
            raise ValueError("t_s must be non-negative")
        index = int(t_s / self.dt_s) % len(self)
        return float(self.throughput_mbps[index])

    def throughput_at_series(self, times_s) -> np.ndarray:
        """Vectorized :meth:`throughput_at` over a whole time grid.

        Bit-identical to the scalar lookup at each grid point (the
        truncating index math is the same elementwise).
        """
        times_s = np.asarray(times_s, dtype=float)
        if np.any(times_s < 0):
            raise ValueError("t_s must be non-negative")
        indices = (times_s / self.dt_s).astype(np.int64) % len(self)
        return self.throughput_mbps[indices]


@dataclass
class WalkingTrace:
    """A synchronised 10 Hz walking trace: network + signal + power.

    Mirrors the paper's section 4.4 data collection: 5G Tracker logs at
    10 Hz while the Monsoon samples at 5 kHz (here already aligned and
    downsampled to the network rate).
    """

    name: str
    network_key: str
    device_name: str
    city: str
    times_s: np.ndarray
    dl_mbps: np.ndarray
    ul_mbps: np.ndarray
    rsrp_dbm: np.ndarray
    power_mw: np.ndarray
    band_class: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrays = {
            "times_s": self.times_s,
            "dl_mbps": self.dl_mbps,
            "ul_mbps": self.ul_mbps,
            "rsrp_dbm": self.rsrp_dbm,
            "power_mw": self.power_mw,
        }
        for key, value in arrays.items():
            setattr(self, key, np.asarray(value, dtype=float))
        lengths = {getattr(self, k).shape[0] for k in arrays}
        if len(lengths) != 1:
            raise ValueError("all walking-trace arrays must align")
        if next(iter(lengths)) == 0:
            raise ValueError("walking trace must not be empty")

    def __len__(self) -> int:
        return self.times_s.shape[0]

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0])

    def features(self) -> np.ndarray:
        """(n, 2) [throughput, rsrp] feature matrix for power modeling."""
        throughput = self.dl_mbps + self.ul_mbps
        return np.column_stack([throughput, self.rsrp_dbm])
