"""5G radio power models (paper section 4.5).

Three data-driven variants, all Decision Tree Regression:

* ``TH+SS`` — features are throughput *and* RSRP (the paper's model);
* ``TH`` — throughput only (the Huang et al. style baseline);
* ``SS`` — signal strength only (the Ding/Nika et al. style baseline);

plus a multi-factor *linear* model used to reproduce the paper's
negative result that linear regression over both factors does worse
than throughput-only linear fitting (hence the move to DTR).

Models are built per (device, carrier, radio technology) setting rather
than pooling settings as features, exactly as in the paper. MAPE is the
evaluation metric (Fig. 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.tree import DecisionTreeRegressor
from repro.traces.schema import WalkingTrace


class FeatureSet(enum.Enum):
    """Which inputs the model sees (Fig. 15's TH+SS / TH / SS bars)."""

    TH_SS = "TH+SS"
    TH = "TH"
    SS = "SS"

    def select(self, throughput: np.ndarray, rsrp: np.ndarray) -> np.ndarray:
        if self is FeatureSet.TH_SS:
            return np.column_stack([throughput, rsrp])
        if self is FeatureSet.TH:
            return throughput.reshape(-1, 1)
        return rsrp.reshape(-1, 1)


@dataclass
class PowerModel:
    """A per-setting DTR radio power model.

    Attributes:
        setting: label, e.g. ``"S20U/VZ/NSA-HB"`` (device/carrier/tech).
        features: which inputs the model uses.
        max_depth, min_samples_leaf: tree hyperparameters.
    """

    setting: str
    features: FeatureSet = FeatureSet.TH_SS
    max_depth: int = 10
    min_samples_leaf: int = 8
    _tree: Optional[DecisionTreeRegressor] = field(init=False, default=None)

    def fit(self, throughput_mbps, rsrp_dbm, power_mw) -> "PowerModel":
        """Train on aligned throughput/RSRP/power samples."""
        throughput = np.asarray(throughput_mbps, dtype=float).ravel()
        rsrp = np.asarray(rsrp_dbm, dtype=float).ravel()
        power = np.asarray(power_mw, dtype=float).ravel()
        if not throughput.shape == rsrp.shape == power.shape:
            raise ValueError("feature and target arrays must align")
        if throughput.shape[0] < 10:
            raise ValueError("need at least 10 samples to fit a power model")
        tree = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )
        tree.fit(self.features.select(throughput, rsrp), power)
        self._tree = tree
        return self

    def predict_mw(self, throughput_mbps, rsrp_dbm) -> np.ndarray:
        """Predicted radio power for aligned feature series."""
        if self._tree is None:
            raise RuntimeError("power model is not fitted; call fit() first")
        throughput = np.asarray(throughput_mbps, dtype=float).ravel()
        rsrp = np.asarray(rsrp_dbm, dtype=float).ravel()
        if throughput.shape != rsrp.shape:
            raise ValueError("throughput and rsrp must align")
        return self._tree.predict(self.features.select(throughput, rsrp))

    def mape(self, throughput_mbps, rsrp_dbm, power_mw) -> float:
        """MAPE (%) against ground-truth power."""
        predicted = self.predict_mw(throughput_mbps, rsrp_dbm)
        return mean_absolute_percentage_error(power_mw, predicted)

    def estimate_energy_j(
        self, throughput_mbps, rsrp_dbm, dt_s: float
    ) -> float:
        """Integrate predicted power over a trace -> joules.

        This is how the paper estimates application network energy: feed
        the packet-derived per-interval throughput into the model
        (sections 4.5 validation, 5.4, 6).
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        power = self.predict_mw(throughput_mbps, rsrp_dbm)
        return float(np.sum(power) * dt_s / 1000.0)


@dataclass
class DirectionalPowerModel:
    """DTR power model with *directional* throughput features.

    The summed-throughput TH+SS model cannot tell 100 Mbps uplink from
    100 Mbps downlink, yet uplink costs 2.2-5.9x more per Mbps
    (Table 8). When the workload mixes directions, feeding (DL, UL,
    RSRP) separately removes that confusion — the natural extension the
    paper's per-direction sweeps suggest.
    """

    setting: str
    max_depth: int = 10
    min_samples_leaf: int = 8
    _tree: Optional[DecisionTreeRegressor] = field(init=False, default=None)

    @staticmethod
    def _features(dl, ul, rsrp) -> np.ndarray:
        dl = np.asarray(dl, dtype=float).ravel()
        ul = np.asarray(ul, dtype=float).ravel()
        rsrp = np.asarray(rsrp, dtype=float).ravel()
        if not dl.shape == ul.shape == rsrp.shape:
            raise ValueError("dl, ul, and rsrp must align")
        return np.column_stack([dl, ul, rsrp])

    def fit(self, dl_mbps, ul_mbps, rsrp_dbm, power_mw) -> "DirectionalPowerModel":
        features = self._features(dl_mbps, ul_mbps, rsrp_dbm)
        power = np.asarray(power_mw, dtype=float).ravel()
        if features.shape[0] != power.shape[0]:
            raise ValueError("features and power must align")
        if features.shape[0] < 10:
            raise ValueError("need at least 10 samples to fit a power model")
        tree = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )
        tree.fit(features, power, feature_names=["DL", "UL", "RSRP"])
        self._tree = tree
        return self

    def predict_mw(self, dl_mbps, ul_mbps, rsrp_dbm) -> np.ndarray:
        if self._tree is None:
            raise RuntimeError("power model is not fitted; call fit() first")
        return self._tree.predict(self._features(dl_mbps, ul_mbps, rsrp_dbm))

    def mape(self, dl_mbps, ul_mbps, rsrp_dbm, power_mw) -> float:
        predicted = self.predict_mw(dl_mbps, ul_mbps, rsrp_dbm)
        return mean_absolute_percentage_error(power_mw, predicted)

    @classmethod
    def from_walking_traces(
        cls, setting: str, traces: Iterable[WalkingTrace], **kwargs
    ) -> "DirectionalPowerModel":
        dls, uls, rsrps, powers = [], [], [], []
        for trace in traces:
            dls.append(trace.dl_mbps)
            uls.append(trace.ul_mbps)
            rsrps.append(trace.rsrp_dbm)
            powers.append(trace.power_mw)
        if not dls:
            raise ValueError("no traces provided")
        return cls(setting=setting, **kwargs).fit(
            np.concatenate(dls),
            np.concatenate(uls),
            np.concatenate(rsrps),
            np.concatenate(powers),
        )


@dataclass
class LinearPowerModel:
    """Multi-factor linear baseline (the paper's rejected approach)."""

    setting: str
    features: FeatureSet = FeatureSet.TH_SS
    _model: Optional[LinearRegression] = field(init=False, default=None)

    def fit(self, throughput_mbps, rsrp_dbm, power_mw) -> "LinearPowerModel":
        throughput = np.asarray(throughput_mbps, dtype=float).ravel()
        rsrp = np.asarray(rsrp_dbm, dtype=float).ravel()
        power = np.asarray(power_mw, dtype=float).ravel()
        model = LinearRegression()
        model.fit(self.features.select(throughput, rsrp), power)
        self._model = model
        return self

    def predict_mw(self, throughput_mbps, rsrp_dbm) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        throughput = np.asarray(throughput_mbps, dtype=float).ravel()
        rsrp = np.asarray(rsrp_dbm, dtype=float).ravel()
        return self._model.predict(self.features.select(throughput, rsrp))

    def mape(self, throughput_mbps, rsrp_dbm, power_mw) -> float:
        predicted = self.predict_mw(throughput_mbps, rsrp_dbm)
        return mean_absolute_percentage_error(power_mw, predicted)


def _stack_traces(
    traces: Iterable[WalkingTrace],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    throughput: List[np.ndarray] = []
    rsrp: List[np.ndarray] = []
    power: List[np.ndarray] = []
    for trace in traces:
        throughput.append(trace.dl_mbps + trace.ul_mbps)
        rsrp.append(trace.rsrp_dbm)
        power.append(trace.power_mw)
    if not throughput:
        raise ValueError("no traces provided")
    return (
        np.concatenate(throughput),
        np.concatenate(rsrp),
        np.concatenate(power),
    )


def train_from_walking_traces(
    setting: str,
    train_traces: Iterable[WalkingTrace],
    features: FeatureSet = FeatureSet.TH_SS,
    **tree_kwargs,
) -> PowerModel:
    """Build a :class:`PowerModel` from walking traces of one setting."""
    throughput, rsrp, power = _stack_traces(train_traces)
    model = PowerModel(setting=setting, features=features, **tree_kwargs)
    return model.fit(throughput, rsrp, power)


@dataclass
class PowerModelRegistry:
    """Per-setting model store (the paper builds one model per
    device/carrier/technology combination, Fig. 15's x-axis)."""

    _models: Dict[str, PowerModel] = field(default_factory=dict)

    def add(self, model: PowerModel) -> None:
        if model.setting in self._models:
            raise ValueError(f"duplicate model for setting {model.setting!r}")
        self._models[model.setting] = model

    def get(self, setting: str) -> PowerModel:
        try:
            return self._models[setting]
        except KeyError:
            raise KeyError(
                f"no model for {setting!r}; known: {sorted(self._models)}"
            ) from None

    def settings(self) -> List[str]:
        return sorted(self._models)

    def evaluate_all(
        self, test_traces_by_setting: Dict[str, List[WalkingTrace]]
    ) -> Dict[str, float]:
        """MAPE per setting against held-out traces."""
        results = {}
        for setting, traces in test_traces_by_setting.items():
            throughput, rsrp, power = _stack_traces(traces)
            results[setting] = self.get(setting).mape(throughput, rsrp, power)
        return results
