"""Radio advisor: which interface should an application use?

The paper's through-line is a single trade-off: mmWave 5G delivers
enormous throughput at a high power floor, while 4G/low-band delivers
modest throughput cheaply (sections 4.3, 5.4, 6.2). This module lifts
the per-application schemes into one reusable API: describe an
application's traffic (an :class:`AppProfile`), and the advisor prices
it on each radio with the device's power curves and the network's
capacity, returning per-radio estimates and a recommendation under a
tunable energy/performance weight — the same ``alpha``/``beta``
utility as Table 6's models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.power.device import DeviceProfile, get_device
from repro.power.tail import TAIL_POWER
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget


@dataclass(frozen=True)
class AppProfile:
    """An application's traffic demand.

    Attributes:
        name: label ("web browsing", "4K video", "bulk download").
        demand_mbps: per-interval downlink demand when active.
        active_fraction: share of wall-clock time with data flowing
            (web browsing is bursty; bulk download is ~1.0).
        session_s: session length used for energy totals.
        latency_sensitive: latency-bound apps value the RTT gap too.
    """

    name: str
    demand_mbps: float
    active_fraction: float = 1.0
    session_s: float = 60.0
    latency_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.demand_mbps < 0:
            raise ValueError("demand_mbps must be non-negative")
        if not 0.0 < self.active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        if self.session_s <= 0:
            raise ValueError("session_s must be positive")


# Canonical profiles from the paper's application studies.
PROFILES: Dict[str, AppProfile] = {
    "web-browsing": AppProfile(
        "web-browsing", demand_mbps=25.0, active_fraction=0.25,
        session_s=30.0, latency_sensitive=True,
    ),
    "hd-video": AppProfile(
        "hd-video", demand_mbps=8.0, active_fraction=0.9, session_s=300.0
    ),
    "uhd-video": AppProfile(
        "uhd-video", demand_mbps=120.0, active_fraction=0.9, session_s=300.0
    ),
    "bulk-download": AppProfile(
        "bulk-download", demand_mbps=5000.0, active_fraction=1.0, session_s=60.0
    ),
    "messaging": AppProfile(
        "messaging", demand_mbps=0.5, active_fraction=0.05,
        session_s=120.0, latency_sensitive=True,
    ),
}


@dataclass(frozen=True)
class RadioEstimate:
    """Per-radio performance/energy estimate for one app profile."""

    network_key: str
    achieved_mbps: float
    completion_factor: float  # achieved/demand, capped at 1
    rtt_ms: float
    energy_j: float
    mean_power_mw: float


@dataclass
class RadioAdvisor:
    """Prices application profiles on candidate radios.

    Attributes:
        device: UE (must carry power curves for every candidate).
        candidates: network keys to consider.
        rsrp_dbm: operating signal strength per network (defaults to a
            good outdoor value per band class).
    """

    device: Optional[DeviceProfile] = None
    candidates: Sequence[str] = (
        "verizon-nsa-mmwave",
        "verizon-nsa-lowband",
        "verizon-lte",
    )
    rsrp_dbm: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.device is None:
            self.device = get_device("S20U")
        for key in self.candidates:
            self.device.curve(key)  # raises early on a missing curve

    def _rsrp(self, network_key: str) -> float:
        if network_key in self.rsrp_dbm:
            return self.rsrp_dbm[network_key]
        band_class = get_network(network_key).band.band_class.value
        return {"mmWave": -78.0, "low-band": -86.0, "mid-band": -86.0}[band_class]

    def estimate(self, profile: AppProfile, network_key: str) -> RadioEstimate:
        """Price one profile on one radio.

        The workload is fixed *work* (the bytes the profile implies), so
        a slower radio transfers longer at its active power — which is
        exactly how Fig. 12's per-bit efficiency crossovers surface:
        below ~187 Mbps demand 4G wins energy, above it only 5G does.
        """
        network = get_network(network_key)
        rsrp = self._rsrp(network_key)
        link = LinkBudget(network, self.device.modem)
        capacity = link.capacity_mbps(rsrp)
        achieved = min(profile.demand_mbps, capacity)
        completion = achieved / profile.demand_mbps if profile.demand_mbps > 0 else 1.0

        curve = self.device.curve(network_key)
        active_power = curve.power_mw(dl_mbps=achieved, rsrp_dbm=rsrp)
        tail = TAIL_POWER.get(network_key)
        idle_power = tail.tail_mw if tail is not None else curve.power_mw(0.0)

        # Fixed work: demand x nominal active time; a slower radio pays
        # its active power for proportionally longer.
        work_mbit = profile.demand_mbps * profile.active_fraction * profile.session_s
        idle_s = (1.0 - profile.active_fraction) * profile.session_s
        if work_mbit > 0:
            transfer_s = work_mbit / max(achieved, 1e-3)
        else:
            transfer_s = 0.0
        energy = (active_power * transfer_s + idle_power * idle_s) / 1000.0
        wall_clock_s = transfer_s + idle_s
        mean_power = energy * 1000.0 / max(wall_clock_s, 1e-9)
        return RadioEstimate(
            network_key=network_key,
            achieved_mbps=achieved,
            completion_factor=completion,
            rtt_ms=network.rtt_floor_ms,
            energy_j=energy,
            mean_power_mw=mean_power,
        )

    def recommend(
        self, profile: AppProfile, alpha: float = 0.5
    ) -> Dict[str, object]:
        """Pick a radio under ``QoE = alpha*energy + (1-alpha)*perf``.

        ``alpha`` is the energy weight (Table 6 semantics: alpha=0.2 is
        "high performance", 0.8 "high energy saving"). Returns the
        estimates plus the chosen network key.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        estimates: List[RadioEstimate] = [
            self.estimate(profile, key) for key in self.candidates
        ]
        max_energy = max(e.energy_j for e in estimates) or 1.0
        max_rtt = max(e.rtt_ms for e in estimates) or 1.0

        def utility(est: RadioEstimate) -> float:
            energy_norm = est.energy_j / max_energy
            # Performance cost: unmet demand dominates; latency matters
            # only for latency-sensitive profiles.
            perf_norm = 1.0 - est.completion_factor
            if profile.latency_sensitive:
                perf_norm = 0.5 * perf_norm + 0.5 * est.rtt_ms / max_rtt
            return alpha * energy_norm + (1.0 - alpha) * perf_norm

        best = min(estimates, key=utility)
        return {
            "profile": profile,
            "alpha": alpha,
            "estimates": {e.network_key: e for e in estimates},
            "recommended": best.network_key,
        }
