"""Core analysis layer: power models, energy analysis, campaigns.

The paper's primary modeling contribution (section 4.5) is a
throughput- *and* signal-strength-aware radio power model per
(device, carrier, radio technology), built with Decision Tree
Regression and evaluated by MAPE. This package implements that model,
its TH-only / SS-only baselines, the linear-multifactor ablation, the
energy-efficiency analytics (crossovers, uJ/bit), and the measurement
campaign orchestration that produces Table 1's dataset statistics.
"""

from repro.core.advisor import AppProfile, PROFILES, RadioAdvisor, RadioEstimate
from repro.core.powermodel import (
    DirectionalPowerModel,
    FeatureSet,
    LinearPowerModel,
    PowerModel,
    PowerModelRegistry,
    train_from_walking_traces,
)
from repro.core.energy import (
    energy_efficiency_uj_per_bit,
    efficiency_curve,
    find_crossover,
    fit_power_slope,
    transfer_power_fraction,
)
from repro.core.campaign import Campaign, CampaignStats
from repro.core.session import (
    Activity,
    SessionResult,
    UsageSession,
    batched_sync_timeline,
    periodic_sync_timeline,
)
from repro.core.metrics import cdf_points, percentile, summarize

__all__ = [
    "Activity",
    "AppProfile",
    "Campaign",
    "CampaignStats",
    "PROFILES",
    "RadioAdvisor",
    "RadioEstimate",
    "SessionResult",
    "UsageSession",
    "batched_sync_timeline",
    "periodic_sync_timeline",
    "DirectionalPowerModel",
    "FeatureSet",
    "LinearPowerModel",
    "PowerModel",
    "PowerModelRegistry",
    "cdf_points",
    "efficiency_curve",
    "energy_efficiency_uj_per_bit",
    "find_crossover",
    "fit_power_slope",
    "percentile",
    "summarize",
    "train_from_walking_traces",
]
