"""Small statistics helpers shared by experiments and benches."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.obs.metrics import percentile as _shared_percentile


def percentile(values, q: float) -> float:
    """q-th percentile of a sequence (q in [0, 100]).

    Delegates to the one shared implementation
    (:func:`repro.obs.metrics.percentile`, numpy-free and
    numpy-default-compatible); this wrapper keeps the experiment-side
    contract where an empty sample is a bug, not a zero.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("percentile of empty input")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return _shared_percentile(values.tolist(), q)


def cdf_points(values) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fractions) for CDF plots (Fig. 20)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cdf of empty input")
    xs = np.sort(values)
    ys = np.arange(1, xs.size + 1) / xs.size
    return xs, ys


def summarize(values) -> Dict[str, float]:
    """Mean/median/p5/p95/min/max summary of a sequence."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("summary of empty input")
    return {
        "mean": float(np.mean(values)),
        "median": float(np.median(values)),
        "p5": float(np.percentile(values, 5)),
        "p95": float(np.percentile(values, 95)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
        "count": int(values.size),
    }
