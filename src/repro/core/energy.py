"""Energy-efficiency analytics (paper sections 4.3-4.4).

Energy per bit, throughput-power slope fitting (Table 8), crossover
location between two power curves (Fig. 11's 187/189 Mbps downlink and
40/123 Mbps uplink points), and the fraction of device power
attributable to data transfer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.linear import LinearRegression


def energy_efficiency_uj_per_bit(power_mw: float, throughput_mbps: float) -> float:
    """Per-bit energy, numerically ``power_mw / throughput_mbps``.

    This ratio is what the paper plots on Fig. 12/14/27's "uJ/bit" axes
    (e.g. a ~3 W mmWave radio at 1 Mbps lands at ~10^3 on their log
    scale, which is 3000 mW / 1 Mbps). Strictly the ratio's SI unit is
    nJ/bit; we keep the paper's axis convention so values are directly
    comparable.
    """
    if throughput_mbps <= 0:
        raise ValueError("throughput must be positive for per-bit energy")
    if power_mw < 0:
        raise ValueError("power must be non-negative")
    return power_mw / throughput_mbps


def efficiency_curve(
    throughputs_mbps, powers_mw
) -> Tuple[np.ndarray, np.ndarray]:
    """(throughput, uJ/bit) pairs for the log-log efficiency plot."""
    throughputs = np.asarray(throughputs_mbps, dtype=float)
    powers = np.asarray(powers_mw, dtype=float)
    if throughputs.shape != powers.shape:
        raise ValueError("throughput and power arrays must align")
    mask = throughputs > 0
    t = throughputs[mask]
    efficiency = np.array(
        [energy_efficiency_uj_per_bit(p, x) for p, x in zip(powers[mask], t)]
    )
    return t, efficiency


def fit_power_slope(throughputs_mbps, powers_mw) -> Tuple[float, float]:
    """OLS (slope mW/Mbps, intercept mW) of a throughput-power sweep.

    This is how Table 8's slopes are extracted from the Fig. 11/26
    controlled sweeps.
    """
    throughputs = np.asarray(throughputs_mbps, dtype=float).reshape(-1, 1)
    powers = np.asarray(powers_mw, dtype=float).ravel()
    if throughputs.shape[0] != powers.shape[0]:
        raise ValueError("throughput and power arrays must align")
    if throughputs.shape[0] < 2:
        raise ValueError("need at least 2 points to fit a slope")
    model = LinearRegression().fit(throughputs, powers)
    return model.slope_, model.intercept_


def find_crossover(
    throughputs_mbps,
    powers_a_mw,
    powers_b_mw,
) -> Optional[float]:
    """Throughput where measured curve A becomes cheaper than curve B.

    Fits both sweeps linearly and intersects the fits; returns None if
    the fitted lines do not cross at a positive throughput.
    """
    slope_a, intercept_a = fit_power_slope(throughputs_mbps, powers_a_mw)
    slope_b, intercept_b = fit_power_slope(throughputs_mbps, powers_b_mw)
    denominator = slope_b - slope_a
    if abs(denominator) < 1e-12:
        return None
    crossing = (intercept_a - intercept_b) / denominator
    if crossing <= 0 or not np.isfinite(crossing):
        return None
    return float(crossing)


def transfer_power_fraction(
    total_power_mw, idle_power_mw: float
) -> np.ndarray:
    """Fraction of total power attributable to the data transfer.

    The paper reports mmWave downlink transfers consuming 48-76% of
    total device power vs 21-53% on 4G (section 4.3).
    """
    total = np.asarray(total_power_mw, dtype=float)
    if idle_power_mw < 0:
        raise ValueError("idle_power_mw must be non-negative")
    if np.any(total <= 0):
        raise ValueError("total power must be positive")
    fraction = (total - idle_power_mw) / total
    return np.clip(fraction, 0.0, 1.0)
