"""Usage-session simulation: battery drain for a day of app activity.

The paper's power thread ends with advice for developers: tails and
4G->5G switches make intermittent traffic expensive on 5G (section
4.2), transfers should be priced with the throughput+signal power model
(section 4.5), and the radio should match the app (sections 5.4, 6.2).
This module composes all of that into one estimator: describe a usage
timeline (activities with demands and gaps), pick a radio policy, and
get a power timeline plus battery drain.

Energy accounting per activity:

* transfer energy from the device's power curve at the achieved rate,
* the RRC tail after each activity (Table 2 power over the Table 7
  schedule, including SA's RRC_INACTIVE dwell),
* a 4G->5G switch burst whenever an activity wakes the 5G radio from
  idle (NSA's common case, Fig. 9),
* the idle floor between activities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.power.device import DeviceProfile, get_device
from repro.power.tail import get_tail_power, tail_energy_j
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget
from repro.rrc.parameters import get_parameters


@dataclass(frozen=True)
class Activity:
    """One entry in a usage timeline.

    Attributes:
        name: label ("web", "video", "sync").
        demand_mbps: downlink demand while transferring.
        transfer_s: seconds of active transfer.
        gap_s: idle time after the activity before the next one.
    """

    name: str
    demand_mbps: float
    transfer_s: float
    gap_s: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_mbps < 0:
            raise ValueError("demand_mbps must be non-negative")
        if self.transfer_s <= 0:
            raise ValueError("transfer_s must be positive")
        if self.gap_s < 0:
            raise ValueError("gap_s must be non-negative")


@dataclass
class SessionResult:
    """Outcome of simulating a usage timeline on one radio."""

    network_key: str
    total_energy_j: float
    transfer_energy_j: float
    tail_energy_j: float
    switch_energy_j: float
    idle_energy_j: float
    duration_s: float
    switches: int
    battery_drain_percent: Optional[float] = None

    @property
    def mean_power_mw(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j * 1000.0 / self.duration_s


@dataclass
class UsageSession:
    """Simulates a timeline of activities on a chosen radio.

    Attributes:
        network_key: serving network.
        device: UE model.
        rsrp_dbm: operating signal strength.
        battery_wh: battery capacity for drain percentages (a ~4500 mAh
            phone at 3.85 V is ~17.3 Wh).
    """

    network_key: str
    device: Optional[DeviceProfile] = None
    rsrp_dbm: float = -82.0
    battery_wh: float = 17.3

    def __post_init__(self) -> None:
        if self.battery_wh <= 0:
            raise ValueError("battery_wh must be positive")
        if self.device is None:
            self.device = get_device("S20U")
        self.device.curve(self.network_key)  # validate early

    def simulate(self, activities: List[Activity]) -> SessionResult:
        """Price a timeline of activities on this radio."""
        if not activities:
            raise ValueError("need at least one activity")
        network = get_network(self.network_key)
        params = get_parameters(self.network_key)
        tail = get_tail_power(self.network_key)
        curve = self.device.curve(self.network_key)
        link = LinkBudget(network, self.device.modem)
        capacity = link.capacity_mbps(self.rsrp_dbm)

        full_tail_s = (
            params.inactivity_ms + (params.inactive_duration_ms or 0.0)
        ) / 1000.0

        transfer_j = tail_j = switch_j = idle_j = 0.0
        switches = 0
        duration = 0.0
        radio_idle = True  # deep idle at session start
        for activity in activities:
            achieved = min(activity.demand_mbps, capacity)
            # Fixed work: unmet demand stretches the transfer.
            stretch = (
                activity.demand_mbps / max(achieved, 1e-3)
                if activity.demand_mbps > 0
                else 1.0
            )
            active_s = activity.transfer_s * stretch
            if radio_idle and network.is_5g:
                # Waking the 5G radio from idle costs the switch burst
                # (NSA promotes via the LTE anchor; SA pays its direct
                # promotion, Table 2's last column).
                switch_j += tail.switch_energy_j
                switches += 1
            power = curve.power_mw(dl_mbps=achieved, rsrp_dbm=self.rsrp_dbm)
            transfer_j += power * active_s / 1000.0
            duration += active_s

            gap = activity.gap_s
            if gap > 0:
                tail_portion = min(gap, full_tail_s)
                tail_j += tail_energy_j(self.network_key, horizon_s=tail_portion)
                beyond = max(0.0, gap - full_tail_s)
                idle_j += tail.idle_mw * beyond / 1000.0
                duration += gap
                radio_idle = gap >= full_tail_s
            else:
                radio_idle = False

        total = transfer_j + tail_j + switch_j + idle_j
        drain = 100.0 * total / (self.battery_wh * 3600.0)
        return SessionResult(
            network_key=self.network_key,
            total_energy_j=total,
            transfer_energy_j=transfer_j,
            tail_energy_j=tail_j,
            switch_energy_j=switch_j,
            idle_energy_j=idle_j,
            duration_s=duration,
            switches=switches,
            battery_drain_percent=drain,
        )

    def compare(
        self, activities: List[Activity], other_keys: Tuple[str, ...]
    ) -> Dict[str, SessionResult]:
        """Simulate the same timeline on this and other radios."""
        results = {self.network_key: self.simulate(activities)}
        for key in other_keys:
            session = UsageSession(
                network_key=key,
                device=self.device,
                rsrp_dbm=self.rsrp_dbm,
                battery_wh=self.battery_wh,
            )
            results[key] = session.simulate(activities)
        return results


# Canonical timelines for examples/tests.
def periodic_sync_timeline(
    period_s: float = 60.0, count: int = 30, payload_s: float = 2.0
) -> List[Activity]:
    """The paper's anti-pattern: periodic small transfers that re-wake
    the radio every cycle (section 4.2's 'traffic patterns like
    periodical data transmission ... should be avoided under 5G')."""
    return [
        Activity("sync", demand_mbps=5.0, transfer_s=payload_s, gap_s=period_s)
        for _ in range(count)
    ]


def batched_sync_timeline(
    period_s: float = 60.0, count: int = 30, payload_s: float = 2.0
) -> List[Activity]:
    """The same work, batched into one burst (the recommended fix)."""
    return [
        Activity(
            "batched-sync",
            demand_mbps=5.0,
            transfer_s=payload_s * count,
            gap_s=period_s * count,
        )
    ]
