"""Measurement campaign orchestration (Table 1's dataset statistics).

:class:`Campaign` wires the substrates together the way the paper's
4-month field study did: Speedtest sessions against server pools,
walking traces per (carrier, mode, band) setting, RRC-Probe sweeps, and
power-monitor captures — and reports the aggregate statistics that
Table 1 summarises (test counts, unique servers, trace minutes, power
minutes, kilometers walked).

The per-setting inner loops (:func:`speedtest_setting_job`,
:func:`walking_setting_job`) are module-level so the scenario engine
(:mod:`repro.engine`) can dispatch them to worker processes; a
``Campaign(workers=N)`` fans each (network, device) setting out over
the pool while keeping seed draws — and therefore results — identical
to the serial path.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.mobility.routes import walking_loop
from repro.net.servers import SpeedtestServer, carrier_server_pool
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as trace_span
from repro.net.speedtest import ConnectionMode, SpeedtestHarness, SpeedtestResult
from repro.power.device import DEVICES, DeviceProfile, get_device
from repro.radio.carriers import NETWORKS, CarrierNetwork, get_network
from repro.rrc.parameters import RRC_PARAMETERS
from repro.rrc.probe import ProbeResult, RRCProbe
from repro.traces.schema import WalkingTrace
from repro.traces.walking import WalkingTraceGenerator


def speedtest_setting_job(
    network_key: str,
    device_name: str,
    seed: int,
    repetitions: int = 10,
    servers: Optional[List[SpeedtestServer]] = None,
) -> List[SpeedtestResult]:
    """Speedtest inner loop for one (network, device) setting.

    Engine-dispatchable (registered as ``campaign.speedtest-setting``):
    every (server, mode) pair in the pool, ``repetitions`` times each.
    """
    network = get_network(network_key)
    device = get_device(device_name)
    pool = servers or carrier_server_pool(network.carrier.value)[:5]
    harness = SpeedtestHarness(network=network, device=device, seed=seed)
    results: List[SpeedtestResult] = []
    for server in pool:
        for mode in ConnectionMode:
            results.extend(harness.run_setting(server, mode, repetitions))
    return results


def walking_setting_job(
    network_key: str,
    device_name: str,
    seed: int,
    traces_per_setting: int = 10,
    prefix: str = "",
) -> List[WalkingTrace]:
    """Walking-trace inner loop for one (network, device) setting.

    Engine-dispatchable (registered as ``campaign.walking-setting``).
    """
    generator = WalkingTraceGenerator(
        network=get_network(network_key),
        device=get_device(device_name),
        seed=seed,
    )
    return generator.generate_many(traces_per_setting, prefix=prefix)


@dataclass
class CampaignStats:
    """Table 1-style dataset statistics."""

    speedtest_count: int = 0
    unique_servers: int = 0
    trace_minutes: float = 0.0
    power_minutes: float = 0.0
    km_walked: float = 0.0
    web_page_loads: int = 0
    devices: int = 0
    device_models: int = 0

    def as_rows(self) -> List[tuple]:
        """(label, value) rows matching Table 1's layout."""
        return [
            ("5G Network Performance Tests", self.speedtest_count),
            ("Unique servers tested with", self.unique_servers),
            ("Cumulative time of measurement traces (min)", round(self.trace_minutes, 1)),
            ("Power Measurements (min)", round(self.power_minutes, 1)),
            ("Total kilometers walked", round(self.km_walked, 1)),
            ("# of real Web Page Load Tests", self.web_page_loads),
            ("# of 5G smartphones (and models)", f"{self.devices} ({self.device_models})"),
        ]


@dataclass
class Campaign:
    """End-to-end measurement campaign over the configured networks.

    A deliberately scaled-down default (the real campaign burned 15 TB
    over 4 months); every knob can be raised to paper scale.
    ``workers`` fans the per-setting inner loops out through the
    scenario engine (1 = serial in-process, the reference behaviour).
    """

    seed: int = 0
    # InitVar so the worker count stays execution metadata: exports and
    # equality of a Campaign depend only on what was measured.
    workers: InitVar[int] = 1
    _rng: np.random.Generator = field(init=False, repr=False)
    _workers: int = field(init=False, repr=False, default=1)
    # Leading underscore keeps the registry out of to_jsonable exports
    # (its timer values vary run to run and would break the
    # serial==parallel export identity); read it via `.metrics`.
    _metrics: MetricsRegistry = field(
        init=False, repr=False, compare=False, default_factory=MetricsRegistry
    )
    speedtest_results: List[SpeedtestResult] = field(default_factory=list)
    walking_traces: Dict[str, List[WalkingTrace]] = field(default_factory=dict)
    probe_results: Dict[str, ProbeResult] = field(default_factory=dict)
    web_page_loads: int = 0

    def __post_init__(self, workers: int = 1) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._workers = int(workers)

    @property
    def metrics(self) -> MetricsRegistry:
        """Phase spans + engine job timers accumulated across phases."""
        return self._metrics

    def _dispatch(self, runner: str, job_kwargs: List[Dict]) -> List:
        """Run one engine job per setting; values in submission order.

        Seeds were already drawn (in setting order) before dispatch, so
        results are identical for any worker count. A failed setting
        aborts the phase with every failure listed.
        """
        from repro.engine.pool import execute
        from repro.engine.spec import JobSpec

        jobs = [
            JobSpec(
                runner=runner,
                kwargs=kwargs,
                index=i,
                label=f"{runner}[{kwargs['device_name']}/{kwargs['network_key']}]",
            )
            for i, kwargs in enumerate(job_kwargs)
        ]
        result = execute(jobs, workers=self._workers, metrics=self._metrics)
        result.raise_if_failed()
        return result.values()

    # -- phases ----------------------------------------------------------
    def run_speedtests(
        self,
        network_keys: Optional[List[str]] = None,
        device_names: Optional[List[str]] = None,
        servers: Optional[List[SpeedtestServer]] = None,
        repetitions: int = 10,
    ) -> List[SpeedtestResult]:
        """Speedtest phase: every (device, network, server, mode)."""
        network_keys = network_keys or ["verizon-nsa-mmwave", "tmobile-nsa-lowband"]
        device_names = device_names or ["S20U"]
        job_kwargs: List[Dict] = []
        for net_key in network_keys:
            get_network(net_key)  # fail fast on unknown keys, pre-dispatch
            for device_name in device_names:
                get_device(device_name)
                job_kwargs.append(
                    {
                        "network_key": net_key,
                        "device_name": device_name,
                        "seed": int(self._rng.integers(0, 2**31)),
                        "repetitions": repetitions,
                        "servers": servers,
                    }
                )
        results: List[SpeedtestResult] = []
        with self._metrics.span("campaign.speedtests"), trace_span(
            "campaign.speedtests", settings=len(job_kwargs)
        ):
            for setting_results in self._dispatch(
                "campaign.speedtest-setting", job_kwargs
            ):
                results.extend(setting_results)
        self._metrics.counter("campaign.speedtest_results").inc(len(results))
        self.speedtest_results.extend(results)
        return results

    def run_walking(
        self,
        network_keys: Optional[List[str]] = None,
        device_names: Optional[List[str]] = None,
        traces_per_setting: int = 10,
    ) -> Dict[str, List[WalkingTrace]]:
        """Walking phase: N traces per (carrier, mode, band) setting."""
        network_keys = network_keys or list(RRC_PARAMETERS)
        device_names = device_names or ["S20U"]
        job_kwargs: List[Dict] = []
        for net_key in network_keys:
            get_network(net_key)
            for device_name in device_names:
                device = get_device(device_name)
                if net_key not in device.curves:
                    continue
                setting = f"{device_name}/{net_key}"
                job_kwargs.append(
                    {
                        "network_key": net_key,
                        "device_name": device_name,
                        "seed": int(self._rng.integers(0, 2**31)),
                        "traces_per_setting": traces_per_setting,
                        "prefix": setting,
                    }
                )
        with self._metrics.span("campaign.walking"), trace_span(
            "campaign.walking", settings=len(job_kwargs)
        ):
            dispatched = self._dispatch("campaign.walking-setting", job_kwargs)
        for kwargs, traces in zip(job_kwargs, dispatched):
            setting = kwargs["prefix"]
            self.walking_traces.setdefault(setting, []).extend(traces)
            self._metrics.counter("campaign.walking_traces").inc(len(traces))
        return self.walking_traces

    def run_probes(
        self, network_keys: Optional[List[str]] = None
    ) -> Dict[str, ProbeResult]:
        """RRC-Probe phase over all configured networks."""
        network_keys = network_keys or list(RRC_PARAMETERS)
        with trace_span("campaign.probes", networks=len(network_keys)):
            for net_key in network_keys:
                probe = RRCProbe(
                    RRC_PARAMETERS[net_key],
                    seed=int(self._rng.integers(0, 2**31)),
                )
                self.probe_results[net_key] = probe.sweep(
                    np.arange(1.0, 25.0, 1.0), packets_per_interval=15
                )
        return self.probe_results

    def record_web_loads(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.web_page_loads += count

    # -- reporting ---------------------------------------------------------
    def stats(self) -> CampaignStats:
        """Aggregate Table 1-style statistics for everything run."""
        loop_km = walking_loop().length_m / 1000.0
        n_walks = sum(len(traces) for traces in self.walking_traces.values())
        walk_minutes = sum(
            trace.duration_s / 60.0
            for traces in self.walking_traces.values()
            for trace in traces
        )
        speedtest_minutes = len(self.speedtest_results) * 25.0 / 60.0
        servers = {r.server.name for r in self.speedtest_results}
        return CampaignStats(
            speedtest_count=len(self.speedtest_results),
            unique_servers=len(servers),
            trace_minutes=walk_minutes + speedtest_minutes,
            power_minutes=walk_minutes,
            km_walked=n_walks * loop_km,
            web_page_loads=self.web_page_loads,
            devices=len(DEVICES),
            device_models=len(DEVICES),
        )

    # -- convenience -------------------------------------------------------
    def networks(self) -> List[CarrierNetwork]:
        return list(NETWORKS.values())

    def devices(self) -> List[DeviceProfile]:
        return list(DEVICES.values())
