"""Frequency-band definitions for the carriers studied in the paper.

Verizon's NSA 5G runs mmWave on n261 (28 GHz) / n260 (39 GHz) plus
low-band n5 (850 MHz) via dynamic spectrum sharing; T-Mobile's low-band
5G (NSA and SA) runs on n71 (600 MHz). The paper attributes mmWave's
lower air latency to its wider subcarrier spacing / shorter OFDM symbol
duration (section 3.2), which the ``Band`` model captures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Technology(enum.Enum):
    """Radio access technology."""

    LTE = "LTE"
    NR = "NR"


class BandClass(enum.Enum):
    """Coarse frequency class; drives propagation and latency models."""

    LOW = "low-band"  # < 1 GHz
    MID = "mid-band"  # 1-6 GHz
    MMWAVE = "mmWave"  # > 24 GHz


@dataclass(frozen=True)
class Band:
    """A radio band with the physics the simulation cares about.

    Attributes:
        name: 3GPP band label, e.g. ``"n261"``.
        technology: LTE or NR.
        band_class: low/mid/mmWave classification.
        center_ghz: carrier center frequency in GHz.
        bandwidth_mhz: per-component-carrier channel bandwidth in MHz.
        subcarrier_khz: subcarrier spacing in kHz; mmWave NR uses 120 kHz
            which shortens the OFDM symbol and the slot, lowering air
            latency relative to 15 kHz low-band numerology.
        coverage_km: nominal single-tower coverage radius in km.
    """

    name: str
    technology: Technology
    band_class: BandClass
    center_ghz: float
    bandwidth_mhz: float
    subcarrier_khz: float
    coverage_km: float

    def __post_init__(self) -> None:
        if self.center_ghz <= 0:
            raise ValueError("center_ghz must be positive")
        if self.bandwidth_mhz <= 0:
            raise ValueError("bandwidth_mhz must be positive")
        if self.subcarrier_khz <= 0:
            raise ValueError("subcarrier_khz must be positive")
        if self.coverage_km <= 0:
            raise ValueError("coverage_km must be positive")

    @property
    def symbol_duration_us(self) -> float:
        """OFDM symbol duration in microseconds (1/SCS, cyclic prefix
        ignored)."""
        return 1000.0 / self.subcarrier_khz

    @property
    def slot_duration_ms(self) -> float:
        """NR slot duration: 1 ms at 15 kHz, halving per numerology step."""
        return 1.0 * (15.0 / self.subcarrier_khz)

    @property
    def air_latency_ms(self) -> float:
        """One-way radio access latency contribution in ms.

        Modeled as a small multiple of the slot duration plus a fixed
        processing term; yields the paper's ~6-8 ms low-band vs mmWave
        RTT gap when doubled for round-trip and combined across both
        directions.
        """
        return 1.5 + 3.0 * self.slot_duration_ms

    @property
    def is_mmwave(self) -> bool:
        return self.band_class is BandClass.MMWAVE


# The bands observed in the paper's dataset (section 2).
NR_N261 = Band(
    name="n261",
    technology=Technology.NR,
    band_class=BandClass.MMWAVE,
    center_ghz=28.0,
    bandwidth_mhz=100.0,
    subcarrier_khz=120.0,
    coverage_km=0.35,
)

NR_N260 = Band(
    name="n260",
    technology=Technology.NR,
    band_class=BandClass.MMWAVE,
    center_ghz=39.0,
    bandwidth_mhz=100.0,
    subcarrier_khz=120.0,
    coverage_km=0.30,
)

NR_N71 = Band(
    name="n71",
    technology=Technology.NR,
    band_class=BandClass.LOW,
    center_ghz=0.6,
    bandwidth_mhz=20.0,
    subcarrier_khz=15.0,
    coverage_km=8.0,
)

NR_N5 = Band(
    name="n5",
    technology=Technology.NR,
    band_class=BandClass.LOW,
    center_ghz=0.85,
    bandwidth_mhz=10.0,
    subcarrier_khz=15.0,
    coverage_km=6.0,
)

NR_N41 = Band(
    name="n41",
    technology=Technology.NR,
    band_class=BandClass.MID,
    center_ghz=2.5,
    bandwidth_mhz=100.0,
    subcarrier_khz=30.0,
    coverage_km=1.5,
)

LTE_1900 = Band(
    name="LTE-1900",
    technology=Technology.LTE,
    band_class=BandClass.MID,
    center_ghz=1.9,
    bandwidth_mhz=20.0,
    subcarrier_khz=15.0,
    coverage_km=3.0,
)

ALL_BANDS = (NR_N261, NR_N260, NR_N71, NR_N5, NR_N41, LTE_1900)


def get_band(name: str) -> Band:
    """Look a band up by its 3GPP label (case-insensitive)."""
    for band in ALL_BANDS:
        if band.name.lower() == name.lower():
            return band
    raise KeyError(f"unknown band {name!r}; known: {[b.name for b in ALL_BANDS]}")
