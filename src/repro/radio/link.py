"""Link-rate estimation: RSRP -> achievable PHY throughput.

Appendix A.1 of the paper shows that the UE's modem determines carrier
aggregation (CC count) and therefore peak throughput: Qualcomm X50/X52
modems do 4CC downlink (~2-2.2 Gbps on mmWave), while the X55 in the
S20U does 8CC (~3+ Gbps). :class:`LinkBudget` combines

* a truncated-Shannon spectral-efficiency curve driven by SINR
  (derived from RSRP against a bandwidth-dependent noise floor),
* the number of aggregated component carriers,
* the modem's hard throughput cap,
* the carrier network's observed peak envelope,

to produce the instantaneous achievable rate used by every
throughput-generating simulation in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.obs.trace import span as trace_span
from repro.radio.carriers import CarrierNetwork

# Thermal noise density (dBm/Hz) plus a typical UE noise figure.
_NOISE_DENSITY_DBM_HZ = -174.0
_NOISE_FIGURE_DB = 7.0

# Truncated-Shannon parameters: attenuation and max spectral efficiency
# (bits/s/Hz) approximating 256-QAM MIMO practical limits.
_SHANNON_ATTENUATION = 0.6
_MAX_SPECTRAL_EFFICIENCY = 7.2
_MIN_SINR_DB = -8.0


@dataclass(frozen=True)
class Modem:
    """A UE modem: CC counts and a hard throughput ceiling.

    Attributes:
        name: marketing name, e.g. ``"X55"``.
        dl_carriers: downlink component carriers (4CC vs 8CC).
        ul_carriers: uplink component carriers.
        max_dl_mbps: chipset downlink ceiling.
        max_ul_mbps: chipset uplink ceiling.
    """

    name: str
    dl_carriers: int
    ul_carriers: int
    max_dl_mbps: float
    max_ul_mbps: float

    def __post_init__(self) -> None:
        if self.dl_carriers < 1 or self.ul_carriers < 1:
            raise ValueError("carrier counts must be >= 1")
        if self.max_dl_mbps <= 0 or self.max_ul_mbps <= 0:
            raise ValueError("modem caps must be positive")


# Modems from Appendix A.1.
MODEM_X50 = Modem(name="X50", dl_carriers=4, ul_carriers=1, max_dl_mbps=2000.0, max_ul_mbps=180.0)
MODEM_X52 = Modem(name="X52", dl_carriers=4, ul_carriers=1, max_dl_mbps=2200.0, max_ul_mbps=200.0)
MODEM_X55 = Modem(name="X55", dl_carriers=8, ul_carriers=2, max_dl_mbps=3400.0, max_ul_mbps=260.0)

MODEMS: Dict[str, Modem] = {m.name: m for m in (MODEM_X50, MODEM_X52, MODEM_X55)}


def spectral_efficiency(sinr_db) -> "float | np.ndarray":
    """Truncated-Shannon bits/s/Hz for SINR in dB (scalar or array).

    A true ufunc pipeline: scalar inputs return a float, arrays map
    elementwise in one pass.
    """
    sinr_db = np.asarray(sinr_db, dtype=float)
    sinr = np.power(10.0, sinr_db / 10.0)
    eff = np.minimum(
        _SHANNON_ATTENUATION * np.log2(1.0 + sinr), _MAX_SPECTRAL_EFFICIENCY
    )
    eff = np.where(sinr_db < _MIN_SINR_DB, 0.0, eff)
    if eff.ndim == 0:
        return float(eff)
    return eff


@dataclass
class LinkBudget:
    """Achievable PHY rate for (network, modem) at a given RSRP.

    The returned rates are *radio capacity*: transport-layer behaviour
    (single vs multiple TCP connections, buffer limits) is applied on
    top by :mod:`repro.transport`.
    """

    network: CarrierNetwork
    modem: Modem
    # Derived per-band constants, computed once instead of per sample:
    # the RSRP-matched noise floor and, per direction, the CC count and
    # the CC-shrunk network peak envelope.
    _noise_dbm: float = field(init=False, repr=False)
    _envelope_mbps: Dict[bool, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        subcarrier_hz = self.network.band.subcarrier_khz * 1e3
        self._noise_dbm = (
            _NOISE_DENSITY_DBM_HZ + 10.0 * np.log10(subcarrier_hz) + _NOISE_FIGURE_DB
        )
        self._envelope_mbps = {
            downlink: self._envelope(downlink) for downlink in (True, False)
        }

    def _envelope(self, downlink: bool) -> float:
        """Network peak envelope shrunk for sub-best CC configurations.

        The network peak already reflects the best modem (8CC); the
        observed PX5/S20U ratio (~2.2 vs ~3.1 Gbps for 4CC vs 8CC,
        Fig. 23) is gentler than the raw CC ratio because the anchor
        carriers do most of the work, so we interpolate halfway toward
        the CC ratio.
        """
        cc = self._cc(downlink)
        network_peak = (
            self.network.peak_dl_mbps if downlink else self.network.peak_ul_mbps
        )
        best_cc = 8 if downlink else 2
        if self.network.band.is_mmwave and self.network.supports_ca and cc < best_cc:
            return network_peak * (0.5 + 0.5 * cc / best_cc)
        return network_peak

    def _cc(self, downlink: bool) -> int:
        cc = self.modem.dl_carriers if downlink else self.modem.ul_carriers
        if not self.network.supports_ca:
            return 1
        if not self.network.band.is_mmwave:
            # Low/mid band CA is limited by spectrum holdings, not modem.
            return min(cc, 2)
        return cc

    def sinr_db(self, rsrp_dbm) -> "float | np.ndarray":
        """SINR from RSRP (interference folded into a fixed margin).

        RSRP is defined per resource element, so the matching noise
        floor integrates over one subcarrier, not the whole channel.
        Accepts a scalar or an RSRP series.
        """
        # 12 dB average inter-cell interference + implementation margin.
        sinr = np.asarray(rsrp_dbm, dtype=float) - self._noise_dbm - 12.0
        if sinr.ndim == 0:
            return float(sinr)
        return sinr

    def capacity_mbps(self, rsrp_dbm: float, downlink: bool = True) -> float:
        """Instantaneous achievable rate in Mbps at ``rsrp_dbm``."""
        return float(
            self.capacity_series_mbps(
                np.asarray([rsrp_dbm], dtype=float), downlink=downlink
            )[0]
        )

    def capacity_series_mbps(
        self, rsrp_series_dbm, downlink: bool = True
    ) -> np.ndarray:
        """Achievable rate in Mbps over an RSRP series.

        A single ufunc pipeline (SINR -> spectral efficiency -> CC and
        cap clamping) over the whole array; :meth:`capacity_mbps` is
        the one-sample special case of this kernel, so scalar and
        series paths are identical by construction.
        """
        rsrp_series_dbm = np.asarray(rsrp_series_dbm, dtype=float)
        with trace_span(
            "kernel.link.capacity",
            n=int(rsrp_series_dbm.size),
            downlink=bool(downlink),
        ):
            eff = spectral_efficiency(self.sinr_db(rsrp_series_dbm))
            cc = self._cc(downlink)
            raw = eff * self.network.band.bandwidth_mhz * cc  # bits/s/Hz * MHz * CC
            if not downlink:
                # TDD/UL configurations allocate a minority of slots to UL.
                raw = raw * 0.25
            modem_cap = self.modem.max_dl_mbps if downlink else self.modem.max_ul_mbps
            ceiling = min(modem_cap, self._envelope_mbps[downlink])
            return np.maximum(0.0, np.minimum(raw, ceiling))
