"""Radio substrate: bands, carriers, propagation, signal, towers, link.

This package stands in for the commercial 5G/4G radio networks the paper
measured (Verizon NSA mmWave + low-band DSS, T-Mobile NSA/SA low-band,
and 4G/LTE on both carriers). It provides:

* frequency-band physics (:mod:`repro.radio.bands`),
* carrier/deployment configurations calibrated to the paper's measured
  peaks and latency floors (:mod:`repro.radio.carriers`),
* path-loss and blockage models (:mod:`repro.radio.propagation`),
* RSRP time-series generation (:mod:`repro.radio.signal`),
* tower layouts and cell selection (:mod:`repro.radio.towers`),
* PHY-rate estimation with carrier aggregation and modem caps
  (:mod:`repro.radio.link`).
"""

from repro.radio.bands import (
    Band,
    BandClass,
    LTE_1900,
    NR_N5,
    NR_N41,
    NR_N71,
    NR_N260,
    NR_N261,
    Technology,
)
from repro.radio.carriers import (
    Carrier,
    CarrierNetwork,
    DeploymentMode,
    NETWORKS,
    get_network,
    list_networks,
)
from repro.radio.propagation import (
    BlockageModel,
    PathLossModel,
    los_probability,
)
from repro.radio.signal import RsrpProcess, rsrp_at_distance
from repro.radio.towers import Tower, TowerGrid
from repro.radio.link import LinkBudget, Modem, MODEMS

__all__ = [
    "Band",
    "BandClass",
    "BlockageModel",
    "Carrier",
    "CarrierNetwork",
    "DeploymentMode",
    "LinkBudget",
    "LTE_1900",
    "Modem",
    "MODEMS",
    "NETWORKS",
    "NR_N5",
    "NR_N41",
    "NR_N71",
    "NR_N260",
    "NR_N261",
    "PathLossModel",
    "RsrpProcess",
    "Technology",
    "Tower",
    "TowerGrid",
    "get_network",
    "list_networks",
    "los_probability",
    "rsrp_at_distance",
]
