"""Path loss, line-of-sight probability, and mmWave blockage.

mmWave's short wavelength makes it extremely sensitive to blockage and
distance (paper sections 1, 4.4); low-band propagates far with gentle
loss. We use the standard log-distance path-loss model with
band-class-dependent exponents plus log-normal shadowing, and a simple
two-state (LoS/blocked) Markov blockage process for mmWave that produces
the wild RSRP/throughput swings the paper's walking traces show.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.scan import markov_binary_scan
from repro.radio.bands import Band, BandClass

def free_space_path_loss_db(distance_m: float, freq_ghz: float) -> float:
    """Friis free-space path loss in dB; distance in meters, freq in GHz.

    ``FSPL = 20 log10(d_m) + 20 log10(f_GHz) + 32.44`` (the constant is
    for d in km and f in MHz, and km->m / MHz->GHz shifts cancel).
    """
    if distance_m <= 0:
        raise ValueError("distance_m must be positive")
    if freq_ghz <= 0:
        raise ValueError("freq_ghz must be positive")
    return float(20.0 * np.log10(distance_m) + 20.0 * np.log10(freq_ghz) + 32.44)


def _fspl_db(distance_m: float, freq_ghz: float) -> float:
    return free_space_path_loss_db(distance_m, freq_ghz)


def los_probability(distance_m: float, band_class: BandClass) -> float:
    """Probability that a link at ``distance_m`` is line-of-sight.

    3GPP UMi-style exponential decay for mmWave (LoS becomes unlikely
    beyond a couple hundred meters in urban canyons); low/mid band links
    are modeled as effectively always usable because diffraction carries
    them around obstacles.
    """
    if distance_m < 0:
        raise ValueError("distance_m must be non-negative")
    if band_class is BandClass.MMWAVE:
        d0 = 18.0
        d1 = 63.0
        if distance_m <= d0:
            return 1.0
        return float(
            d0 / distance_m + np.exp(-distance_m / d1) * (1.0 - d0 / distance_m)
        )
    return 1.0


@dataclass
class PathLossModel:
    """Log-distance path loss with shadowing for one band.

    ``PL(d) = FSPL(d0) + 10*n*log10(d/d0) + X_sigma``

    with the exponent ``n`` and shadowing sigma depending on the band
    class and LoS state.
    """

    band: Band
    reference_m: float = 1.0
    # Reference loss (FSPL at reference distance + fixed excess) and the
    # per-LoS-state exponents, derived once instead of per sample.
    _base_db: float = field(init=False, repr=False)
    _exponent: Dict[bool, float] = field(init=False, repr=False)

    # Effective urban exponents, calibrated so that field-typical RSRP
    # ranges emerge (mmWave ~-75 dBm at 50 m falling to ~-95 near the
    # coverage edge; n71 ~-76 at 300 m to ~-117 at 8 km), matching the
    # RSRP axes of the paper's Fig. 13/14.
    _EXPONENTS = {
        (BandClass.MMWAVE, True): 2.5,
        (BandClass.MMWAVE, False): 3.4,
        (BandClass.MID, True): 3.0,
        (BandClass.MID, False): 3.5,
        (BandClass.LOW, True): 2.8,
        (BandClass.LOW, False): 3.2,
    }
    # Fixed excess losses (clutter, body/hand effects, implementation).
    _EXCESS_DB = {
        BandClass.MMWAVE: 29.0,
        BandClass.MID: 15.0,
        BandClass.LOW: 25.0,
    }
    _SHADOW_SIGMA = {
        BandClass.MMWAVE: 4.0,
        BandClass.MID: 3.0,
        BandClass.LOW: 2.0,
    }

    def __post_init__(self) -> None:
        base = _fspl_db(self.reference_m, self.band.center_ghz)
        base += self._EXCESS_DB[self.band.band_class]
        self._base_db = base
        self._exponent = {
            los: self._EXPONENTS[(self.band.band_class, los)] for los in (True, False)
        }

    def path_loss_db(
        self,
        distance_m: float,
        los: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Path loss in dB at ``distance_m``; add shadowing if ``rng``."""
        if distance_m <= 0:
            raise ValueError("distance_m must be positive")
        distance_m = max(distance_m, self.reference_m)
        loss = self._base_db
        loss += 10.0 * self._exponent[los] * np.log10(distance_m / self.reference_m)
        if not los and self.band.is_mmwave:
            loss += 20.0  # body/foliage/building penetration penalty
        if rng is not None:
            loss += rng.normal(0.0, self._SHADOW_SIGMA[self.band.band_class])
        return float(loss)

    def path_loss_db_series(self, distances_m, los: bool = True) -> np.ndarray:
        """Vectorized :meth:`path_loss_db` (no shadowing) over distances."""
        distances_m = np.asarray(distances_m, dtype=float)
        if np.any(distances_m <= 0):
            raise ValueError("distance_m must be positive")
        clipped = np.maximum(distances_m, self.reference_m)
        loss = self._base_db + 10.0 * self._exponent[los] * np.log10(
            clipped / self.reference_m
        )
        if not los and self.band.is_mmwave:
            loss = loss + 20.0
        return loss


@functools.lru_cache(maxsize=None)
def get_path_loss_model(band: Band, reference_m: float = 1.0) -> PathLossModel:
    """Memoized :class:`PathLossModel` per ``(band, reference)``.

    The model is stateless after construction, so hot paths that used
    to build one per call (``rsrp_at_distance``, every
    ``RsrpProcess``) share a single instance instead.
    """
    return PathLossModel(band, reference_m=reference_m)


@dataclass
class BlockageModel:
    """Two-state Markov blockage process for mmWave links.

    At each step (``dt_s`` seconds) a LoS link becomes blocked with a
    rate that grows with mobility speed, and a blocked link clears with
    a fixed recovery rate. Stationary LoS experiments (the paper's
    controlled runs) use speed 0 and essentially never block.
    """

    block_rate_per_m: float = 0.02  # blockage events per meter walked
    recovery_s: float = 2.5  # mean blockage duration

    def transition_probabilities(
        self, speed_mps, dt_s: float
    ) -> Tuple[np.ndarray, float]:
        """Per-step ``(p_block, p_recover)`` for speed scalar or series."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        speed_mps = np.asarray(speed_mps, dtype=float)
        if np.any(speed_mps < 0):
            raise ValueError("speed_mps must be non-negative")
        rate = self.block_rate_per_m * speed_mps
        p_block = 1.0 - np.exp(-rate * dt_s)
        p_recover = 1.0 - float(np.exp(-dt_s / self.recovery_s))
        return p_block, p_recover

    def step(
        self,
        blocked: bool,
        speed_mps: float,
        dt_s: float,
        rng: np.random.Generator,
    ) -> bool:
        """Advance the blockage state by one time step."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if speed_mps < 0:
            raise ValueError("speed_mps must be non-negative")
        if blocked:
            p_recover = 1.0 - np.exp(-dt_s / self.recovery_s)
            return not (rng.random() < p_recover)
        rate = self.block_rate_per_m * speed_mps
        p_block = 1.0 - np.exp(-rate * dt_s)
        return bool(rng.random() < p_block)

    def simulate(
        self,
        duration_s: float,
        speed_mps: float,
        dt_s: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        start_blocked: bool = False,
    ) -> np.ndarray:
        """Boolean blockage series of length ``ceil(duration/dt)``.

        Vectorized: one batched uniform draw plus a Markov scan.
        Bit-identical to stepping :meth:`step` per tick with the same
        generator (the scalar path draws exactly one uniform per tick,
        so the batched draw consumes the same stream).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        steps = int(np.ceil(duration_s / dt_s))
        return self.simulate_from_draws(
            rng.random(steps), speed_mps, dt_s, start_blocked=start_blocked
        )

    def simulate_from_draws(
        self,
        uniforms: np.ndarray,
        speed_mps,
        dt_s: float,
        start_blocked: bool = False,
    ) -> np.ndarray:
        """Blockage series from pre-drawn per-tick uniforms.

        ``speed_mps`` may be a scalar or a per-tick series (walking
        traces have varying speed). Split out from :meth:`simulate` so
        :meth:`RsrpProcess.simulate` can batch its own draws.
        """
        uniforms = np.asarray(uniforms, dtype=float)
        p_block, p_recover = self.transition_probabilities(speed_mps, dt_s)
        p_block = np.broadcast_to(p_block, uniforms.shape)
        return markov_binary_scan(
            next_if_true=uniforms >= p_recover,
            next_if_false=uniforms < p_block,
            init=start_blocked,
        )
