"""RSRP computation and time-series generation.

The paper logs NR-SS-RSRP at 10 Hz during walking experiments and finds
it fluctuates "frequently and wildly" on mmWave (section 4.4, Fig. 13).
We model RSRP as (tx power + antenna gain - path loss) with an AR(1)
mean-reverting fast-fading component whose variance depends on the band
class, plus deep fades during blockage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.radio.bands import Band, BandClass
from repro.radio.propagation import BlockageModel, PathLossModel

# Effective radiated power + beamforming gain, by band class (dBm).
_TX_EIRP_DBM = {
    BandClass.MMWAVE: 58.0,  # high EIRP thanks to beamforming arrays
    BandClass.MID: 46.0,
    BandClass.LOW: 46.0,
}

# AR(1) fast-fading standard deviation (dB).
_FADING_SIGMA = {
    BandClass.MMWAVE: 4.5,
    BandClass.MID: 2.5,
    BandClass.LOW: 1.5,
}

_BLOCKAGE_FADE_DB = 22.0

# Practical RSRP clamp range observed by UEs.
RSRP_MIN_DBM = -140.0
RSRP_MAX_DBM = -60.0


def rsrp_at_distance(
    band: Band,
    distance_m: float,
    los: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Median RSRP (dBm) at a given distance from the serving tower."""
    model = PathLossModel(band)
    loss = model.path_loss_db(distance_m, los=los, rng=rng)
    rsrp = _TX_EIRP_DBM[band.band_class] - loss
    return float(np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM))


@dataclass
class RsrpProcess:
    """Stateful RSRP generator: path loss + AR(1) fading + blockage.

    Call :meth:`step` with the current tower distance and UE speed to
    advance by ``dt_s`` and obtain the next RSRP sample; or use
    :meth:`simulate` for a fixed-trajectory batch.
    """

    band: Band
    dt_s: float = 0.1  # 10 Hz, the paper's network logging rate
    correlation_s: float = 1.5
    seed: Optional[int] = None
    blockage: Optional[BlockageModel] = None
    # Blockage onset/clearance is gradual (a pedestrian or vehicle takes
    # a couple of seconds to fully occlude the beam), which is exactly
    # why PHY-aware predictors like Lumos5G's can anticipate throughput
    # craters from the RSRP trend before they fully land.
    blockage_ramp_s: float = 1.8
    _rng: np.random.Generator = field(init=False, repr=False)
    _fading_db: float = field(init=False, default=0.0)
    _blocked: bool = field(init=False, default=False)
    _block_depth: float = field(init=False, default=0.0)
    _block_severity: float = field(init=False, default=1.0)
    _blockage: BlockageModel = field(init=False, repr=False)
    _pathloss: PathLossModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._blockage = self.blockage or BlockageModel()
        self._pathloss = PathLossModel(self.band)

    @property
    def blocked(self) -> bool:
        """Whether the link is currently in a blockage fade."""
        return self._blocked

    def step(self, distance_m: float, speed_mps: float = 0.0) -> float:
        """Advance one tick and return the RSRP sample in dBm."""
        if self.band.is_mmwave:
            was_blocked = self._blocked
            self._blocked = self._blockage.step(
                self._blocked, speed_mps, self.dt_s, self._rng
            )
            if self._blocked and not was_blocked:
                # Severity is drawn once per blockage event.
                self._block_severity = float(self._rng.uniform(0.5, 1.0))
            # Depth ramps toward the target over blockage_ramp_s.
            target = 1.0 if self._blocked else 0.0
            alpha = 1.0 - float(np.exp(-self.dt_s / self.blockage_ramp_s))
            self._block_depth += (target - self._block_depth) * alpha
        sigma = _FADING_SIGMA[self.band.band_class]
        rho = float(np.exp(-self.dt_s / self.correlation_s))
        innovation = self._rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2))
        self._fading_db = rho * self._fading_db + innovation

        # The full NLoS penalty (exponent change approximated as a fixed
        # extra loss) scales continuously with the blockage depth.
        loss = self._pathloss.path_loss_db(distance_m, los=True)
        rsrp = _TX_EIRP_DBM[self.band.band_class] - loss + self._fading_db
        full_fade = _BLOCKAGE_FADE_DB + 18.0
        rsrp -= full_fade * self._block_depth * self._block_severity
        return float(np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM))

    def simulate(
        self,
        distances_m,
        speed_mps: float = 0.0,
    ) -> np.ndarray:
        """RSRP series for a whole trajectory of tower distances."""
        distances_m = np.asarray(distances_m, dtype=float)
        if distances_m.ndim != 1 or distances_m.shape[0] == 0:
            raise ValueError("distances_m must be a non-empty 1-D array")
        return np.array([self.step(d, speed_mps) for d in distances_m])
