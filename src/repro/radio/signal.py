"""RSRP computation and time-series generation.

The paper logs NR-SS-RSRP at 10 Hz during walking experiments and finds
it fluctuates "frequently and wildly" on mmWave (section 4.4, Fig. 13).
We model RSRP as (tx power + antenna gain - path loss) with an AR(1)
mean-reverting fast-fading component whose variance depends on the band
class, plus deep fades during blockage.

Two code paths produce samples:

* :meth:`RsrpProcess.step` — the streaming per-tick API, unchanged
  from the original scalar implementation (bit-identical, including
  its RNG draw order: blockage uniform, optional severity uniform,
  fading normal, interleaved per tick).
* :meth:`RsrpProcess.simulate` — the vectorized batch kernel: O(1)
  batched RNG draws and array scans for a whole trajectory. Its draw
  order necessarily differs from streaming (all blockage uniforms,
  then per-onset severities, then fading normals), so a seeded
  ``simulate`` is *not* sample-identical to the same seed stepped
  through :meth:`step`; it matches the batched-order scalar reference
  in :mod:`repro.kernels.reference` to the scan tolerance documented
  in ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kernels.scan import ar1_scan, leaky_ramp_scan
from repro.obs.trace import span as trace_span
from repro.radio.bands import Band, BandClass
from repro.radio.propagation import BlockageModel, PathLossModel, get_path_loss_model

# Effective radiated power + beamforming gain, by band class (dBm).
_TX_EIRP_DBM = {
    BandClass.MMWAVE: 58.0,  # high EIRP thanks to beamforming arrays
    BandClass.MID: 46.0,
    BandClass.LOW: 46.0,
}

# AR(1) fast-fading standard deviation (dB).
_FADING_SIGMA = {
    BandClass.MMWAVE: 4.5,
    BandClass.MID: 2.5,
    BandClass.LOW: 1.5,
}

_BLOCKAGE_FADE_DB = 22.0

# Practical RSRP clamp range observed by UEs.
RSRP_MIN_DBM = -140.0
RSRP_MAX_DBM = -60.0


def rsrp_at_distance(
    band: Band,
    distance_m: float,
    los: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Median RSRP (dBm) at a given distance from the serving tower."""
    model = get_path_loss_model(band)
    loss = model.path_loss_db(distance_m, los=los, rng=rng)
    rsrp = _TX_EIRP_DBM[band.band_class] - loss
    return float(np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM))


@dataclass
class RsrpProcess:
    """Stateful RSRP generator: path loss + AR(1) fading + blockage.

    Call :meth:`step` with the current tower distance and UE speed to
    advance by ``dt_s`` and obtain the next RSRP sample; or use
    :meth:`simulate` to generate a whole fixed-trajectory series with
    batched RNG draws and array scans (no per-tick Python).
    """

    band: Band
    dt_s: float = 0.1  # 10 Hz, the paper's network logging rate
    correlation_s: float = 1.5
    seed: Optional[int] = None
    blockage: Optional[BlockageModel] = None
    # Blockage onset/clearance is gradual (a pedestrian or vehicle takes
    # a couple of seconds to fully occlude the beam), which is exactly
    # why PHY-aware predictors like Lumos5G's can anticipate throughput
    # craters from the RSRP trend before they fully land.
    blockage_ramp_s: float = 1.8
    _rng: np.random.Generator = field(init=False, repr=False)
    _fading_db: float = field(init=False, default=0.0)
    _blocked: bool = field(init=False, default=False)
    _block_depth: float = field(init=False, default=0.0)
    _block_severity: float = field(init=False, default=1.0)
    _blockage: BlockageModel = field(init=False, repr=False)
    _pathloss: PathLossModel = field(init=False, repr=False)
    # Per-step constants hoisted out of the tick loop: the AR(1)
    # coefficient, the matched innovation sigma, and the blockage
    # depth-ramp step, all fixed once dt is known.
    _rho: float = field(init=False, repr=False)
    _sigma_eff: float = field(init=False, repr=False)
    _ramp_alpha: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._blockage = self.blockage or BlockageModel()
        self._pathloss = get_path_loss_model(self.band)
        sigma = _FADING_SIGMA[self.band.band_class]
        self._rho = float(np.exp(-self.dt_s / self.correlation_s))
        self._sigma_eff = float(sigma * np.sqrt(1.0 - self._rho**2))
        self._ramp_alpha = 1.0 - float(np.exp(-self.dt_s / self.blockage_ramp_s))

    @property
    def blocked(self) -> bool:
        """Whether the link is currently in a blockage fade."""
        return self._blocked

    def step(self, distance_m: float, speed_mps: float = 0.0) -> float:
        """Advance one tick and return the RSRP sample in dBm."""
        if self.band.is_mmwave:
            was_blocked = self._blocked
            self._blocked = self._blockage.step(
                self._blocked, speed_mps, self.dt_s, self._rng
            )
            if self._blocked and not was_blocked:
                # Severity is drawn once per blockage event.
                self._block_severity = float(self._rng.uniform(0.5, 1.0))
            # Depth ramps toward the target over blockage_ramp_s.
            target = 1.0 if self._blocked else 0.0
            self._block_depth += (target - self._block_depth) * self._ramp_alpha
        innovation = self._rng.normal(0.0, self._sigma_eff)
        self._fading_db = self._rho * self._fading_db + innovation

        # The full NLoS penalty (exponent change approximated as a fixed
        # extra loss) scales continuously with the blockage depth.
        loss = self._pathloss.path_loss_db(distance_m, los=True)
        rsrp = _TX_EIRP_DBM[self.band.band_class] - loss + self._fading_db
        full_fade = _BLOCKAGE_FADE_DB + 18.0
        rsrp -= full_fade * self._block_depth * self._block_severity
        return float(np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM))

    def simulate(
        self,
        distances_m,
        speed_mps=0.0,
    ) -> np.ndarray:
        """RSRP series for a whole trajectory of tower distances.

        ``speed_mps`` may be a scalar or a per-tick series. The kernel
        is array-at-a-time: three batched RNG draws (blockage uniforms,
        per-onset severities, fading normals), a Markov scan for the
        blockage chain, and AR(1) scans for the depth ramp and fading —
        no per-tick Python. Continues from, and updates, the process
        state, so ``step``/``simulate`` calls can be mixed.

        Draw order differs from repeated :meth:`step` (see the module
        docstring); equivalence to the batched-order scalar reference
        is property-tested to the documented scan tolerance.
        """
        distances_m = np.asarray(distances_m, dtype=float)
        if distances_m.ndim != 1 or distances_m.shape[0] == 0:
            raise ValueError("distances_m must be a non-empty 1-D array")
        n = distances_m.shape[0]
        with trace_span("kernel.rsrp.simulate", n=int(n), band=self.band.name):
            return self._simulate_batch(distances_m, speed_mps, n)

    def _simulate_batch(self, distances_m, speed_mps, n) -> np.ndarray:
        speeds = np.broadcast_to(np.asarray(speed_mps, dtype=float), (n,))

        if self.band.is_mmwave:
            blocked = self._blockage.simulate_from_draws(
                self._rng.random(n), speeds, self.dt_s, start_blocked=self._blocked
            )
            # One severity per blockage event, held until the next onset.
            prev = np.concatenate(([self._blocked], blocked[:-1]))
            onsets = blocked & ~prev
            severities = self._rng.uniform(0.5, 1.0, size=int(onsets.sum()))
            severity = _hold_from_events(
                severities, onsets, initial=self._block_severity
            )
            depth = leaky_ramp_scan(
                self._ramp_alpha, blocked.astype(float), init=self._block_depth
            )
        else:
            blocked = np.zeros(n, dtype=bool)
            severity = np.full(n, self._block_severity)
            depth = np.full(n, self._block_depth)

        innovations = self._rng.normal(0.0, self._sigma_eff, size=n)
        fading = ar1_scan(self._rho, innovations, init=self._fading_db)

        loss = self._pathloss.path_loss_db_series(distances_m, los=True)
        rsrp = _TX_EIRP_DBM[self.band.band_class] - loss + fading
        full_fade = _BLOCKAGE_FADE_DB + 18.0
        rsrp -= full_fade * depth * severity

        self._blocked = bool(blocked[-1])
        self._block_depth = float(depth[-1])
        self._block_severity = float(severity[-1])
        self._fading_db = float(fading[-1])
        return np.clip(rsrp, RSRP_MIN_DBM, RSRP_MAX_DBM)


def _hold_from_events(
    values: np.ndarray, onsets: np.ndarray, initial: float
) -> np.ndarray:
    """Piecewise-constant series: ``initial`` until the first onset,
    then ``values[k]`` from the k-th onset until the next."""
    n = onsets.shape[0]
    # Event ordinal at each tick: 0 before the first onset, k after the
    # k-th. Indexing a values array prefixed with the initial value.
    ordinal = np.cumsum(onsets)
    return np.concatenate(([initial], values))[ordinal]
