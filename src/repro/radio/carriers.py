"""Carrier and deployment configurations calibrated to the paper.

Two US carriers are modeled exactly as in section 2:

* **Verizon** — NSA mmWave (n261/n260) plus NSA low-band (n5, via
  dynamic spectrum sharing), and 4G/LTE.
* **T-Mobile** — low-band (n71) 5G in both NSA and SA modes, and 4G/LTE.

Each :class:`CarrierNetwork` carries the calibrated performance envelope
of that deployment: peak downlink/uplink throughput (the 95th-percentile
"peak metric" methodology of section 3.1), the RTT floor near a
co-located server, and whether carrier aggregation is available (the
paper attributes SA's halved throughput to CA not yet being supported,
section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.radio.bands import (
    Band,
    LTE_1900,
    NR_N5,
    NR_N71,
    NR_N261,
    Technology,
)


class Carrier(enum.Enum):
    """Mobile network operator."""

    VERIZON = "Verizon"
    TMOBILE = "T-Mobile"


class DeploymentMode(enum.Enum):
    """5G deployment architecture (plus plain LTE as a baseline)."""

    NSA = "NSA"  # 5G data plane, 4G control plane (EN-DC)
    SA = "SA"  # standalone 5G core
    LTE = "LTE"  # 4G only


@dataclass(frozen=True)
class CarrierNetwork:
    """One (carrier, deployment, band) combination from the study.

    Attributes:
        key: stable identifier used throughout the library, e.g.
            ``"verizon-nsa-mmwave"``.
        carrier: operating carrier.
        mode: deployment mode.
        band: primary radio band.
        peak_dl_mbps: peak (95th percentile) downlink throughput with
            multiple connections and a nearby carrier-hosted server.
        peak_ul_mbps: peak uplink throughput under the same conditions.
        rtt_floor_ms: minimum observed RTT against the closest
            carrier-hosted server (~3 km in the paper; ~6 ms on mmWave).
        supports_ca: whether carrier aggregation is available. SA n71
            lacked CA during the study, halving throughput vs NSA.
        dss: whether the 5G carrier shares spectrum with LTE (Verizon
            low-band).
    """

    key: str
    carrier: Carrier
    mode: DeploymentMode
    band: Band
    peak_dl_mbps: float
    peak_ul_mbps: float
    rtt_floor_ms: float
    supports_ca: bool = True
    dss: bool = False

    def __post_init__(self) -> None:
        if self.peak_dl_mbps <= 0 or self.peak_ul_mbps <= 0:
            raise ValueError("peak throughput must be positive")
        if self.rtt_floor_ms <= 0:
            raise ValueError("rtt_floor_ms must be positive")
        if self.mode is DeploymentMode.LTE and self.band.technology is not Technology.LTE:
            raise ValueError("LTE deployment must use an LTE band")

    @property
    def is_5g(self) -> bool:
        return self.mode is not DeploymentMode.LTE

    @property
    def is_mmwave(self) -> bool:
        return self.band.is_mmwave

    @property
    def label(self) -> str:
        """Display label used in figures, e.g. ``"Verizon NSA mmWave"``."""
        if self.mode is DeploymentMode.LTE:
            return f"{self.carrier.value} 4G"
        return f"{self.carrier.value} {self.mode.value} {self.band.band_class.value}"


# Calibration: peak rates and RTT floors from section 3.2 (S20U, 8CC for
# mmWave ~3 Gbps DL / ~220 Mbps UL; T-Mobile NSA n71 ~200/100; SA at
# roughly half of NSA; LTE baselines from Fig. 2's LTE curve).
VERIZON_NSA_MMWAVE = CarrierNetwork(
    key="verizon-nsa-mmwave",
    carrier=Carrier.VERIZON,
    mode=DeploymentMode.NSA,
    band=NR_N261,
    peak_dl_mbps=3100.0,
    peak_ul_mbps=220.0,
    rtt_floor_ms=6.0,
)

VERIZON_NSA_LOWBAND = CarrierNetwork(
    key="verizon-nsa-lowband",
    carrier=Carrier.VERIZON,
    mode=DeploymentMode.NSA,
    band=NR_N5,
    peak_dl_mbps=220.0,
    peak_ul_mbps=60.0,
    rtt_floor_ms=13.0,
    dss=True,
)

VERIZON_LTE = CarrierNetwork(
    key="verizon-lte",
    carrier=Carrier.VERIZON,
    mode=DeploymentMode.LTE,
    band=LTE_1900,
    peak_dl_mbps=180.0,
    peak_ul_mbps=50.0,
    rtt_floor_ms=21.0,
)

TMOBILE_NSA_LOWBAND = CarrierNetwork(
    key="tmobile-nsa-lowband",
    carrier=Carrier.TMOBILE,
    mode=DeploymentMode.NSA,
    band=NR_N71,
    peak_dl_mbps=210.0,
    peak_ul_mbps=100.0,
    rtt_floor_ms=13.0,
)

TMOBILE_SA_LOWBAND = CarrierNetwork(
    key="tmobile-sa-lowband",
    carrier=Carrier.TMOBILE,
    mode=DeploymentMode.SA,
    band=NR_N71,
    peak_dl_mbps=105.0,
    peak_ul_mbps=50.0,
    rtt_floor_ms=13.0,
    supports_ca=False,
)

TMOBILE_LTE = CarrierNetwork(
    key="tmobile-lte",
    carrier=Carrier.TMOBILE,
    mode=DeploymentMode.LTE,
    band=LTE_1900,
    peak_dl_mbps=150.0,
    peak_ul_mbps=45.0,
    rtt_floor_ms=21.0,
)

NETWORKS: Dict[str, CarrierNetwork] = {
    network.key: network
    for network in (
        VERIZON_NSA_MMWAVE,
        VERIZON_NSA_LOWBAND,
        VERIZON_LTE,
        TMOBILE_NSA_LOWBAND,
        TMOBILE_SA_LOWBAND,
        TMOBILE_LTE,
    )
}


def get_network(key: str) -> CarrierNetwork:
    """Look a carrier network up by key, e.g. ``"verizon-nsa-mmwave"``."""
    try:
        return NETWORKS[key]
    except KeyError:
        raise KeyError(
            f"unknown network {key!r}; known: {sorted(NETWORKS)}"
        ) from None


def list_networks(carrier: Carrier = None, mode: DeploymentMode = None) -> List[CarrierNetwork]:
    """List configured networks, optionally filtered by carrier/mode."""
    result = []
    for network in NETWORKS.values():
        if carrier is not None and network.carrier is not carrier:
            continue
        if mode is not None and network.mode is not mode:
            continue
        result.append(network)
    return result
