"""Tower layouts, coverage, and serving-cell selection.

The paper's walking loop contained three mmWave towers, each with three
directional panels, while low-band coverage was omnipresent (section
4.1). :class:`TowerGrid` models a deployment as a set of towers on a
plane with per-band coverage radii, and answers "which tower serves the
UE here, and at what distance" — the primitive behind handoff counting
(Fig. 9) and walking-trace RSRP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.radio.bands import Band


@dataclass(frozen=True)
class Tower:
    """A cell tower at planar coordinates (meters), serving one band."""

    tower_id: str
    x_m: float
    y_m: float
    band: Band

    def distance_to(self, x_m: float, y_m: float) -> float:
        """Euclidean distance in meters to a UE position."""
        return float(np.hypot(self.x_m - x_m, self.y_m - y_m))

    @property
    def coverage_m(self) -> float:
        return self.band.coverage_km * 1000.0


@dataclass
class TowerGrid:
    """A set of towers with nearest-in-coverage serving-cell selection."""

    towers: List[Tower] = field(default_factory=list)

    def add(self, tower: Tower) -> None:
        if any(existing.tower_id == tower.tower_id for existing in self.towers):
            raise ValueError(f"duplicate tower id {tower.tower_id!r}")
        self.towers.append(tower)

    def towers_for_band(self, band: Band) -> List[Tower]:
        return [tower for tower in self.towers if tower.band == band]

    def serving_tower(
        self, x_m: float, y_m: float, band: Band
    ) -> Optional[Tuple[Tower, float]]:
        """Closest in-coverage tower of ``band``; None if out of coverage.

        Returns ``(tower, distance_m)``.
        """
        best: Optional[Tuple[Tower, float]] = None
        for tower in self.towers_for_band(band):
            distance = tower.distance_to(x_m, y_m)
            if distance > tower.coverage_m:
                continue
            if best is None or distance < best[1]:
                best = (tower, distance)
        return best

    def serving_distances(
        self, x_series, y_series, band: Band, default_m: float
    ) -> np.ndarray:
        """Vectorized serving-tower *distance* along a whole trajectory.

        For each position, the distance to the closest in-coverage
        tower of ``band``, or ``default_m`` when no tower covers it —
        the same values :meth:`serving_tower` yields point by point
        (ties return the same distance either way).
        """
        x_series = np.asarray(x_series, dtype=float)
        y_series = np.asarray(y_series, dtype=float)
        towers = self.towers_for_band(band)
        if not towers:
            return np.full(x_series.shape, float(default_m))
        distances = np.hypot(
            np.array([[t.x_m] for t in towers]) - x_series,
            np.array([[t.y_m] for t in towers]) - y_series,
        )
        coverage = np.array([[t.coverage_m] for t in towers])
        distances = np.where(distances > coverage, np.inf, distances)
        best = distances.min(axis=0)
        return np.where(np.isinf(best), float(default_m), best)

    @staticmethod
    def uniform_grid(
        band: Band,
        extent_m: float,
        spacing_m: float,
        prefix: str = "tower",
    ) -> "TowerGrid":
        """Square grid of towers covering ``[0, extent_m]^2``."""
        if extent_m <= 0 or spacing_m <= 0:
            raise ValueError("extent_m and spacing_m must be positive")
        grid = TowerGrid()
        index = 0
        positions = np.arange(spacing_m / 2.0, extent_m, spacing_m)
        for x in positions:
            for y in positions:
                grid.add(
                    Tower(
                        tower_id=f"{prefix}-{band.name}-{index}",
                        x_m=float(x),
                        y_m=float(y),
                        band=band,
                    )
                )
                index += 1
        return grid

    @staticmethod
    def along_route(
        band: Band,
        waypoints: Sequence[Tuple[float, float]],
        count: int,
        jitter_m: float = 0.0,
        seed: Optional[int] = None,
        prefix: str = "tower",
    ) -> "TowerGrid":
        """Place ``count`` towers evenly along a polyline route.

        Mirrors the paper's walking loop with its three mmWave towers.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        rng = np.random.default_rng(seed)
        points = np.asarray(waypoints, dtype=float)
        seglens = np.hypot(*(np.diff(points, axis=0).T))
        cumulative = np.concatenate([[0.0], np.cumsum(seglens)])
        total = cumulative[-1]
        grid = TowerGrid()
        for index in range(count):
            target = total * (index + 0.5) / count
            seg = int(np.searchsorted(cumulative, target, side="right") - 1)
            seg = min(seg, len(seglens) - 1)
            frac = (target - cumulative[seg]) / max(seglens[seg], 1e-9)
            position = points[seg] + frac * (points[seg + 1] - points[seg])
            if jitter_m > 0:
                position = position + rng.normal(0.0, jitter_m, size=2)
            grid.add(
                Tower(
                    tower_id=f"{prefix}-{band.name}-{index}",
                    x_m=float(position[0]),
                    y_m=float(position[1]),
                    band=band,
                )
            )
        return grid
