"""Tower layouts, coverage, and serving-cell selection.

The paper's walking loop contained three mmWave towers, each with three
directional panels, while low-band coverage was omnipresent (section
4.1). :class:`TowerGrid` models a deployment as a set of towers on a
plane with per-band coverage radii, and answers "which tower serves the
UE here, and at what distance" — the primitive behind handoff counting
(Fig. 9) and walking-trace RSRP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.radio.bands import Band


@dataclass(frozen=True)
class Tower:
    """A cell tower at planar coordinates (meters), serving one band."""

    tower_id: str
    x_m: float
    y_m: float
    band: Band

    def distance_to(self, x_m: float, y_m: float) -> float:
        """Euclidean distance in meters to a UE position."""
        return float(np.hypot(self.x_m - x_m, self.y_m - y_m))

    @property
    def coverage_m(self) -> float:
        return self.band.coverage_km * 1000.0


@dataclass
class TowerGrid:
    """A set of towers with nearest-in-coverage serving-cell selection."""

    towers: List[Tower] = field(default_factory=list)
    # Duplicate-id membership lives in a set so building a city-scale
    # grid is O(n), not the O(n^2) a per-add list scan made it.
    _ids: set = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        for tower in self.towers:
            if tower.tower_id in self._ids:
                raise ValueError(f"duplicate tower id {tower.tower_id!r}")
            self._ids.add(tower.tower_id)

    def add(self, tower: Tower) -> None:
        if tower.tower_id in self._ids:
            raise ValueError(f"duplicate tower id {tower.tower_id!r}")
        self._ids.add(tower.tower_id)
        self.towers.append(tower)

    def towers_for_band(self, band: Band) -> List[Tower]:
        return [tower for tower in self.towers if tower.band == band]

    def serving_tower(
        self, x_m: float, y_m: float, band: Band
    ) -> Optional[Tuple[Tower, float]]:
        """Closest in-coverage tower of ``band``; None if out of coverage.

        Returns ``(tower, distance_m)``.
        """
        best: Optional[Tuple[Tower, float]] = None
        for tower in self.towers_for_band(band):
            distance = tower.distance_to(x_m, y_m)
            if distance > tower.coverage_m:
                continue
            if best is None or distance < best[1]:
                best = (tower, distance)
        return best

    # Budget for the dense (n_towers x chunk) scratch block evaluated
    # per chunk of samples: ~8 MiB of float64. Chunking bounds peak
    # memory on city-scale grids x million-sample trajectories without
    # changing a single output bit (each sample's min is computed from
    # exactly the same per-tower distances either way).
    _CHUNK_ELEMS = 1 << 20

    def serving_distances(
        self, x_series, y_series, band: Band, default_m: float
    ) -> np.ndarray:
        """Vectorized serving-tower *distance* along a whole trajectory.

        For each position, the distance to the closest in-coverage
        tower of ``band``, or ``default_m`` when no tower covers it —
        the same values :meth:`serving_tower` yields point by point
        (ties return the same distance either way). Accepts sample
        arrays of any shape (the output matches it); evaluation is
        chunked so peak scratch memory stays bounded by
        ``_CHUNK_ELEMS`` floats rather than ``n_towers * n_samples``.
        """
        x_series = np.asarray(x_series, dtype=float)
        y_series = np.asarray(y_series, dtype=float)
        towers = self.towers_for_band(band)
        if not towers:
            return np.full(x_series.shape, float(default_m))
        shape = x_series.shape
        x_flat = x_series.reshape(-1)
        y_flat = y_series.reshape(-1)
        tx = np.array([[t.x_m] for t in towers])
        ty = np.array([[t.y_m] for t in towers])
        coverage = np.array([[t.coverage_m] for t in towers])
        chunk = max(1, self._CHUNK_ELEMS // len(towers))
        best = np.empty(x_flat.shape[0], dtype=float)
        for start in range(0, x_flat.shape[0], chunk):
            stop = start + chunk
            distances = np.hypot(
                tx - x_flat[start:stop], ty - y_flat[start:stop]
            )
            distances = np.where(distances > coverage, np.inf, distances)
            best[start:stop] = distances.min(axis=0)
        return np.where(
            np.isinf(best), float(default_m), best
        ).reshape(shape)

    @staticmethod
    def uniform_grid(
        band: Band,
        extent_m: float,
        spacing_m: float,
        prefix: str = "tower",
    ) -> "TowerGrid":
        """Square grid of towers covering ``[0, extent_m]^2``."""
        if extent_m <= 0 or spacing_m <= 0:
            raise ValueError("extent_m and spacing_m must be positive")
        grid = TowerGrid()
        index = 0
        positions = np.arange(spacing_m / 2.0, extent_m, spacing_m)
        for x in positions:
            for y in positions:
                grid.add(
                    Tower(
                        tower_id=f"{prefix}-{band.name}-{index}",
                        x_m=float(x),
                        y_m=float(y),
                        band=band,
                    )
                )
                index += 1
        return grid

    @staticmethod
    def along_route(
        band: Band,
        waypoints: Sequence[Tuple[float, float]],
        count: int,
        jitter_m: float = 0.0,
        seed: Optional[int] = None,
        prefix: str = "tower",
    ) -> "TowerGrid":
        """Place ``count`` towers evenly along a polyline route.

        Mirrors the paper's walking loop with its three mmWave towers.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        rng = np.random.default_rng(seed)
        points = np.asarray(waypoints, dtype=float)
        seglens = np.hypot(*(np.diff(points, axis=0).T))
        cumulative = np.concatenate([[0.0], np.cumsum(seglens)])
        total = cumulative[-1]
        grid = TowerGrid()
        for index in range(count):
            target = total * (index + 0.5) / count
            seg = int(np.searchsorted(cumulative, target, side="right") - 1)
            seg = min(seg, len(seglens) - 1)
            frac = (target - cumulative[seg]) / max(seglens[seg], 1e-9)
            position = points[seg] + frac * (points[seg + 1] - points[seg])
            if jitter_m > 0:
                position = position + rng.normal(0.0, jitter_m, size=2)
            grid.add(
                Tower(
                    tower_id=f"{prefix}-{band.name}-{index}",
                    x_m=float(position[0]),
                    y_m=float(position[1]),
                    band=band,
                )
            )
        return grid
