"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    if not headers:
        raise ValueError("headers must not be empty")
    string_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        string_rows.append(
            [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in string_rows))
        if string_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
