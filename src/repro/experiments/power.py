"""Power experiments: Fig. 11/12/13/14/26/27, Table 8."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.energy import (
    efficiency_curve,
    find_crossover,
    fit_power_slope,
)
from repro.net.iperf import IperfUdp
from repro.power.device import get_device
from repro.power.monsoon import MonsoonMonitor
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator


def _controlled_sweep(
    device_name: str,
    network_key: str,
    targets_mbps: List[float],
    downlink: bool,
    duration_s: float,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """iPerf + Monsoon: (achieved throughput, radio power) per target."""
    device = get_device(device_name)
    network = get_network(network_key)
    iperf = IperfUdp(network=network, device=device, seed=seed)
    monsoon = MonsoonMonitor(rate_hz=500.0, noise_mw=2.0, seed=seed)
    curve = device.curve(network_key)
    throughputs = []
    powers = []
    for target in targets_mbps:
        result = iperf.run(target, duration_s=duration_s, downlink=downlink)
        rates = result.achieved_mbps
        rsrps = result.rsrp_dbm

        def power_fn(t: float) -> float:
            index = min(int(t / result.interval_s), rates.shape[0] - 1)
            if downlink:
                return curve.power_mw(dl_mbps=rates[index], rsrp_dbm=rsrps[index])
            return curve.power_mw(ul_mbps=rates[index], rsrp_dbm=rsrps[index])

        trace = monsoon.measure(power_fn, duration_s=duration_s)
        throughputs.append(result.mean_mbps)
        powers.append(trace.average_mw())
    return np.array(throughputs), np.array(powers)


def run_throughput_power(
    device_name: str = "S20U",
    network_keys: Optional[List[str]] = None,
    n_points: int = 8,
    duration_s: float = 5.0,
    seed: int = 0,
) -> Dict:
    """Fig. 11/26 + Table 8: controlled throughput-power sweeps.

    Returns per-network sweep series, fitted slopes, and pairwise
    crossover points.
    """
    network_keys = network_keys or [
        "verizon-nsa-mmwave",
        "verizon-nsa-lowband",
        "verizon-lte",
    ]
    device = get_device(device_name)
    sweeps: Dict[str, Dict] = {}
    for key in network_keys:
        network = get_network(key)
        dl_targets = list(np.linspace(10.0, network.peak_dl_mbps * 0.75, n_points))
        ul_targets = list(np.linspace(5.0, network.peak_ul_mbps * 0.85, n_points))
        dl_t, dl_p = _controlled_sweep(
            device_name, key, dl_targets, True, duration_s, seed
        )
        ul_t, ul_p = _controlled_sweep(
            device_name, key, ul_targets, False, duration_s, seed + 1
        )
        dl_slope, dl_intercept = fit_power_slope(dl_t, dl_p)
        ul_slope, ul_intercept = fit_power_slope(ul_t, ul_p)
        sweeps[key] = {
            "dl": {"throughput": dl_t, "power_mw": dl_p, "slope": dl_slope, "intercept": dl_intercept},
            "ul": {"throughput": ul_t, "power_mw": ul_p, "slope": ul_slope, "intercept": ul_intercept},
        }

    crossovers = {}
    keys = list(network_keys)
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            for direction in ("dl", "ul"):
                sa = sweeps[a][direction]
                sb = sweeps[b][direction]
                # Intersect the two fitted lines.
                denom = sb["slope"] - sa["slope"]
                if abs(denom) < 1e-12:
                    crossovers[(a, b, direction)] = None
                    continue
                crossing = (sa["intercept"] - sb["intercept"]) / denom
                crossovers[(a, b, direction)] = (
                    float(crossing) if crossing > 0 else None
                )
    return {"device": device_name, "sweeps": sweeps, "crossovers": crossovers}


def run_energy_efficiency(
    throughput_power: Optional[Dict] = None, **kwargs
) -> Dict:
    """Fig. 12/27: per-bit energy curves derived from the Fig. 11 data."""
    data = throughput_power or run_throughput_power(**kwargs)
    curves = {}
    for key, sweep in data["sweeps"].items():
        for direction in ("dl", "ul"):
            t, e = efficiency_curve(
                sweep[direction]["throughput"], sweep[direction]["power_mw"]
            )
            curves[(key, direction)] = {"throughput": t, "efficiency": e}
    return {"device": data["device"], "curves": curves}


def run_walking_power(
    device_name: str = "S10",
    network_key: str = "verizon-nsa-mmwave",
    city: str = "Ann Arbor",
    n_traces: int = 4,
    seed: int = 5,
    rsrp_bins: Optional[List[Tuple[float, float]]] = None,
) -> Dict:
    """Fig. 13/14: power-RSRP-throughput scatter + efficiency by RSRP bin."""
    generator = WalkingTraceGenerator(
        network=get_network(network_key),
        device=get_device(device_name),
        city=city,
        seed=seed,
    )
    traces = generator.generate_many(n_traces)
    rsrp = np.concatenate([t.rsrp_dbm for t in traces])
    throughput = np.concatenate([t.dl_mbps for t in traces])
    power = np.concatenate([t.power_mw for t in traces])

    rsrp_bins = rsrp_bins or [
        (-110.0, -105.0),
        (-105.0, -100.0),
        (-100.0, -95.0),
        (-95.0, -90.0),
        (-90.0, -85.0),
        (-85.0, -80.0),
        (-80.0, -75.0),
    ]
    bins = []
    for low, high in rsrp_bins:
        mask = (rsrp >= low) & (rsrp < high) & (throughput > 1.0)
        if not np.any(mask):
            bins.append({"bin": (low, high), "n": 0, "efficiency": float("nan")})
            continue
        efficiency = power[mask] / throughput[mask]
        bins.append(
            {
                "bin": (low, high),
                "n": int(mask.sum()),
                "efficiency": float(np.median(efficiency)),
            }
        )
    return {
        "scatter": {"rsrp_dbm": rsrp, "throughput_mbps": throughput, "power_mw": power},
        "bins": bins,
        "device": device_name,
        "network": network_key,
        "city": city,
    }
