"""Experiment runners: one per paper table/figure.

Each ``run_*`` function reproduces one artifact of the paper's
evaluation and returns a plain dict of rows/series (no plotting
dependency); ``format_table`` renders any runner output for terminals.
The benchmarks in ``benchmarks/`` call these runners and assert the
paper's qualitative shape (who wins, where crossovers fall).

| Runner | Paper artifact |
|---|---|
| ``run_table1_campaign`` | Table 1 |
| ``run_latency_vs_distance`` | Fig. 1, 2, 5 |
| ``run_throughput_vs_distance`` | Fig. 3, 4, 6, 7 |
| ``run_azure_transport`` | Fig. 8 |
| ``run_server_survey`` | Fig. 24 |
| ``run_carrier_aggregation`` | Fig. 23 |
| ``run_handoff_drive`` | Fig. 9 |
| ``run_rrc_inference`` | Fig. 10, 25; Table 7 |
| ``run_tail_power`` | Table 2 |
| ``run_throughput_power`` | Fig. 11, 26; Table 8 |
| ``run_energy_efficiency`` | Fig. 12, 27 |
| ``run_walking_power`` | Fig. 13, 14 |
| ``run_power_models`` | Fig. 15 |
| ``run_software_monitor`` | Fig. 16; Tables 3, 9 |
| ``run_abr_comparison`` | Fig. 17 |
| ``run_video_predictors`` | Fig. 18a |
| ``run_chunk_lengths`` | Fig. 18b |
| ``run_video_interface_selection`` | Fig. 18c; Table 4 |
| ``run_web_factors`` | Fig. 19, 20, 21 |
| ``run_web_selection`` | Fig. 22; Table 6 |
| ``run_live_streaming`` | LL-DASH live QoE (PAPERS.md, LoL+/L2A/Stallion) |
| ``run_energy_abr`` | energy/QoE trade-off (PAPERS.md, energy-aware ABR) |
"""

from repro.experiments.tables import format_table
from repro.experiments.campaign import run_table1_campaign
from repro.experiments.perf import (
    run_azure_transport,
    run_carrier_aggregation,
    run_latency_vs_distance,
    run_server_survey,
    run_throughput_vs_distance,
)
from repro.experiments.handoff import run_handoff_drive
from repro.experiments.rrc import run_rrc_inference, run_tail_power
from repro.experiments.power import (
    run_energy_efficiency,
    run_throughput_power,
    run_walking_power,
)
from repro.experiments.powermodel import run_power_models, run_software_monitor
from repro.experiments.video import (
    run_abr_comparison,
    run_chunk_lengths,
    run_video_interface_selection,
    run_video_predictors,
)
from repro.experiments.live import run_energy_abr, run_live_streaming
from repro.experiments.web import run_web_factors, run_web_selection

__all__ = [
    "format_table",
    "run_abr_comparison",
    "run_azure_transport",
    "run_carrier_aggregation",
    "run_chunk_lengths",
    "run_energy_abr",
    "run_energy_efficiency",
    "run_handoff_drive",
    "run_latency_vs_distance",
    "run_live_streaming",
    "run_power_models",
    "run_rrc_inference",
    "run_server_survey",
    "run_software_monitor",
    "run_table1_campaign",
    "run_tail_power",
    "run_throughput_power",
    "run_throughput_vs_distance",
    "run_video_interface_selection",
    "run_video_predictors",
    "run_walking_power",
    "run_web_factors",
    "run_web_selection",
]
