"""Web experiments: Fig. 19/20/21/22, Table 6."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.metrics import cdf_points
from repro.web.browser import Browser
from repro.web.catalog import WebsiteCatalog, generate_catalog
from repro.web.selection import InterfaceSelector, build_dataset


def run_web_factors(
    n_sites: int = 300,
    seed: int = 1,
    catalog: Optional[WebsiteCatalog] = None,
) -> Dict:
    """Fig. 19/20/21: PLT and energy by page factors, CDFs, and the
    penalty-vs-saving trade-off."""
    catalog = catalog or generate_catalog(n_sites=n_sites, seed=seed)
    dataset = build_dataset(catalog, Browser(seed=seed + 1))

    # Fig. 19a buckets: number of objects.
    object_buckets = [("0-10", 0, 11), ("11-100", 11, 101), ("100-1000", 101, 10_000)]
    size_buckets = [
        ("<1MB", 0, 1_000_000),
        ("1-10MB", 1_000_000, 10_000_000),
        (">10MB", 10_000_000, 10**12),
    ]

    def bucket_rows(key_index: int, buckets) -> list:
        rows = []
        values = dataset.features[:, key_index]
        for label, low, high in buckets:
            mask = (values >= low) & (values < high)
            if not np.any(mask):
                rows.append({"bucket": label, "n": 0})
                continue
            rows.append(
                {
                    "bucket": label,
                    "n": int(mask.sum()),
                    "plt_4g": float(np.mean(dataset.plt_4g[mask])),
                    "plt_5g": float(np.mean(dataset.plt_5g[mask])),
                    "energy_4g": float(np.mean(dataset.energy_4g[mask])),
                    "energy_5g": float(np.mean(dataset.energy_5g[mask])),
                }
            )
        return rows

    # Feature indices: 0 = NO, 5 = PS (see catalog.FEATURE_NAMES).
    fig19a = bucket_rows(0, object_buckets)
    fig19b = bucket_rows(5, size_buckets)

    # Fig. 20: CDFs.
    cdfs = {
        "plt_4g": cdf_points(dataset.plt_4g),
        "plt_5g": cdf_points(dataset.plt_5g),
        "energy_4g": cdf_points(dataset.energy_4g),
        "energy_5g": cdf_points(dataset.energy_5g),
    }

    # Fig. 21: energy saving vs PLT penalty buckets.
    penalty = (dataset.plt_4g - dataset.plt_5g) / dataset.plt_5g * 100.0
    saving = (dataset.energy_5g - dataset.energy_4g) / dataset.energy_5g * 100.0
    fig21 = []
    for low, high in [(0, 10), (10, 20), (20, 30), (30, 40), (40, 50), (50, 60)]:
        mask = (penalty > low) & (penalty <= high)
        fig21.append(
            {
                "penalty_bucket": f"{low}-{high}",
                "n": int(mask.sum()),
                "energy_saving_percent": float(np.mean(saving[mask]))
                if np.any(mask)
                else float("nan"),
            }
        )
    return {
        "dataset": dataset,
        "fig19_objects": fig19a,
        "fig19_size": fig19b,
        "cdfs": cdfs,
        "fig21": fig21,
    }


def run_web_selection(
    n_sites: int = 300,
    seed: int = 1,
    dataset=None,
) -> Dict:
    """Table 6 + Fig. 22: M1-M5 decision trees and their structure."""
    if dataset is None:
        catalog = generate_catalog(n_sites=n_sites, seed=seed)
        dataset = build_dataset(catalog, Browser(seed=seed + 1))
    selector = InterfaceSelector(seed=seed)
    reports = selector.evaluate(dataset)
    rows = InterfaceSelector.table_rows(reports)
    trees = {
        model_id: report.tree.describe(max_depth=2)
        for model_id, report in reports.items()
    }
    return {"rows": rows, "reports": reports, "trees": trees}
