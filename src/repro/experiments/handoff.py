"""Fig. 9: handoff counts while driving, per band configuration."""

from __future__ import annotations

from typing import Dict

from repro.mobility.handoff import (
    FIG9_CONFIGURATIONS,
    HandoffSimulator,
    default_grids,
)
from repro.mobility.routes import driving_route
from repro.mobility.trajectory import Trajectory


def run_handoff_drive(
    dt_s: float = 0.5,
    seed: int = 3,
    route_km: float = 10.0,
) -> Dict:
    """Replay the five Fig. 9 configurations over the driving route."""
    route = driving_route(length_km=route_km)
    trajectory = Trajectory.from_route(route, dt_s=dt_s)
    grids = default_grids(route.waypoints, seed=7)
    simulator = HandoffSimulator(
        n71_grid=grids["n71"], lte_grid=grids["lte"], seed=seed
    )
    rows = []
    summaries = {}
    for configuration in FIG9_CONFIGURATIONS:
        summary = simulator.run(trajectory, configuration)
        summaries[configuration.name] = summary
        rows.append(
            {
                "configuration": configuration.name,
                "total": summary.total_count,
                "horizontal": summary.horizontal_count,
                "vertical": summary.vertical_count,
            }
        )
    return {
        "rows": rows,
        "summaries": summaries,
        "route_km": route.length_m / 1000.0,
        "duration_s": trajectory.duration_s,
    }
