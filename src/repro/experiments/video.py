"""Video experiments: Fig. 17, Fig. 18a/b/c, Table 4."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.schema import ThroughputTrace
from repro.video.abr import make_abr
from repro.video.abr.mpc import FastMPC
from repro.video.encoding import VideoManifest, build_ladder
from repro.video.player import Player
from repro.video.predictors import (
    GBDTPredictor,
    HarmonicMeanPredictor,
    TruthPredictor,
)
from repro.video.qoe import default_weights, normalized_bitrate, stall_percent
from repro.video.selection import StreamingInterfaceSelector, evaluate_pairs

ABR_NAMES = ("bba", "rb", "bola", "festive", "fastmpc", "robustmpc", "pensieve")


def _corpus(
    n_traces: int, duration_s: int, seed: int
) -> Tuple[List[ThroughputTrace], List[ThroughputTrace]]:
    config = LumosConfig(
        n_5g=n_traces, n_4g=n_traces, duration_s=duration_s, seed=seed
    )
    return generate_lumos_corpus(config)


def run_abr_comparison(
    n_traces: int = 12,
    n_chunks: int = 50,
    duration_s: int = 240,
    seed: int = 3,
    abr_names: Optional[List[str]] = None,
) -> Dict:
    """Fig. 17: bitrate/stall of every ABR on the 5G and 4G corpora."""
    abr_names = abr_names or list(ABR_NAMES)
    traces_5g, traces_4g = _corpus(n_traces, duration_s, seed)
    manifests = {
        "5G": VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=n_chunks),
        "4G": VideoManifest(ladder=build_ladder(20.0), chunk_s=4.0, n_chunks=n_chunks),
    }
    corpora = {"5G": traces_5g, "4G": traces_4g}
    rows = []
    for name in abr_names:
        row = {"abr": name}
        for tech in ("5G", "4G"):
            player = Player(manifests[tech])
            stalls, bitrates, qoes = [], [], []
            top = manifests[tech].ladder.top_mbps
            weights = default_weights(top)
            for trace in corpora[tech]:
                result = player.play(make_abr(name), trace.throughput_at)
                stalls.append(stall_percent(result.stall_s, result.playback_s))
                bitrates.append(
                    normalized_bitrate(result.chunk_bitrates_mbps, top)
                )
                qoes.append(result.qoe(weights))
            row[f"stall_{tech}"] = float(np.mean(stalls))
            row[f"bitrate_{tech}"] = float(np.mean(bitrates))
            row[f"qoe_{tech}"] = float(np.mean(qoes))
        rows.append(row)
    return {"rows": rows, "n_traces": n_traces}


def run_video_predictors(
    n_traces: int = 14,
    n_chunks: int = 50,
    duration_s: int = 240,
    seed: int = 4,
) -> Dict:
    """Fig. 18a: fastMPC QoE with hm / GBDT / ground-truth predictors.

    Predictor comparisons need a dozen-plus test traces to average out
    crater luck; ``n_traces`` below ~10 produces noisy rankings.
    """
    traces_5g, _ = _corpus(n_traces + 10, duration_s, seed)
    train, test = traces_5g[:10], traces_5g[10:]
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=n_chunks)
    player = Player(manifest)
    # Stalls are 5G streaming's dominant failure mode (section 5.2), so
    # the predictor study scores QoE with a rebuffer penalty slightly
    # above the top bitrate — the regime where prediction quality, not
    # gambling luck, decides the ranking.
    from repro.video.qoe import QoEWeights

    weights = QoEWeights(rebuffer_penalty=1.15 * manifest.ladder.top_mbps)
    gbdt = GBDTPredictor(seed=seed).fit_corpus(train, chunk_s=manifest.chunk_s)

    qoes: Dict[str, List[float]] = {"hmMPC": [], "MPC_GDBT": [], "truthMPC": []}
    for trace in test:
        result = player.play(
            FastMPC(predictor=HarmonicMeanPredictor()), trace.throughput_at
        )
        qoes["hmMPC"].append(result.qoe(weights))
        gbdt.attach_trace(trace)
        result = player.play(FastMPC(predictor=gbdt), trace.throughput_at)
        qoes["MPC_GDBT"].append(result.qoe(weights))
        result = player.play(
            FastMPC(predictor=TruthPredictor(trace, chunk_s=manifest.chunk_s)),
            trace.throughput_at,
        )
        qoes["truthMPC"].append(result.qoe(weights))

    means = {k: float(np.mean(v)) for k, v in qoes.items()}
    # Normalise on a positive scale anchored at the worst scheme so the
    # ratios stay meaningful even when raw QoE dips negative.
    worst = min(means.values())
    shifted = {k: v - worst for k, v in means.items()}
    top = max(shifted.values())
    normalized = {k: v / top if top > 0 else 0.0 for k, v in shifted.items()}
    return {"qoe": means, "normalized_qoe": normalized}


def run_chunk_lengths(
    n_traces: int = 10,
    duration_s: int = 240,
    seed: int = 5,
    chunk_lengths_s: Tuple[float, ...] = (4.0, 2.0, 1.0),
) -> Dict:
    """Fig. 18b: fastMPC bitrate/stall at 1/2/4 s chunks."""
    traces_5g, _ = _corpus(n_traces, duration_s, seed)
    rows = []
    for chunk_s in chunk_lengths_s:
        n_chunks = int(200.0 / chunk_s)
        manifest = VideoManifest(
            ladder=build_ladder(160.0), chunk_s=chunk_s, n_chunks=n_chunks
        )
        player = Player(manifest)
        top = manifest.ladder.top_mbps
        stalls, bitrates = [], []
        for trace in traces_5g:
            result = player.play(FastMPC(), trace.throughput_at)
            stalls.append(stall_percent(result.stall_s, result.playback_s))
            bitrates.append(normalized_bitrate(result.chunk_bitrates_mbps, top))
        rows.append(
            {
                "chunk_s": chunk_s,
                "stall_percent": float(np.mean(stalls)),
                "normalized_bitrate": float(np.mean(bitrates)),
            }
        )
    return {"rows": rows}


def run_video_interface_selection(
    n_pairs: int = 8,
    n_chunks: int = 50,
    duration_s: int = 240,
    seed: int = 6,
) -> Dict:
    """Fig. 18c + Table 4: 5G-only vs 5G-aware (with/without overhead)."""
    traces_5g, traces_4g = _corpus(n_pairs, duration_s, seed)
    manifest = VideoManifest(ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=n_chunks)
    selector = StreamingInterfaceSelector(manifest=manifest)
    pairs = list(zip(traces_5g, traces_4g))
    summary = evaluate_pairs(selector, pairs)
    return {"summary": summary, "n_pairs": n_pairs}
