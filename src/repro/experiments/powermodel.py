"""Power-model experiments: Fig. 15/16, Tables 3 and 9."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.powermodel import (
    FeatureSet,
    LinearPowerModel,
    train_from_walking_traces,
)
from repro.core.powermodel import _stack_traces
from repro.power.calibration import SoftwareCalibrator
from repro.power.device import get_device
from repro.power.monsoon import MonsoonMonitor
from repro.power.software import SoftwareMonitor, monitoring_overhead_mw
from repro.radio.carriers import get_network
from repro.traces.walking import WalkingTraceGenerator

# Fig. 15's x-axis settings: device / carrier / network shorthand.
DEFAULT_SETTINGS: Tuple[Tuple[str, str, str], ...] = (
    ("S10", "verizon-nsa-mmwave", "S10/VZ/NSA-HB"),
    ("S20U", "verizon-nsa-mmwave", "S20/VZ/NSA-HB"),
    ("S20U", "verizon-nsa-lowband", "S20/VZ/NSA-LB"),
    ("S20U", "tmobile-nsa-lowband", "S20/TM/NSA-LB"),
    ("S20U", "tmobile-sa-lowband", "S20/TM/SA-LB"),
)


def run_power_models(
    settings: Optional[List[Tuple[str, str, str]]] = None,
    n_train: int = 6,
    n_test: int = 2,
    seed: int = 5,
    include_linear: bool = True,
) -> Dict:
    """Fig. 15: MAPE of TH+SS vs TH vs SS per setting (+ linear ablation)."""
    settings = settings or list(DEFAULT_SETTINGS)
    rows = []
    for device_name, network_key, label in settings:
        generator = WalkingTraceGenerator(
            network=get_network(network_key),
            device=get_device(device_name),
            seed=seed,
        )
        traces = generator.generate_many(n_train + n_test)
        train, test = traces[:n_train], traces[n_train:]
        throughput, rsrp, power = _stack_traces(test)
        row = {"setting": label}
        for features in FeatureSet:
            model = train_from_walking_traces(label, train, features=features)
            row[features.value] = model.mape(throughput, rsrp, power)
        if include_linear:
            linear = LinearPowerModel(label)
            tr_t, tr_r, tr_p = _stack_traces(train)
            linear.fit(tr_t, tr_r, tr_p)
            row["linear TH+SS"] = linear.mape(throughput, rsrp, power)
        rows.append(row)
    return {"rows": rows}


def _activity_power_fns(device_name: str = "S20U") -> Dict[str, callable]:
    """True power functions for the Table 9 benchmark activities."""
    device = get_device(device_name)
    curve = device.curve("verizon-nsa-mmwave")
    idle_screen_on = device.system_base_mw + device.screen_max_mw

    def make_udp(rate_mbps: float):
        def fn(t: float) -> float:
            return idle_screen_on + curve.power_mw(dl_mbps=rate_mbps)

        return fn

    rng = np.random.default_rng(0)
    tap_profile = rng.uniform(0.8, 2.2, size=600)

    def random_activities(t: float) -> float:
        return idle_screen_on * float(tap_profile[int(t * 10) % 600])

    def idle_on(t: float) -> float:
        return idle_screen_on

    def idle_off(t: float) -> float:
        return device.system_base_mw * 0.35

    def video(t: float) -> float:
        return idle_screen_on + 900.0 + curve.power_mw(dl_mbps=40.0)

    return {
        "Random activities": random_activities,
        "Idle (screen on)": idle_on,
        "Idle (screen off)": idle_off,
        "UDP DL 50Mbps": make_udp(50.0),
        "UDP DL 400Mbps": make_udp(400.0),
        "UDP DL 800Mbps": make_udp(800.0),
        "UDP DL 1200Mbps": make_udp(1200.0),
        "Video streaming": video,
    }


def run_software_monitor(
    duration_s: float = 20.0,
    seed: int = 0,
    calibration_duration_s: float = 120.0,
) -> Dict:
    """Tables 3/9 + Fig. 16: SW/HW ratios, overhead, DTR calibration."""
    fns = _activity_power_fns()

    # Table 9: SW/HW ratio per activity and sampling rate.
    ratio_rows = []
    for name, fn in fns.items():
        hw = MonsoonMonitor(rate_hz=1000.0, seed=seed).measure(fn, duration_s)
        row = {"activity": name}
        for rate in (1.0, 10.0):
            sw = SoftwareMonitor(rate_hz=rate, seed=seed)
            readings = sw.measure(fn, duration_s)
            truth = hw.average_mw() + sw.overhead_mw
            row[f"ratio_{int(rate)}hz"] = SoftwareMonitor.average_mw(readings) / truth
        ratio_rows.append(row)

    # Table 3: monitoring overhead on an idle device.
    idle = fns["Idle (screen on)"](0.0)
    overhead_rows = [
        {"activity": "Idle", "power_mw": idle},
        {"activity": "Monitor on (1Hz)", "power_mw": idle + monitoring_overhead_mw(1.0)},
        {"activity": "Monitor on (10Hz)", "power_mw": idle + monitoring_overhead_mw(10.0)},
    ]

    # Fig. 15/16 SW bars: calibrate on a mixed workload.
    device = get_device("S20U")
    curve = device.curve("verizon-nsa-mmwave")
    rng = np.random.default_rng(seed)
    rates = np.abs(rng.normal(300.0, 400.0, size=int(calibration_duration_s)))

    def mixed(t: float) -> float:
        index = min(int(t), rates.shape[0] - 1)
        return device.system_base_mw + curve.power_mw(dl_mbps=float(rates[index]))

    calibration = {}
    for rate in (1.0, 10.0):
        sw = SoftwareMonitor(rate_hz=rate, seed=seed)
        readings = sw.measure(mixed, calibration_duration_s)
        raw = np.array([r.power_mw for r in readings])
        truth = np.array(
            [mixed(r.t_s) + sw.overhead_mw for r in readings]
        )
        split = int(0.7 * raw.shape[0])
        calibrator = SoftwareCalibrator()
        calibrator.fit(raw[:split], truth[:split])
        before, after = calibrator.evaluate(raw[split:], truth[split:])
        calibration[f"SW-{int(rate)}Hz"] = {"mape_before": before, "mape_after": after}

    return {
        "table9_rows": ratio_rows,
        "table3_rows": overhead_rows,
        "calibration": calibration,
    }
