"""RRC experiments: Fig. 10/25 inference sweeps, Tables 2 and 7."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.power.tail import TAIL_POWER, tail_energy_j
from repro.rrc.parameters import RRC_PARAMETERS
from repro.rrc.probe import RRCProbe


def run_rrc_inference(
    network_keys: Optional[List[str]] = None,
    max_interval_s: float = 25.0,
    packets_per_interval: int = 15,
    seed: int = 1,
) -> Dict:
    """Fig. 10/25 + Table 7: probe every network, compare inferred vs
    configured timers."""
    network_keys = network_keys or list(RRC_PARAMETERS)
    results = {}
    rows = []
    for key in network_keys:
        params = RRC_PARAMETERS[key]
        probe = RRCProbe(params, seed=seed)
        sweep = probe.sweep(
            np.arange(1.0, max_interval_s, 1.0),
            packets_per_interval=packets_per_interval,
        )
        results[key] = sweep
        inferred = sweep.inferred
        # On NSA low-band the LTE anchor leg lingers past the 5G tail at
        # connected-level RTTs, so the *apparent* tail the probe sees is
        # the secondary timer — the paper reports exactly this ambiguity
        # as the bracketed values in Table 7.
        apparent_tail = params.secondary_tail_ms or params.inactivity_ms
        has_intermediate = bool(inferred.get("has_intermediate", 0.0))
        rows.append(
            {
                "network": key,
                "true_inactivity_ms": params.inactivity_ms,
                "apparent_tail_ms": apparent_tail,
                "inferred_inactivity_ms": inferred.get("inactivity_ms", float("nan")),
                "true_long_drx_ms": params.long_drx_ms,
                "inferred_long_drx_ms": inferred.get("long_drx_ms", float("nan")),
                "true_idle_drx_ms": params.idle_drx_ms,
                "inferred_idle_drx_ms": inferred.get("idle_drx_ms", float("nan")),
                "true_promotion_ms": params.promotion_delay_ms,
                "inferred_promotion_ms": inferred.get("promotion_ms", float("nan")),
                # RRC_INACTIVE exists only on SA; an intermediate plateau
                # on an SA deployment is that state.
                "inactive_detected": has_intermediate and params.has_inactive_state,
                "intermediate_detected": has_intermediate,
            }
        )
    return {"rows": rows, "sweeps": results}


def run_tail_power() -> Dict:
    """Table 2 + per-network tail energy integration."""
    rows = []
    for key, tail in TAIL_POWER.items():
        rows.append(
            {
                "network": key,
                "tail_mw": tail.tail_mw,
                "switch_mw": tail.switch_mw,
                "tail_energy_j": tail_energy_j(key),
            }
        )
    rows.sort(key=lambda r: r["network"])
    return {"rows": rows}
