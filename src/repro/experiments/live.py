"""Live-streaming and energy-aware ABR experiments (ROADMAP item 3).

``run_live_streaming`` evaluates the LoL+/L2A/Stallion LL-DASH
controllers over the mmWave walking corpus and reports the live-QoE
axes of "An Experimental Study of Low-Latency Video Streaming over 5G"
(live latency, playback-rate deviation, stalls) plus radio energy.

``run_energy_abr`` sweeps the energy-aware ABR's ``energy_weight``
over the same corpus and reports the energy/QoE trade-off of
"Improving UE Energy Efficiency through Network-aware Video Streaming
over 5G": energy falls monotonically with λ while bitrate is
surrendered from the top of the ladder first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.power.device import get_device
from repro.traces.lumos import LumosConfig, generate_lumos_corpus
from repro.traces.schema import ThroughputTrace
from repro.video.abr.energy import EnergyAware
from repro.video.encoding import build_ladder
from repro.video.live import LiveManifest, LivePlayer, make_live_controller
from repro.video.player import Player
from repro.video.encoding import VideoManifest
from repro.video.timeline import timeline_energy_j

LIVE_CONTROLLERS = ("lolp", "l2a", "stallion")

#: λ sweep of the energy-aware ABR, in QoE units (Mbps) per joule.
ENERGY_WEIGHTS = (0.0, 25.0, 50.0, 100.0, 200.0, 400.0)


def _corpus(
    n_traces: int, duration_s: int, seed: int
) -> Tuple[List[ThroughputTrace], List[ThroughputTrace]]:
    config = LumosConfig(
        n_5g=n_traces, n_4g=n_traces, duration_s=duration_s, seed=seed
    )
    return generate_lumos_corpus(config)


def run_live_streaming(
    n_traces: int = 12,
    duration_s: int = 240,
    seed: int = 9,
    latency_target_s: float = 3.0,
    segment_s: float = 1.0,
    chunks_per_segment: int = 5,
    controllers: Optional[Sequence[str]] = None,
    network_key: str = "verizon-nsa-mmwave",
) -> Dict:
    """LL-DASH controllers over the mmWave walking traces.

    The live ladder tops at half the corpus median (live encoders
    leave real-time headroom), segments are 1 s CMAF-chunked five
    ways, and every session is priced on the S20U mmWave DTR curve
    through the time-aligned timeline.
    """
    controllers = list(controllers or LIVE_CONTROLLERS)
    traces_5g, _ = _corpus(n_traces, duration_s, seed)
    # Leave headroom for startup + stalls so sessions fit the traces.
    n_segments = max(int(0.8 * duration_s / segment_s), 1)
    manifest = LiveManifest(
        ladder=build_ladder(80.0),
        segment_s=segment_s,
        chunks_per_segment=chunks_per_segment,
        n_segments=n_segments,
    )
    curve = get_device("S20U").curve(network_key)
    rows = []
    for name in controllers:
        results = []
        for trace in traces_5g:
            player = LivePlayer(manifest, latency_target_s=latency_target_s)
            results.append(
                player.play(make_live_controller(name), trace.throughput_at)
            )
        energies = [
            timeline_energy_j(
                r.download_rate_timeline, r.tick_durations_s, curve
            )
            for r in results
        ]
        rows.append(
            {
                "controller": make_live_controller(name).name,
                "mean_latency_s": float(np.mean([r.mean_latency_s for r in results])),
                "p95_latency_s": float(np.mean([r.p95_latency_s for r in results])),
                "rate_deviation": float(np.mean([r.rate_deviation for r in results])),
                "stall_percent": float(np.mean([r.stall_percent for r in results])),
                "normalized_bitrate": float(
                    np.mean([r.normalized_bitrate for r in results])
                ),
                "latency_jumps": float(np.mean([r.latency_jumps for r in results])),
                "startup_s": float(np.mean([r.startup_s for r in results])),
                "qoe": float(np.mean([r.qoe() for r in results])),
                "energy_j": float(np.mean(energies)),
            }
        )
    return {
        "rows": rows,
        "n_traces": n_traces,
        "latency_target_s": latency_target_s,
        "segment_s": segment_s,
        "chunks_per_segment": chunks_per_segment,
        "n_segments": n_segments,
    }


def run_energy_abr(
    n_traces: int = 12,
    n_chunks: int = 50,
    duration_s: int = 240,
    seed: int = 7,
    energy_weights: Optional[Sequence[float]] = None,
    network_key: str = "verizon-nsa-mmwave",
) -> Dict:
    """Energy/QoE trade-off of the energy-aware ABR (λ sweep).

    λ = 0 is the pure one-step QoE maximizer baseline; the summary
    reports the energy saved (and bitrate given up) at the largest λ
    relative to that baseline.
    """
    weights = list(energy_weights or ENERGY_WEIGHTS)
    if not weights or weights[0] != 0.0:
        raise ValueError("energy_weights must start with the λ=0 baseline")
    traces_5g, _ = _corpus(n_traces, duration_s, seed)
    manifest = VideoManifest(
        ladder=build_ladder(160.0), chunk_s=4.0, n_chunks=n_chunks
    )
    curve = get_device("S20U").curve(network_key)
    rows = []
    for weight in weights:
        energies, bitrates, stalls, qoes = [], [], [], []
        for trace in traces_5g:
            abr = EnergyAware(energy_weight=weight, network_key=network_key)
            result = Player(manifest).play(abr, trace.throughput_at)
            energies.append(
                timeline_energy_j(
                    result.download_rate_timeline,
                    result.tick_durations_s,
                    curve,
                )
            )
            bitrates.append(result.normalized_bitrate)
            stalls.append(result.stall_percent)
            qoes.append(result.qoe())
        rows.append(
            {
                "energy_weight": float(weight),
                "energy_j": float(np.mean(energies)),
                "normalized_bitrate": float(np.mean(bitrates)),
                "stall_percent": float(np.mean(stalls)),
                "qoe": float(np.mean(qoes)),
            }
        )
    baseline = rows[0]
    final = rows[-1]
    return {
        "rows": rows,
        "n_traces": n_traces,
        "energy_saving_frac": float(
            1.0 - final["energy_j"] / baseline["energy_j"]
        ),
        "bitrate_cost_frac": float(
            1.0
            - final["normalized_bitrate"] / baseline["normalized_bitrate"]
        ),
    }
