"""Export experiment results to JSON (artifact-parity with the paper's
released data files).

Runner outputs mix dataclasses, numpy arrays, and plain dicts;
:func:`to_jsonable` normalises all of that, and :func:`export_json`
writes one experiment's regenerated artifact to disk the way the
paper's repository ships per-figure processed results.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]

_MAX_ARRAY_EXPORT = 100_000

#: Non-finite floats cannot appear in strict JSON; NaN (a missing
#: measurement) maps to ``null`` while signed infinities keep their
#: identity as sentinel strings so they survive a round-trip.
POS_INF_SENTINEL = "Infinity"
NEG_INF_SENTINEL = "-Infinity"


def _finite_or_sentinel(value: float) -> Union[float, str, None]:
    if np.isfinite(value):
        return value
    if np.isnan(value):
        return None
    return POS_INF_SENTINEL if value > 0 else NEG_INF_SENTINEL


def to_jsonable(value: Any, array_hook: Any = None) -> Any:
    """Recursively convert runner output into JSON-serialisable data.

    numpy scalars/arrays become Python numbers/lists, dataclasses become
    dicts, enums become their values, tuples of non-string keys are
    joined with ``|``. Non-finite floats become ``null`` (NaN) or the
    ``"Infinity"``/``"-Infinity"`` sentinel strings, so the output is
    always *strict* JSON. Objects with no natural representation fall
    back to ``repr`` so exports never crash mid-campaign.

    ``array_hook`` (when given) sees every ndarray first and may
    return a JSON-serialisable replacement — the result cache uses
    this to divert large arrays into ``.npy`` sidecars instead of
    inflated JSON lists. A hook returning ``None`` declines, and the
    array takes the normal list path (including the export size cap).
    """
    if isinstance(value, float):
        return _finite_or_sentinel(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _finite_or_sentinel(float(value))
    if isinstance(value, np.ndarray):
        if array_hook is not None:
            encoded = array_hook(value)
            if encoded is not None:
                return encoded
        if value.size > _MAX_ARRAY_EXPORT:
            raise ValueError(
                f"array of {value.size} elements exceeds the export cap"
            )
        return [to_jsonable(v, array_hook) for v in value.tolist()]
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name), array_hook)
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "|".join(str(k) for k in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item, array_hook)
        return out
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v, array_hook) for v in value]
    return repr(value)


def from_jsonable(value: Any) -> Any:
    """Decode :func:`to_jsonable`'s non-finite sentinels back to floats.

    ``"Infinity"``/``"-Infinity"`` strings become ``±inf`` recursively
    through dicts and lists; everything else passes through untouched
    (NaN was encoded as ``null`` and stays ``None`` — a missing
    measurement has no identity worth resurrecting). This is what the
    engine applies on its cached/normalised return path, so a sweep
    yields the *same types* with or without a cache attached. The one
    documented collision: a runner that legitimately returns the
    literal string ``"Infinity"`` will come back as a float.
    """
    if isinstance(value, str):
        if value == POS_INF_SENTINEL:
            return float("inf")
        if value == NEG_INF_SENTINEL:
            return float("-inf")
        return value
    if isinstance(value, dict):
        return {key: from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    return value


def export_json(result: Any, path: PathLike, indent: int = 1) -> Path:
    """Write a runner result as strict JSON; returns the written path.

    ``allow_nan=False`` guarantees the emitted file parses under every
    strict JSON reader — :func:`to_jsonable` has already rewritten any
    non-finite float, so a violation here is a conversion bug.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(to_jsonable(result), handle, indent=indent, allow_nan=False)
        handle.write("\n")
    return path
