"""Export experiment results to JSON (artifact-parity with the paper's
released data files).

Runner outputs mix dataclasses, numpy arrays, and plain dicts;
:func:`to_jsonable` normalises all of that, and :func:`export_json`
writes one experiment's regenerated artifact to disk the way the
paper's repository ships per-figure processed results.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]

_MAX_ARRAY_EXPORT = 100_000


def to_jsonable(value: Any) -> Any:
    """Recursively convert runner output into JSON-serialisable data.

    numpy scalars/arrays become Python numbers/lists, dataclasses become
    dicts, enums become their values, tuples of non-string keys are
    joined with ``|``. Objects with no natural representation fall back
    to ``repr`` so exports never crash mid-campaign.
    """
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        out = float(value)
        return out if np.isfinite(out) else None
    if isinstance(value, np.ndarray):
        if value.size > _MAX_ARRAY_EXPORT:
            raise ValueError(
                f"array of {value.size} elements exceeds the export cap"
            )
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "|".join(str(k) for k in key)
            elif not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item)
        return out
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    return repr(value)


def export_json(result: Any, path: PathLike, indent: int = 1) -> Path:
    """Write a runner result as JSON; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(to_jsonable(result), handle, indent=indent)
        handle.write("\n")
    return path
