"""Network performance experiments (Figs. 1-8, 23, 24)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.latency import LatencyModel
from repro.net.servers import AZURE_REGIONS, carrier_server_pool, minnesota_server_pool
from repro.net.speedtest import ConnectionMode, SpeedtestHarness
from repro.power.device import get_device
from repro.radio.carriers import get_network
from repro.radio.link import LinkBudget, MODEMS
from repro.transport.aggregate import MultiConnection
from repro.transport.flow import TcpFlow, UdpFlow
from repro.transport.tuning import DEFAULT_KERNEL, TUNED_KERNEL


def run_latency_vs_distance(
    network_keys: Optional[List[str]] = None,
    n_servers: int = 10,
    seed: int = 0,
) -> Dict:
    """Fig. 1/2/5: min RTT per network vs UE-server distance."""
    network_keys = network_keys or [
        "verizon-nsa-mmwave",
        "verizon-nsa-lowband",
        "verizon-lte",
        "tmobile-sa-lowband",
        "tmobile-nsa-lowband",
    ]
    servers = carrier_server_pool("carrier")[:n_servers]
    ue_lat, ue_lon = 44.9778, -93.2650
    series: Dict[str, List[tuple]] = {}
    for key in network_keys:
        network = get_network(key)
        model = LatencyModel(network, seed=seed)
        points = []
        for server in servers:
            distance = server.distance_km_from(ue_lat, ue_lon)
            points.append((distance, model.min_rtt_ms(distance)))
        series[key] = sorted(points)
    return {"series": series, "ue": (ue_lat, ue_lon)}


def run_throughput_vs_distance(
    network_key: str = "verizon-nsa-mmwave",
    device_name: str = "S20U",
    n_servers: int = 8,
    repetitions: int = 6,
    seed: int = 0,
) -> Dict:
    """Fig. 3/4 (and 6/7 with T-Mobile keys): p95 DL/UL vs distance."""
    network = get_network(network_key)
    device = get_device(device_name)
    harness = SpeedtestHarness(network=network, device=device, seed=seed)
    servers = carrier_server_pool(network.carrier.value)[:n_servers]
    rows = []
    for server in servers:
        peak_multi = harness.peak(
            harness.run_setting(server, ConnectionMode.MULTIPLE, repetitions)
        )
        peak_single = harness.peak(
            harness.run_setting(server, ConnectionMode.SINGLE, repetitions)
        )
        rows.append(
            {
                "server": server.name,
                "distance_km": peak_multi.distance_km,
                "rtt_ms": peak_multi.rtt_ms,
                "dl_multi_mbps": peak_multi.downlink_mbps,
                "dl_single_mbps": peak_single.downlink_mbps,
                "ul_multi_mbps": peak_multi.uplink_mbps,
                "ul_single_mbps": peak_single.uplink_mbps,
            }
        )
    rows.sort(key=lambda r: r["distance_km"])
    return {"network": network_key, "device": device_name, "rows": rows}


def run_azure_transport(
    capacity_mbps: float = 2200.0,  # PX5's observable ceiling
    duration_s: float = 12.0,
    seed: int = 0,
) -> Dict:
    """Fig. 8: UDP / 8-TCP / tuned 1-TCP / default 1-TCP per region."""
    base_rtt = get_network("verizon-nsa-mmwave").rtt_floor_ms
    rows = []
    for region in AZURE_REGIONS:
        rtt = base_rtt + 0.021 * region.distance_km
        udp = UdpFlow().run(capacity_mbps, duration_s=duration_s)
        tcp8 = MultiConnection(
            n_connections=8, rtt_ms=rtt, kernel=TUNED_KERNEL, seed=seed
        ).run(capacity_mbps, duration_s=duration_s)
        tcp1_tuned = TcpFlow(
            rtt_ms=rtt, kernel=TUNED_KERNEL, seed=seed
        ).steady_state_mbps(capacity_mbps, duration_s=duration_s)
        tcp1_default = TcpFlow(
            rtt_ms=rtt, kernel=DEFAULT_KERNEL, seed=seed
        ).steady_state_mbps(capacity_mbps, duration_s=duration_s)
        rows.append(
            {
                "region": region.name,
                "distance_km": region.distance_km,
                "rtt_ms": rtt,
                "udp_mbps": udp.throughput_mbps,
                "tcp8_mbps": tcp8.throughput_mbps,
                "tcp1_tuned_mbps": tcp1_tuned,
                "tcp1_default_mbps": tcp1_default,
            }
        )
    return {"rows": rows}


def run_server_survey(seed: int = 0, repetitions: int = 5) -> Dict:
    """Fig. 24: multi-conn downlink across the Minnesota server pool."""
    network = get_network("verizon-nsa-mmwave")
    device = get_device("S20U")
    harness = SpeedtestHarness(network=network, device=device, seed=seed)
    rows = []
    for server in minnesota_server_pool():
        peak = harness.peak(
            harness.run_setting(server, ConnectionMode.MULTIPLE, repetitions)
        )
        rows.append(
            {
                "server": server.name,
                "hosted_by": server.hosted_by,
                "cap_mbps": server.capacity_cap_mbps,
                "dl_mbps": peak.downlink_mbps,
            }
        )
    return {"rows": rows}


def run_carrier_aggregation(
    rsrp_dbm: float = -74.0, repetitions: int = 5, seed: int = 2
) -> Dict:
    """Fig. 23: PX5 (4CC/X52) vs S20U (8CC/X55) peak throughput.

    The figure's bars carry a second dimension — single vs multiple
    connections — so besides the raw link capacities we also run the
    Speedtest harness in both modes against the home-city server.
    """
    network = get_network("verizon-nsa-mmwave")
    home = carrier_server_pool(network.carrier.value)[0]
    rows = []
    for device_name, modem_name in (("PX5", "X52"), ("S20U", "X55")):
        link = LinkBudget(network, MODEMS[modem_name])
        device = get_device(device_name)
        harness = SpeedtestHarness(network=network, device=device, seed=seed)
        single = harness.peak(
            harness.run_setting(home, ConnectionMode.SINGLE, repetitions)
        )
        multi = harness.peak(
            harness.run_setting(home, ConnectionMode.MULTIPLE, repetitions)
        )
        rows.append(
            {
                "device": device_name,
                "modem": modem_name,
                "dl_cc": MODEMS[modem_name].dl_carriers,
                "dl_mbps": link.capacity_mbps(rsrp_dbm, downlink=True),
                "ul_mbps": link.capacity_mbps(rsrp_dbm, downlink=False),
                "dl_single_mbps": single.downlink_mbps,
                "dl_multi_mbps": multi.downlink_mbps,
                "ul_multi_mbps": multi.uplink_mbps,
            }
        )
    return {"rows": rows}
