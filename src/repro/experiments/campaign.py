"""Table 1: run a scaled-down campaign and report dataset statistics."""

from __future__ import annotations

from typing import Dict

from repro.core.campaign import Campaign
from repro.obs.trace import span as trace_span


def run_table1_campaign(
    speedtest_repetitions: int = 3,
    walking_traces_per_setting: int = 2,
    web_loads: int = 600,
    seed: int = 0,
    workers: int = 1,
) -> Dict:
    """A miniature end-to-end campaign (raise the knobs for scale).

    ``workers`` parallelises the per-setting inner loops through the
    scenario engine without changing the results.
    """
    campaign = Campaign(seed=seed, workers=workers)
    with trace_span("campaign.table1", workers=workers):
        campaign.run_speedtests(repetitions=speedtest_repetitions)
        campaign.run_walking(
            network_keys=["verizon-nsa-mmwave", "tmobile-sa-lowband"],
            traces_per_setting=walking_traces_per_setting,
        )
        campaign.run_probes(
            network_keys=["tmobile-sa-lowband", "verizon-nsa-mmwave"]
        )
        campaign.record_web_loads(web_loads)
    stats = campaign.stats()
    return {"stats": stats, "rows": stats.as_rows(), "campaign": campaign}
