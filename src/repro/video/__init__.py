"""Video streaming over 5G (paper section 5).

A chunk-level DASH playback simulator plus the seven ABR algorithms the
paper evaluates (BBA, BOLA, rate-based, FESTIVE, fastMPC, robustMPC,
Pensieve), pluggable throughput predictors (harmonic mean, GBDT,
ground truth), the proposed 5G-aware interface-selection streaming
scheme of section 5.4, an LL-DASH/CMAF live player with LoL+/L2A/
Stallion controllers (``repro.video.live``), and an energy-aware ABR
coupled to the section 4 power/RRC models (``repro.video.abr.energy``).
"""

from repro.video.encoding import BitrateLadder, VideoManifest, build_ladder
from repro.video.player import PlaybackResult, Player
from repro.video.qoe import QoEWeights, mpc_qoe, normalized_bitrate, stall_percent
from repro.video.timeline import (
    DOWNLOAD_TICK_S,
    TimelineRecorder,
    resample_to_ticks,
    tick_durations,
    timeline_energy_j,
)
from repro.video.predictors import (
    GBDTPredictor,
    HarmonicMeanPredictor,
    ThroughputPredictor,
    TruthPredictor,
)
from repro.video.abr import (
    ABRAlgorithm,
    BBA,
    BOLA,
    EnergyAware,
    FESTIVE,
    FastMPC,
    Pensieve,
    RateBased,
    RobustMPC,
    make_abr,
)
from repro.video.live import (
    LIVE_CONTROLLER_NAMES,
    LiveManifest,
    LivePlaybackResult,
    LivePlayer,
    LiveQoEWeights,
    make_live_controller,
)
from repro.video.selection import InterfaceSelectionResult, StreamingInterfaceSelector

__all__ = [
    "ABRAlgorithm",
    "BBA",
    "BOLA",
    "BitrateLadder",
    "DOWNLOAD_TICK_S",
    "EnergyAware",
    "FESTIVE",
    "FastMPC",
    "GBDTPredictor",
    "HarmonicMeanPredictor",
    "InterfaceSelectionResult",
    "LIVE_CONTROLLER_NAMES",
    "LiveManifest",
    "LivePlaybackResult",
    "LivePlayer",
    "LiveQoEWeights",
    "Pensieve",
    "PlaybackResult",
    "Player",
    "QoEWeights",
    "RateBased",
    "RobustMPC",
    "StreamingInterfaceSelector",
    "ThroughputPredictor",
    "TimelineRecorder",
    "TruthPredictor",
    "VideoManifest",
    "build_ladder",
    "make_abr",
    "make_live_controller",
    "mpc_qoe",
    "normalized_bitrate",
    "resample_to_ticks",
    "stall_percent",
    "tick_durations",
    "timeline_energy_j",
]
