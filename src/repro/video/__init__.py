"""Video streaming over 5G (paper section 5).

A chunk-level DASH playback simulator plus the seven ABR algorithms the
paper evaluates (BBA, BOLA, rate-based, FESTIVE, fastMPC, robustMPC,
Pensieve), pluggable throughput predictors (harmonic mean, GBDT,
ground truth), and the proposed 5G-aware interface-selection streaming
scheme of section 5.4.
"""

from repro.video.encoding import BitrateLadder, VideoManifest, build_ladder
from repro.video.player import PlaybackResult, Player
from repro.video.qoe import QoEWeights, mpc_qoe, normalized_bitrate, stall_percent
from repro.video.predictors import (
    GBDTPredictor,
    HarmonicMeanPredictor,
    ThroughputPredictor,
    TruthPredictor,
)
from repro.video.abr import (
    ABRAlgorithm,
    BBA,
    BOLA,
    FESTIVE,
    FastMPC,
    Pensieve,
    RateBased,
    RobustMPC,
    make_abr,
)
from repro.video.selection import InterfaceSelectionResult, StreamingInterfaceSelector

__all__ = [
    "ABRAlgorithm",
    "BBA",
    "BOLA",
    "BitrateLadder",
    "FESTIVE",
    "FastMPC",
    "GBDTPredictor",
    "HarmonicMeanPredictor",
    "InterfaceSelectionResult",
    "Pensieve",
    "PlaybackResult",
    "Player",
    "QoEWeights",
    "RateBased",
    "RobustMPC",
    "StreamingInterfaceSelector",
    "ThroughputPredictor",
    "TruthPredictor",
    "VideoManifest",
    "build_ladder",
    "make_abr",
    "mpc_qoe",
    "normalized_bitrate",
    "stall_percent",
]
