"""5G-aware video streaming: 4G/5G interface selection (section 5.4).

The proposed scheme: stream on 5G, but when the ABR's throughput
predictor says 5G is about to deliver *less than the 4G average* —
given 4G's relative stability — switch the radio to 4G; switch back to
5G once the playout buffer recovers past a threshold (10 s in the
paper). Switching pays the 4G<->5G transition overhead of section 4
(emulated by the paper with ``tc``; here a dead-air window at the
switch instant).

Energy accounting feeds the per-tick download rates into the device's
per-network power curves (the section 4.5 power model's role), which
yields Table 4's ordering: 5G-aware < 5G-aware-no-overhead < 5G-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.power.device import DeviceProfile, get_device
from repro.traces.schema import ThroughputTrace
from repro.video.abr.base import ABRAlgorithm, ABRContext
from repro.video.abr.mpc import FastMPC
from repro.video.encoding import VideoManifest
from repro.video.player import DOWNLOAD_TICK_S, PlaybackResult, Player


@dataclass
class InterfaceSelectionResult:
    """Playback outcome plus interface/energy accounting."""

    playback: PlaybackResult
    interface_per_chunk: List[str]  # "5G" | "4G"
    switches: int
    energy_j: float

    @property
    def time_on_4g_fraction(self) -> float:
        if not self.interface_per_chunk:
            return 0.0
        on_4g = sum(1 for i in self.interface_per_chunk if i == "4G")
        return on_4g / len(self.interface_per_chunk)


class _SwitchingBandwidth:
    """Bandwidth source with a connectivity-manager watchdog.

    Interface selection is not bound to chunk boundaries: the paper's
    scheme lives beside the ABR, and a radio switch mid-download speeds
    up the in-flight transfer too. The watchdog monitors the measured
    5G delivery rate (EN-DC UEs continuously measure the NR leg even
    while data rides LTE) and

    * bails to 4G once 5G has delivered less than the 4G average for
      ``bail_after_s`` consecutive seconds (5G is currently the worse
      radio), and
    * returns to 5G once the NR leg has measured clearly healthy
      (> ``return_factor`` x the 4G average) for ``return_after_s``.

    Each transition pays ``switch_overhead_s`` of dead air.
    """

    def __init__(
        self,
        trace_5g: ThroughputTrace,
        trace_4g: ThroughputTrace,
        switch_overhead_s: float,
        watchdog: bool = True,
        bail_after_s: float = 3.0,
        return_after_s: float = 3.0,
        return_factor: float = 1.5,
    ) -> None:
        self.trace_5g = trace_5g
        self.trace_4g = trace_4g
        self.switch_overhead_s = switch_overhead_s
        self.watchdog = watchdog
        self.bail_after_s = bail_after_s
        self.return_after_s = return_after_s
        self.return_factor = return_factor
        self.avg_4g_mbps = trace_4g.mean_mbps
        self.active = "5G"
        self.dead_until_s = 0.0
        self.switch_count = 0
        self._low_since: Optional[float] = None
        self._high_since: Optional[float] = None

    def rsrp_5g_at(self, t_s: float) -> Optional[float]:
        """Current 5G RSRP (UE-observable even while camped on 4G)."""
        if self.trace_5g.rsrp_dbm is None:
            return None
        index = int(t_s / self.trace_5g.dt_s) % len(self.trace_5g)
        return float(self.trace_5g.rsrp_dbm[index])

    def probe_5g_mbps(self, t_s: float) -> float:
        """Measured NR-leg quality (B1 measurement events)."""
        return self.trace_5g.throughput_at(t_s)

    def switch_to(self, interface: str, t_s: float) -> None:
        if interface not in ("5G", "4G"):
            raise ValueError(f"unknown interface {interface!r}")
        if interface == self.active:
            return
        self.active = interface
        self.switch_count += 1
        self._low_since = None
        self._high_since = None
        if self.switch_overhead_s > 0:
            # Under EN-DC the LTE anchor stays connected, so falling
            # back to 4G is nearly instant; only re-activating the NR
            # leg pays the full promotion-scale gap (Table 7).
            overhead = (
                self.switch_overhead_s
                if interface == "5G"
                else 0.2 * self.switch_overhead_s
            )
            self.dead_until_s = t_s + overhead

    def _run_watchdog(self, t_s: float) -> None:
        rate_5g = self.trace_5g.throughput_at(t_s)
        if self.active == "5G":
            if rate_5g < self.avg_4g_mbps:
                if self._low_since is None:
                    self._low_since = t_s
                elif t_s - self._low_since >= self.bail_after_s:
                    self.switch_to("4G", t_s)
            else:
                self._low_since = None
        else:
            if rate_5g > self.return_factor * self.avg_4g_mbps:
                if self._high_since is None:
                    self._high_since = t_s
                elif t_s - self._high_since >= self.return_after_s:
                    self.switch_to("5G", t_s)
            else:
                self._high_since = None

    def __call__(self, t_s: float) -> float:
        if self.watchdog and t_s >= self.dead_until_s:
            self._run_watchdog(t_s)
        if t_s < self.dead_until_s:
            return 0.05  # radio switching: essentially dead air
        trace = self.trace_5g if self.active == "5G" else self.trace_4g
        return trace.throughput_at(t_s)


@dataclass
class _SelectorABR(ABRAlgorithm):
    """Wraps an inner ABR, logging the interface serving each chunk.

    The interface policy itself runs in the bandwidth watchdog; this
    wrapper only records which radio each chunk rode (for the energy
    accounting) and exposes the inner ABR unchanged.
    """

    inner: ABRAlgorithm
    bandwidth: _SwitchingBandwidth
    avg_4g_mbps: float
    buffer_return_s: float
    interface_log: List[str] = field(default_factory=list)
    name: str = "5G-aware"

    def reset(self) -> None:
        self.inner.reset()
        self.interface_log.clear()

    def select(self, context: ABRContext) -> int:
        self.interface_log.append(self.bandwidth.active)
        return self.inner.select(context)


@dataclass
class StreamingInterfaceSelector:
    """Runs 5G-only and 5G-aware playbacks over paired traces.

    Attributes:
        manifest: video manifest (the 5G ladder).
        buffer_return_s: buffer threshold to return to 5G (paper: 10 s).
        switch_overhead_s: dead-air duration per interface switch,
            matching the section 4.2 promotion delays (~1.5 s).
        device: UE whose power curves price the energy (S20U).
        network_5g, network_4g: power-curve keys for the two interfaces.
    """

    manifest: VideoManifest
    buffer_return_s: float = 10.0
    switch_overhead_s: float = 1.5
    device: Optional[DeviceProfile] = None
    network_5g: str = "verizon-nsa-mmwave"
    network_4g: str = "verizon-lte"

    def __post_init__(self) -> None:
        if self.buffer_return_s <= 0:
            raise ValueError("buffer_return_s must be positive")
        if self.switch_overhead_s < 0:
            raise ValueError("switch_overhead_s must be non-negative")
        if self.device is None:
            self.device = get_device("S20U")

    # -- schemes -----------------------------------------------------------
    def play_5g_only(
        self, trace_5g: ThroughputTrace, abr: Optional[ABRAlgorithm] = None
    ) -> InterfaceSelectionResult:
        """Baseline: the whole stream rides the 5G interface."""
        abr = abr or FastMPC()
        player = Player(self.manifest)
        playback = player.play(abr, trace_5g.throughput_at)
        interfaces = ["5G"] * len(playback.chunk_tracks)
        energy = self._energy_j(playback, interfaces)
        return InterfaceSelectionResult(
            playback=playback,
            interface_per_chunk=interfaces,
            switches=0,
            energy_j=energy,
        )

    def play_5g_aware(
        self,
        trace_5g: ThroughputTrace,
        trace_4g: ThroughputTrace,
        abr: Optional[ABRAlgorithm] = None,
        with_overhead: bool = True,
    ) -> InterfaceSelectionResult:
        """The proposed scheme (optionally zero-overhead, Fig. 18c's
        "5G-aware MPC NO" variant)."""
        abr = abr or FastMPC()
        overhead = self.switch_overhead_s if with_overhead else 0.0
        bandwidth = _SwitchingBandwidth(trace_5g, trace_4g, overhead)
        selector = _SelectorABR(
            inner=abr,
            bandwidth=bandwidth,
            avg_4g_mbps=trace_4g.mean_mbps,
            buffer_return_s=self.buffer_return_s,
        )
        player = Player(self.manifest)
        playback = player.play(selector, bandwidth)
        energy = self._energy_j(playback, selector.interface_log)
        return InterfaceSelectionResult(
            playback=playback,
            interface_per_chunk=list(selector.interface_log),
            switches=bandwidth.switch_count,
            energy_j=energy,
        )

    # -- energy ------------------------------------------------------------
    def _energy_j(
        self, playback: PlaybackResult, interface_per_chunk: List[str]
    ) -> float:
        """Price the download timeline with the device power curves.

        The timeline is time-aligned with the wall clock (see
        ``repro.video.timeline``), so the integral runs over each
        tick's *true* duration — the final tick carries only the
        wall-clock remainder. Ticks are attributed to interfaces by
        the chunk in flight when the tick ends (exact via the recorded
        chunk finish times); ticks after the last finish — the final
        buffer drain — inherit the last chunk's radio. Idle/RTT/drain
        ticks still pay the connected-radio intercept, which is what
        makes needless 5G time expensive.
        """
        curve_5g = self.device.curve(self.network_5g)
        curve_4g = self.device.curve(self.network_4g)
        timeline = playback.download_rate_timeline
        if timeline.size == 0:
            return 0.0
        durations = playback.tick_durations_s
        zeros = np.zeros_like(timeline)
        power_5g = curve_5g.power_mw_series(timeline, zeros)
        power_4g = curve_4g.power_mw_series(timeline, zeros)
        finishes = np.asarray(playback.chunk_finish_times_s, dtype=np.float64)
        if interface_per_chunk and finishes.size == len(interface_per_chunk):
            tick_ends = np.cumsum(durations)
            chunk_idx = np.searchsorted(finishes, tick_ends - 1e-9, side="left")
            chunk_idx = np.minimum(chunk_idx, len(interface_per_chunk) - 1)
            on_5g = np.asarray(
                [iface == "5G" for iface in interface_per_chunk], dtype=bool
            )[chunk_idx]
        else:
            on_5g = np.ones(timeline.size, dtype=bool)
        power_mw = np.where(on_5g, power_5g, power_4g)
        return float(np.sum(power_mw * durations)) / 1000.0


def evaluate_pairs(
    selector: StreamingInterfaceSelector,
    pairs: List[Tuple[ThroughputTrace, ThroughputTrace]],
    abr_factory=FastMPC,
) -> dict:
    """Run the three schemes over paired (5G, 4G) traces.

    Returns per-scheme mean stall %, normalized bitrate, and energy —
    the Fig. 18c / Table 4 summary.
    """
    from repro.video.qoe import normalized_bitrate, stall_percent

    schemes = {
        "5G-only MPC": [],
        "5G-aware MPC": [],
        "5G-aware MPC NO": [],
    }
    for trace_5g, trace_4g in pairs:
        schemes["5G-only MPC"].append(selector.play_5g_only(trace_5g, abr_factory()))
        schemes["5G-aware MPC"].append(
            selector.play_5g_aware(trace_5g, trace_4g, abr_factory(), with_overhead=True)
        )
        schemes["5G-aware MPC NO"].append(
            selector.play_5g_aware(trace_5g, trace_4g, abr_factory(), with_overhead=False)
        )
    top = selector.manifest.ladder.top_mbps
    summary = {}
    for name, results in schemes.items():
        summary[name] = {
            "stall_percent": float(
                np.mean(
                    [stall_percent(r.playback.stall_s, r.playback.playback_s) for r in results]
                )
            ),
            "normalized_bitrate": float(
                np.mean(
                    [normalized_bitrate(r.playback.chunk_bitrates_mbps, top) for r in results]
                )
            ),
            "energy_j": float(np.mean([r.energy_j for r in results])),
            "energy_std": float(np.std([r.energy_j for r in results])),
            "switches": float(np.mean([r.switches for r in results])),
        }
    return summary
