"""Energy-aware ABR (ROADMAP item 3b).

Couples chunk-level rate selection to the section 4.5 power model and
the section 4.2 RRC state machine, after "Improving UE Energy
Efficiency through Network-aware Video Streaming over 5G" (PAPERS.md):
every candidate track is scored on its one-step linear QoE *minus*
``energy_weight`` times the radio energy the chunk is predicted to
cost.

The energy estimate mirrors how the corrected timeline prices a real
playback (docs/video.md):

* **transfer** — the DTR curve at the predicted delivery rate,
  integrated over the predicted download time;
* **gap** — the idle window until the next chunk request. Within the
  carrier's RRC inactivity timer the radio stays connected and pays
  the DTR intercept; a gap that outlives the timer instead pays the
  Table 2 demotion tail via :func:`repro.power.tail.tail_energy_j`
  (only reachable for chunk lengths beyond the paper's ladder, but it
  keeps the estimator honest for long-form scheduling).

With ``energy_weight = 0`` the controller degrades to a pure one-step
QoE maximizer, which is the baseline the energy/QoE trade-off gauges
compare against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.power.device import get_device
from repro.power.tail import tail_energy_j
from repro.rrc.parameters import get_parameters
from repro.video.abr.base import ABRAlgorithm, ABRContext, harmonic_mean


@dataclass
class EnergyAware(ABRAlgorithm):
    """QoE-minus-energy chunk scheduler.

    Attributes:
        energy_weight: λ, in QoE units (Mbps) per joule. 0 disables
            energy awareness; larger values trade bitrate for energy.
        device_name: UE whose DTR curves price the transfer (S20U).
        network_key: power-curve / RRC-parameter key.
        safety: multiplicative discount on the throughput prediction.
        window: throughput-history window for the harmonic mean.
    """

    energy_weight: float = 0.0
    device_name: str = "S20U"
    network_key: str = "verizon-nsa-mmwave"
    safety: float = 0.9
    window: int = 5
    name: str = "energyaware"

    _curve: object = field(init=False, repr=False, default=None)
    _inactivity_s: float = field(init=False, repr=False, default=0.0)
    _sleep_gap_energy_j: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.energy_weight < 0:
            raise ValueError("energy_weight must be non-negative")
        if not 0 < self.safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self._curve = get_device(self.device_name).curve(self.network_key)
        self._inactivity_s = get_parameters(self.network_key).inactivity_ms / 1000.0
        # Energy of one full demotion tail (integrates the RRC schedule
        # against Table 2); cached, it does not depend on the gap.
        self._sleep_gap_energy_j = tail_energy_j(self.network_key)

    # -- energy estimator ---------------------------------------------------
    def transfer_energy_j(self, size_mbit: float, rate_mbps: float) -> float:
        """DTR-curve energy of moving ``size_mbit`` at ``rate_mbps``."""
        rate = max(rate_mbps, 1e-3)
        download_s = size_mbit / rate
        return self._curve.power_mw(dl_mbps=rate) * download_s / 1000.0

    def gap_energy_j(self, gap_s: float) -> float:
        """Idle energy between the chunk finishing and the next request.

        Connected-intercept pricing inside the RRC inactivity timer
        (matching how the playback timeline prices idle ticks); beyond
        it, the connected window plus the Table 2 demotion tail.
        """
        if gap_s <= 0:
            return 0.0
        intercept_j = self._curve.power_mw(dl_mbps=0.0) / 1000.0
        if gap_s <= self._inactivity_s:
            return intercept_j * gap_s
        return intercept_j * self._inactivity_s + self._sleep_gap_energy_j

    # -- ABR ---------------------------------------------------------------
    def _utility(self, ladder, track: int) -> float:
        """Log-utility QoE term (Yin et al.'s concave variant), scaled
        so the top track is worth its bitrate in Mbps.

        Perceptual quality saturates with bitrate, so the energy
        trade-off is graduated: the expensive top-of-ladder megabits
        are surrendered first as ``energy_weight`` grows, instead of
        every track flipping to the bottom at a single threshold.
        """
        span = math.log(ladder.top_mbps / ladder.bottom_mbps)
        if span <= 0:
            return ladder[track]
        return (
            ladder.top_mbps * math.log(ladder[track] / ladder.bottom_mbps) / span
        )

    def select(self, context: ABRContext) -> int:
        samples = context.recent_throughput(self.window)
        if not samples:
            return 0
        predicted = max(harmonic_mean(samples) * self.safety, 1e-3)
        ladder = context.ladder
        last_utility = self._utility(ladder, context.last_track)
        rebuffer_penalty = ladder.top_mbps
        best_track = 0
        best_score = -float("inf")
        for track in range(context.n_tracks):
            size_mbit = context.manifest.chunk_size_mbit(context.chunk_index, track)
            download_s = size_mbit / predicted + context.rtt_s
            stall_s = max(0.0, download_s - context.buffer_s)
            utility = self._utility(ladder, track)
            # Half-weight switch penalty: a one-step greedy score with
            # the full MPC smoothness weight makes every upward move a
            # wash (gain == penalty) and camps on the bottom track.
            qoe = (
                utility
                - rebuffer_penalty * stall_s
                - 0.5 * abs(utility - last_utility)
            )
            gap_s = max(0.0, context.manifest.chunk_s - download_s)
            energy_j = self.transfer_energy_j(size_mbit, predicted) + self.gap_energy_j(
                gap_s
            )
            score = qoe - self.energy_weight * energy_j
            if score > best_score:
                best_score = score
                best_track = track
        return best_track
