"""Pensieve-style learned ABR (Mao et al., SIGCOMM 2017).

The original Pensieve trains an A3C policy network on (mostly 4G-era)
throughput traces. We reproduce the *behavioural* property the paper's
section 5.2 exposes — a learned policy whose training distribution
lacks 5G's crater-and-spike dynamics chooses top-track chunks it then
regrets, inflating stalls by ~260% — with a compact numpy MLP policy
trained by imitation of an MPC teacher on 4G-like traces.

Training is deterministic (fixed seed), lazy, and cached at class level
so test suites pay the cost once. The policy's observation vector
mirrors Pensieve's: normalised recent throughputs, buffer level, last
quality, and remaining-chunk fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.video.abr.base import ABRAlgorithm, ABRContext

_N_THROUGHPUT = 5
_HIDDEN = 24


def _features(context: ABRContext) -> np.ndarray:
    """Pensieve-style observation, normalised by the ladder top."""
    top = context.ladder.top_mbps
    history = context.recent_throughput(_N_THROUGHPUT)
    padded = [0.0] * (_N_THROUGHPUT - len(history)) + [
        min(h / top, 4.0) for h in history
    ]
    return np.array(
        padded
        + [
            min(context.buffer_s / 30.0, 1.5),
            context.last_track / max(context.n_tracks - 1, 1),
            min(context.chunks_remaining / max(context.manifest.n_chunks, 1), 1.0),
        ]
    )


class _PolicyNet:
    """Two-layer softmax policy trained with cross-entropy SGD."""

    def __init__(self, n_inputs: int, n_actions: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / n_inputs)
        scale2 = np.sqrt(2.0 / _HIDDEN)
        self.w1 = rng.normal(0.0, scale1, size=(n_inputs, _HIDDEN))
        self.b1 = np.zeros(_HIDDEN)
        self.w2 = rng.normal(0.0, scale2, size=(_HIDDEN, n_actions))
        self.b2 = np.zeros(n_actions)

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(x @ self.w1 + self.b1, 0.0)
        logits = hidden @ self.w2 + self.b2
        logits = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=-1, keepdims=True)
        return hidden, probs

    def train(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 250,
        lr: float = 0.05,
        batch: int = 64,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        n = X.shape[0]
        n_actions = self.b2.shape[0]
        onehot = np.zeros((n, n_actions))
        onehot[np.arange(n), y] = 1.0
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = X[idx], onehot[idx]
                hidden, probs = self.forward(xb)
                grad_logits = (probs - yb) / xb.shape[0]
                grad_w2 = hidden.T @ grad_logits
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = grad_logits @ self.w2.T
                grad_hidden[hidden <= 0] = 0.0
                grad_w1 = xb.T @ grad_hidden
                grad_b1 = grad_hidden.sum(axis=0)
                self.w2 -= lr * grad_w2
                self.b2 -= lr * grad_b2
                self.w1 -= lr * grad_w1
                self.b1 -= lr * grad_b1

    def act(self, x: np.ndarray) -> int:
        _, probs = self.forward(x.reshape(1, -1))
        return int(np.argmax(probs[0]))


def _collect_teacher_dataset(
    n_tracks: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Run an MPC teacher over 4G-like traces, record (obs, action)."""
    # Imported here to avoid a circular import at module load.
    from repro.traces.lumos import LumosConfig, generate_lumos_corpus
    from repro.video.abr.mpc import FastMPC
    from repro.video.encoding import build_ladder, VideoManifest
    from repro.video.player import Player

    _, traces_4g = generate_lumos_corpus(
        LumosConfig(n_5g=0, n_4g=12, duration_s=180, seed=seed)
    )
    ladder = build_ladder(20.0, n_tracks=n_tracks)
    manifest = VideoManifest(ladder=ladder, chunk_s=4.0, n_chunks=40)
    player = Player(manifest)

    observations: List[np.ndarray] = []
    actions: List[int] = []

    class _Recorder(FastMPC):
        def select(self, context: ABRContext) -> int:
            track = super().select(context)
            observations.append(_features(context))
            actions.append(track)
            return track

    teacher = _Recorder()
    for trace in traces_4g:
        player.play(teacher, trace.throughput_at)
    return np.array(observations), np.array(actions)


@dataclass
class Pensieve(ABRAlgorithm):
    """Learned policy ABR with a 4G-trained imitation network.

    Attributes:
        seed: training seed (networks are cached per (n_tracks, seed)).
        aggression_bonus: small logit shift toward higher tracks,
            reflecting the reward-maximising optimism learned policies
            exhibit out-of-distribution.
    """

    seed: int = 7
    aggression_bonus: float = 0.35
    name: str = "Pensieve"
    _net: Optional[_PolicyNet] = field(init=False, default=None, repr=False)

    _CACHE: dict = None  # class-level net cache

    def _ensure_net(self, n_tracks: int) -> _PolicyNet:
        if Pensieve._CACHE is None:
            Pensieve._CACHE = {}
        key = (n_tracks, self.seed)
        if key not in Pensieve._CACHE:
            X, y = _collect_teacher_dataset(n_tracks, self.seed)
            net = _PolicyNet(X.shape[1], n_tracks, seed=self.seed)
            net.train(X, y, seed=self.seed)
            Pensieve._CACHE[key] = net
        return Pensieve._CACHE[key]

    def select(self, context: ABRContext) -> int:
        net = self._net or self._ensure_net(context.n_tracks)
        self._net = net
        x = _features(context)
        _, probs = net.forward(x.reshape(1, -1))
        logits = np.log(probs[0] + 1e-12)
        # Out-of-distribution optimism: tilt toward higher tracks.
        logits += self.aggression_bonus * np.linspace(0.0, 1.0, logits.shape[0])
        return int(np.argmax(logits))

    def reset(self) -> None:
        # Keep the trained network; per-session state lives in context.
        pass
