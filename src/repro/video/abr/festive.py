"""FESTIVE (Jiang et al., CoNEXT 2012): fairness/efficiency/stability.

The pieces the paper's evaluation exercises: a harmonic-mean bandwidth
estimate over a long window, *gradual* switching (at most one ladder
step per chunk, and upswitches only after ``k`` consecutive chunks
supporting the higher rate), and a stability-vs-efficiency score when
deciding whether to act on a candidate switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.video.abr.base import ABRAlgorithm, ABRContext, harmonic_mean


@dataclass
class FESTIVE(ABRAlgorithm):
    """FESTIVE rate selection.

    Attributes:
        window: samples in the harmonic-mean bandwidth estimate.
        upswitch_patience: consecutive chunks a higher rate must be
            sustainable before switching up (FESTIVE's k = target level).
        alpha: stability weight in the score function.
    """

    window: int = 8
    upswitch_patience: int = 2
    alpha: float = 12.0
    stability_window: int = 10
    name: str = "FESTIVE"
    _pending_up: int = field(init=False, default=0)
    _switch_log: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.window < 1 or self.upswitch_patience < 1:
            raise ValueError("window and patience must be >= 1")

    def reset(self) -> None:
        self._pending_up = 0
        self._switch_log = []

    def _recent_switches(self) -> int:
        return sum(self._switch_log[-self.stability_window :])

    def select(self, context: ABRContext) -> int:
        history = context.recent_throughput(self.window)
        if not history:
            return 0
        estimate = harmonic_mean(history)
        ladder = context.ladder
        current = context.last_track
        reference = ladder.index_for_rate(estimate)

        if reference > current:
            self._pending_up += 1
            if self._pending_up >= self.upswitch_patience:
                candidate = current + 1  # gradual: one step at a time
            else:
                candidate = current
        elif reference < current:
            self._pending_up = 0
            candidate = current - 1
        else:
            self._pending_up = 0
            candidate = current

        if candidate == current:
            self._switch_log.append(0)
            return current
        # Stability score over a sliding window of recent switches
        # (FESTIVE's 2^k cost); efficiency score: how far the candidate
        # still is from the bandwidth-matched reference level.
        stability_cost = 2.0 ** self._recent_switches() + 1.0
        efficiency_gain = abs(
            ladder[reference] - ladder[current]
        ) / max(ladder[current], 1e-9)
        if self.alpha * efficiency_gain >= stability_cost or candidate < current:
            self._switch_log.append(1)
            if candidate > current:
                self._pending_up = 0
            return candidate
        self._switch_log.append(0)
        return current
