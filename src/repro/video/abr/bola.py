"""BOLA: Lyapunov-based buffer control (Spiteri et al., INFOCOM 2016).

Each chunk boundary maximises ``(V * utility_m + V * gamma - buffer) /
size_m`` over tracks m, with logarithmic utilities. Parameters follow
the BOLA-BASIC derivation from the buffer bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.video.abr.base import ABRAlgorithm, ABRContext


@dataclass
class BOLA(ABRAlgorithm):
    """BOLA-BASIC.

    Attributes:
        min_buffer_s: lower buffer threshold used in parameter
            derivation.
        max_buffer_s: upper buffer target.
    """

    min_buffer_s: float = 3.0
    max_buffer_s: float = 30.0
    name: str = "BOLA"
    _v: Optional[float] = field(init=False, default=None)
    _gamma_p: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if not 0 < self.min_buffer_s < self.max_buffer_s:
            raise ValueError("need 0 < min_buffer_s < max_buffer_s")

    def reset(self) -> None:
        self._v = None
        self._gamma_p = None

    def _derive_parameters(self, context: ABRContext) -> None:
        ladder = context.ladder
        sizes = np.array(ladder.bitrates_mbps)
        utilities = np.log(sizes / sizes[0])
        # BOLA-BASIC: choose V and gamma so the lowest track activates
        # at min_buffer and the highest saturates at max_buffer.
        chunk = context.manifest.chunk_s
        top_utility = utilities[-1]
        self._gamma_p = self.min_buffer_s / chunk
        self._v = (self.max_buffer_s / chunk - 1.0) / (
            top_utility + self._gamma_p
        )

    def select(self, context: ABRContext) -> int:
        if self._v is None:
            self._derive_parameters(context)
        ladder = context.ladder
        chunk = context.manifest.chunk_s
        buffer_chunks = context.buffer_s / chunk
        sizes = np.array(ladder.bitrates_mbps)
        utilities = np.log(sizes / sizes[0])
        scores = (
            self._v * (utilities + self._gamma_p) - buffer_chunks
        ) / sizes
        # dash.js downloads regardless of score sign (pausing is handled
        # by the player's buffer cap), so take the argmax unconditionally.
        return int(np.argmax(scores))
