"""The seven ABR algorithms of the paper's section 5 study.

Four families (section 5.1): buffer-based (BBA, BOLA),
throughput-based (rate-based RB, FESTIVE), control-theoretic (fastMPC,
robustMPC), and learning-based (Pensieve).
"""

from repro.video.abr.base import ABRAlgorithm, ABRContext
from repro.video.abr.bba import BBA
from repro.video.abr.bola import BOLA
from repro.video.abr.energy import EnergyAware
from repro.video.abr.rate import RateBased
from repro.video.abr.festive import FESTIVE
from repro.video.abr.mpc import FastMPC, RobustMPC
from repro.video.abr.pensieve import Pensieve


def make_abr(name: str, **kwargs) -> ABRAlgorithm:
    """ABR factory by paper name (case-insensitive)."""
    registry = {
        "bba": BBA,
        "bola": BOLA,
        "rb": RateBased,
        "festive": FESTIVE,
        "fastmpc": FastMPC,
        "robustmpc": RobustMPC,
        "pensieve": Pensieve,
        "energyaware": EnergyAware,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown ABR {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)


ALL_ABR_NAMES = ("BBA", "RB", "BOLA", "fastMPC", "Pensieve", "robustMPC", "FESTIVE")

__all__ = [
    "ABRAlgorithm",
    "ABRContext",
    "ALL_ABR_NAMES",
    "BBA",
    "BOLA",
    "EnergyAware",
    "FESTIVE",
    "FastMPC",
    "Pensieve",
    "RateBased",
    "RobustMPC",
    "make_abr",
]
