"""BBA: buffer-based adaptation (Huang et al., SIGCOMM 2014).

BBA-0 maps the buffer level linearly from a reservoir to a cushion onto
the bitrate ladder: below the reservoir it plays the lowest track,
above ``reservoir + cushion`` the highest, linear in between. Its
conservatism is why it is the one algorithm in Fig. 17c whose stalls do
*not* blow up under 5G.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.abr.base import ABRAlgorithm, ABRContext


@dataclass
class BBA(ABRAlgorithm):
    """BBA-0 with a reservoir/cushion buffer map.

    Attributes:
        reservoir_s: buffer level below which the lowest track is used.
        cushion_s: width of the linear ramp to the highest track.
    """

    # Sized to dash.js's 12 s stable buffer: the ramp tops out before
    # the buffer cap, so the highest track is reachable in steady state.
    reservoir_s: float = 3.0
    cushion_s: float = 8.0
    name: str = "BBA"

    def __post_init__(self) -> None:
        if self.reservoir_s <= 0 or self.cushion_s <= 0:
            raise ValueError("reservoir and cushion must be positive")

    def select(self, context: ABRContext) -> int:
        ladder = context.ladder
        buffer_s = context.buffer_s
        if buffer_s <= self.reservoir_s:
            return 0
        if buffer_s >= self.reservoir_s + self.cushion_s:
            return len(ladder) - 1
        fraction = (buffer_s - self.reservoir_s) / self.cushion_s
        # Map the fraction onto the bitrate range, then snap down.
        target_rate = ladder.bottom_mbps + fraction * (
            ladder.top_mbps - ladder.bottom_mbps
        )
        return ladder.index_for_rate(target_rate)
