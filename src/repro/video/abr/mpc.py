"""MPC-family ABR (Yin et al., SIGCOMM 2015): fastMPC and robustMPC.

Model-predictive control over a lookahead horizon of n chunks: pick the
plan maximising the linear QoE function given a throughput prediction.
``fastMPC`` trusts the harmonic-mean prediction; ``robustMPC`` divides
it by ``(1 + max recent prediction error)``, which is exactly the
conservatism that keeps it inside Fig. 17a's better-QoE region on 5G
while fastMPC overshoots.

The throughput predictor is pluggable (section 5.3 swaps in the GBDT
and ground-truth predictors through this hook).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import List, Optional

import numpy as np

from repro.video.abr.base import ABRAlgorithm, ABRContext, harmonic_mean
from repro.video.qoe import QoEWeights, default_weights


@dataclass
class _MPCBase(ABRAlgorithm):
    """Shared MPC machinery.

    Attributes:
        horizon: lookahead chunks (the paper uses n = 5).
        step_limit: per-chunk ladder movement bound in the plan
            enumeration, keeping the search tractable (dash.js's fastMPC
            table quantisation plays the same role).
        predictor: optional external predictor; defaults to harmonic
            mean over the last 5 chunks.
    """

    horizon: int = 5
    step_limit: int = 2
    predictor: Optional[object] = None
    weights: Optional[QoEWeights] = None
    _past_errors: List[float] = field(init=False, default_factory=list)

    def reset(self) -> None:
        self._past_errors = []
        if self.predictor is not None and hasattr(self.predictor, "reset"):
            self.predictor.reset()

    # -- prediction ------------------------------------------------------
    def _raw_prediction(self, context: ABRContext) -> float:
        if self.predictor is not None:
            return float(self.predictor.predict(context))
        history = context.recent_throughput(5)
        if not history:
            return context.ladder.bottom_mbps
        return harmonic_mean(history)

    def _horizon_predictions(
        self, context: ABRContext, scalar: float, horizon: int
    ) -> List[float]:
        """Per-plan-step predictions; oracle predictors supply a true
        sequence via ``predict_horizon``, others hold the scalar."""
        if self.predictor is not None and hasattr(self.predictor, "predict_horizon"):
            sequence = list(self.predictor.predict_horizon(context, horizon))
            if len(sequence) >= horizon:
                return [max(v, 1e-3) for v in sequence[:horizon]]
        return [max(scalar, 1e-3)] * horizon

    def _track_error(self, context: ABRContext) -> None:
        """Record the relative error of the previous prediction."""
        if not context.throughput_history:
            return
        actual = context.throughput_history[-1]
        if hasattr(self, "_last_prediction") and actual > 0:
            error = abs(self._last_prediction - actual) / actual
            self._past_errors.append(error)
            if len(self._past_errors) > 5:
                self._past_errors.pop(0)

    def _prediction(self, context: ABRContext) -> float:
        raise NotImplementedError

    # -- planning ----------------------------------------------------------
    def select(self, context: ABRContext) -> int:
        self._track_error(context)
        prediction = self._prediction(context)
        self._last_prediction = self._raw_prediction(context)
        weights = self.weights or default_weights(context.ladder.top_mbps)

        manifest = context.manifest
        horizon = min(self.horizon, context.chunks_remaining)
        last = context.last_track
        n_tracks = context.n_tracks

        candidates = [
            t
            for t in range(
                max(0, last - self.step_limit),
                min(n_tracks, last + self.step_limit + 1),
            )
        ]
        best_track = 0
        best_qoe = float("-inf")
        predictions = self._horizon_predictions(context, prediction, max(horizon, 1))

        for plan in product(candidates, repeat=min(horizon, 3)):
            # Beyond 3 explicit steps, hold the last planned track.
            full_plan = list(plan) + [plan[-1]] * (horizon - len(plan))
            qoe = self._evaluate_plan(
                full_plan, context, predictions, weights, manifest
            )
            if qoe > best_qoe:
                best_qoe = qoe
                best_track = full_plan[0]
        return best_track

    def _evaluate_plan(
        self, plan, context: ABRContext, predictions, weights, manifest
    ) -> float:
        buffer_s = context.buffer_s
        stall = 0.0
        bitrates = []
        previous = context.ladder[context.last_track]
        for offset, track in enumerate(plan):
            chunk_index = context.chunk_index + offset
            size_mbit = manifest.chunk_size_mbit(chunk_index, track)
            download_s = size_mbit / predictions[min(offset, len(predictions) - 1)]
            if download_s > buffer_s:
                stall += download_s - buffer_s
                buffer_s = 0.0
            else:
                buffer_s -= download_s
            buffer_s += manifest.chunk_s
            bitrates.append(context.ladder[track])
        utility = sum(bitrates)
        smoothness = 0.0
        prev = previous
        for bitrate in bitrates:
            smoothness += abs(bitrate - prev)
            prev = bitrate
        return (
            utility
            - weights.rebuffer_penalty * stall
            - weights.smoothness_penalty * smoothness
        )


@dataclass
class FastMPC(_MPCBase):
    """MPC trusting the raw throughput prediction."""

    name: str = "fastMPC"

    def _prediction(self, context: ABRContext) -> float:
        return self._raw_prediction(context)


@dataclass
class RobustMPC(_MPCBase):
    """MPC with the robust (error-discounted) prediction.

    The original discounts by the *max* recent error; on mmWave traces
    whose errors routinely exceed 100% that collapses the prediction to
    the bottom track, so — like dash.js's implementation — we bound the
    discount by the mean of the recent errors, keeping the algorithm
    conservative but not catatonic.
    """

    name: str = "robustMPC"

    def _prediction(self, context: ABRContext) -> float:
        raw = self._raw_prediction(context)
        if not self._past_errors:
            return raw
        error = float(np.mean(self._past_errors))
        return raw / (1.0 + min(error, 0.5))
