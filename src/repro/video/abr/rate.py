"""RB: simple rate-based adaptation.

Estimates future throughput as the harmonic mean of the last few chunk
throughputs and picks the highest track that fits under a safety
factor — the classic throughput-rule baseline of section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.abr.base import ABRAlgorithm, ABRContext, harmonic_mean


@dataclass
class RateBased(ABRAlgorithm):
    """Harmonic-mean rate rule.

    Attributes:
        window: throughput samples in the harmonic mean.
        safety: fraction of the estimate considered usable.
    """

    window: int = 5
    safety: float = 1.0
    name: str = "RB"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0 < self.safety <= 1:
            raise ValueError("safety must be in (0, 1]")

    def select(self, context: ABRContext) -> int:
        history = context.recent_throughput(self.window)
        if not history:
            return 0
        estimate = harmonic_mean(history) * self.safety
        return context.ladder.index_for_rate(estimate)
