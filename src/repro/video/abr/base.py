"""ABR algorithm interface.

An ABR sees, per chunk boundary, the playout buffer level, its previous
track, the observed per-chunk throughput history, and the manifest
(ladder + upcoming chunk sizes) — the same observation space dash.js
exposes and the paper's testbed uses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

from repro.video.encoding import VideoManifest


@dataclass
class ABRContext:
    """Observation handed to the ABR at a chunk boundary."""

    manifest: VideoManifest
    chunk_index: int
    buffer_s: float
    last_track: int
    throughput_history: List[float] = field(default_factory=list)
    rtt_s: float = 0.03
    wall_clock_s: float = 0.0

    @property
    def ladder(self):
        return self.manifest.ladder

    @property
    def n_tracks(self) -> int:
        return len(self.manifest.ladder)

    @property
    def chunks_remaining(self) -> int:
        return self.manifest.n_chunks - self.chunk_index

    def recent_throughput(self, window: int = 5) -> List[float]:
        """The last ``window`` per-chunk throughput samples (Mbps)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        return self.throughput_history[-window:]


class ABRAlgorithm(abc.ABC):
    """Base class: stateless between sessions via :meth:`reset`."""

    name: str = "abr"

    @abc.abstractmethod
    def select(self, context: ABRContext) -> int:
        """Return the track index to download for the current chunk."""

    def reset(self) -> None:
        """Clear any cross-chunk state before a new playback session."""


def harmonic_mean(values: List[float]) -> float:
    """Harmonic mean of positive samples (throughput estimation)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return len(positives) / sum(1.0 / v for v in positives)
