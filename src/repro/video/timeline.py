"""Time-aligned download timelines for the video players.

The section 5 players record how fast the radio was moving bits at
every instant of a playback so the section 4.5 power model can price
the session. The contract (docs/video.md):

* A playback is a sequence of **segments** ``(mbit, duration_s)`` —
  download ticks carry megabits over their *actual* duration (the last
  tick of a chunk is usually partial), while RTT waits, buffer-cap
  idling, encoder waits (live) and the final buffer drain are zero-rate
  segments with their full fractional duration.
* ``resample_to_ticks`` folds the segments onto the fixed
  ``DOWNLOAD_TICK_S`` grid. Every tick's rate is the duration-weighted
  mean rate inside it, so for the linear DTR power curves of
  ``repro.power.device`` the tick-wise integral is *exact*:
  ``sum(power_mw(rate_i) * dur_i)`` equals the continuous integral.
* Invariant, pinned by tests: ``timeline.size * DOWNLOAD_TICK_S``
  equals ``wall_clock_s`` to within one tick (the final tick is
  short by the wall-clock remainder), and
  ``sum(rate_i * dur_i)`` equals the total megabits downloaded.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: Resolution of the download-rate timeline (seconds per tick).
DOWNLOAD_TICK_S = 0.1


class TimelineRecorder:
    """Accumulates ``(mbit, duration_s)`` segments during a playback."""

    __slots__ = ("tick_s", "_mbits", "_durations")

    def __init__(self, tick_s: float = DOWNLOAD_TICK_S) -> None:
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self.tick_s = float(tick_s)
        self._mbits: List[float] = []
        self._durations: List[float] = []

    def add(self, mbit: float, duration_s: float) -> None:
        """Record ``mbit`` delivered over ``duration_s`` of wall clock."""
        if duration_s <= 0.0:
            return
        self._mbits.append(float(mbit))
        self._durations.append(float(duration_s))

    @property
    def elapsed_s(self) -> float:
        return float(sum(self._durations))

    def finish(self) -> np.ndarray:
        """Resample onto the tick grid; returns the rate timeline."""
        rates, _ = resample_to_ticks(self._mbits, self._durations, self.tick_s)
        return rates


def resample_to_ticks(
    mbits, durations, tick_s: float = DOWNLOAD_TICK_S
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold ``(mbit, duration)`` segments onto a fixed tick grid.

    Returns ``(rates_mbps, tick_durations_s)``. All ticks last
    ``tick_s`` except the final one, which carries the wall-clock
    remainder. Megabits are conserved exactly: the cumulative-megabit
    curve is piecewise linear in time, so sampling it at tick edges
    with ``np.interp`` and differencing loses nothing.
    """
    mbits = np.asarray(mbits, dtype=np.float64)
    durations = np.asarray(durations, dtype=np.float64)
    keep = durations > 0.0
    mbits = mbits[keep]
    durations = durations[keep]
    total_s = float(durations.sum())
    if total_s <= 0.0:
        return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.float64)
    # Tolerate accumulated float noise (up to a microsecond of a
    # tick): 30.00000000004 s is 300 ticks, not 301.
    n_ticks = int(np.ceil(total_s / tick_s - 1e-6))
    n_ticks = max(n_ticks, 1)
    edges = np.minimum(np.arange(1, n_ticks + 1, dtype=np.float64) * tick_s, total_s)
    time_knots = np.concatenate(([0.0], np.cumsum(durations)))
    time_knots[-1] = total_s
    mbit_knots = np.concatenate(([0.0], np.cumsum(mbits)))
    cum_at_edges = np.interp(edges, time_knots, mbit_knots)
    tick_mbits = np.diff(np.concatenate(([0.0], cum_at_edges)))
    tick_durs = np.diff(np.concatenate(([0.0], edges)))
    # Guard the (degenerate) zero-length final tick from float noise.
    tick_durs = np.maximum(tick_durs, 1e-12)
    rates = tick_mbits / tick_durs
    return rates, tick_durs


def tick_durations(
    n_ticks: int, wall_clock_s: float, tick_s: float = DOWNLOAD_TICK_S
) -> np.ndarray:
    """True duration of each tick: full ticks plus a short final one."""
    if n_ticks <= 0:
        return np.zeros(0, dtype=np.float64)
    durs = np.full(n_ticks, tick_s, dtype=np.float64)
    last = wall_clock_s - (n_ticks - 1) * tick_s
    durs[-1] = min(max(last, 1e-12), tick_s)
    return durs


def timeline_energy_j(
    rates_mbps: np.ndarray,
    durations_s: np.ndarray,
    curve,
    rsrp_dbm=None,
) -> float:
    """Integrate a ``RadioPowerCurve`` over a time-aligned timeline.

    Exact for the linear DTR curves because each tick's rate is the
    duration-weighted mean rate inside that tick.
    """
    rates = np.asarray(rates_mbps, dtype=np.float64)
    if rates.size == 0:
        return 0.0
    durations = np.asarray(durations_s, dtype=np.float64)
    if durations.shape != rates.shape:
        raise ValueError("rates and durations must have the same shape")
    power_mw = curve.power_mw_series(rates, np.zeros_like(rates), rsrp_dbm)
    return float(np.sum(power_mw * durations)) / 1000.0
