"""LL-DASH/CMAF live player with latency-target playback-rate control.

The live analogue of :class:`repro.video.player.Player`: the client
chases a live edge produced in real time, downloads CMAF chunks over
chunked transfer as the encoder emits them, adjusts its playback rate
to hold a live-latency target (dash.js catch-up mechanism), and — when
drift exceeds a threshold — jumps the playhead forward. It reuses the
corrected timeline machinery of ``repro.video.timeline``, so a live
session's energy is priced exactly like a VoD one: every wall-clock
second is on the timeline, encoder waits and RTT as zero-rate ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.video.qoe import QoEWeights, mpc_qoe, normalized_bitrate, stall_percent
from repro.video.timeline import (
    DOWNLOAD_TICK_S,
    TimelineRecorder,
    tick_durations,
)
from repro.video.live.controllers import LiveContext, LiveController
from repro.video.live.manifest import LiveManifest

BandwidthFn = Callable[[float], float]


@dataclass(frozen=True)
class LiveQoEWeights:
    """LoL+-style live QoE: the linear VoD terms plus latency and
    playback-rate penalties.

    ``QoE = sum q(R_k) - rebuffer_penalty * stall
          - smoothness_penalty * sum |switch|
          - latency_penalty * mean(max(latency - target, 0)) * n_segments
          - rate_penalty * rate_deviation * n_segments``
    """

    rebuffer_penalty: float
    smoothness_penalty: float = 1.0
    latency_penalty: float = 0.0
    rate_penalty: float = 0.0

    def __post_init__(self) -> None:
        if min(
            self.rebuffer_penalty,
            self.smoothness_penalty,
            self.latency_penalty,
            self.rate_penalty,
        ) < 0:
            raise ValueError("penalties must be non-negative")


def default_live_weights(top_bitrate_mbps: float) -> LiveQoEWeights:
    """Stalls cost as in the MPC convention; latency excess and
    catch-up deviation cost a twentieth of the top bitrate per
    segment-weighted unit, so they bend QoE without swamping it."""
    if top_bitrate_mbps <= 0:
        raise ValueError("top_bitrate_mbps must be positive")
    return LiveQoEWeights(
        rebuffer_penalty=top_bitrate_mbps,
        latency_penalty=0.05 * top_bitrate_mbps,
        rate_penalty=0.05 * top_bitrate_mbps,
    )


@dataclass
class LivePlaybackResult:
    """Everything the live-QoE and energy analyses need.

    The ``download_rate_timeline`` obeys the same contract as VoD
    playbacks: ``timeline.size * tick_s`` equals ``wall_clock_s`` to
    within one tick and each entry is the duration-weighted mean
    download rate of its tick (docs/video.md).
    """

    segment_tracks: List[int]
    segment_bitrates_mbps: List[float]
    stall_s: float
    startup_s: float
    played_s: float
    skipped_s: float
    latency_jumps: int
    rebuffer_events: int
    wall_clock_s: float
    mean_latency_s: float
    p95_latency_s: float
    rate_deviation: float  # time-weighted mean |playback_rate - 1|
    latency_series_s: np.ndarray  # live latency at each segment finish
    download_rate_timeline: np.ndarray
    segment_finish_times_s: List[float]
    ladder_top_mbps: float
    latency_target_s: float
    tick_s: float = DOWNLOAD_TICK_S

    @property
    def stall_percent(self) -> float:
        return stall_percent(self.stall_s, self.played_s)

    @property
    def normalized_bitrate(self) -> float:
        return normalized_bitrate(self.segment_bitrates_mbps, self.ladder_top_mbps)

    @property
    def tick_durations_s(self) -> np.ndarray:
        """True duration of each timeline tick (last tick is partial)."""
        return tick_durations(
            self.download_rate_timeline.size, self.wall_clock_s, self.tick_s
        )

    def qoe(self, weights: Optional[LiveQoEWeights] = None) -> float:
        weights = weights or default_live_weights(self.ladder_top_mbps)
        base = mpc_qoe(
            self.segment_bitrates_mbps,
            self.stall_s,
            QoEWeights(
                rebuffer_penalty=weights.rebuffer_penalty,
                smoothness_penalty=weights.smoothness_penalty,
            ),
        )
        n = len(self.segment_bitrates_mbps)
        excess = np.maximum(self.latency_series_s - self.latency_target_s, 0.0)
        latency_cost = weights.latency_penalty * float(np.mean(excess)) * n
        rate_cost = weights.rate_penalty * self.rate_deviation * n
        return base - latency_cost - rate_cost


@dataclass
class LivePlayer:
    """Live-edge chaser with playback-rate control and drift seeks.

    Attributes:
        manifest: live CMAF manifest.
        latency_target_s: live-latency setpoint the rate controller
            holds (LL-DASH deployments target 2-4 s).
        startup_buffer_s: playback begins after this much media is
            buffered (live players start lean).
        catchup_rate: playback-rate authority: rate stays within
            ``1 +/- catchup_rate`` (dash.js maxCatchupPlaybackRate).
        rate_deadband_s: latency error inside which rate snaps to 1.0.
        min_catchup_buffer_s: never speed up with less buffer than
            this (speeding into a stall is worse than the latency).
        max_drift_s: latency excess over target that triggers a
            playhead jump to re-sync (dash.js liveCatchupLatency jump).
    """

    manifest: LiveManifest
    latency_target_s: float = 3.0
    startup_buffer_s: float = 0.8
    catchup_rate: float = 0.3
    rate_deadband_s: float = 0.1
    min_catchup_buffer_s: float = 0.5
    max_drift_s: float = 4.0
    tick_s: float = DOWNLOAD_TICK_S

    def __post_init__(self) -> None:
        if self.latency_target_s <= 0:
            raise ValueError("latency_target_s must be positive")
        if self.startup_buffer_s <= 0:
            raise ValueError("startup_buffer_s must be positive")
        if not 0.0 <= self.catchup_rate < 1.0:
            raise ValueError("catchup_rate must be in [0, 1)")
        if self.max_drift_s <= 0:
            raise ValueError("max_drift_s must be positive")

    def _playback_rate(self, latency_s: float, buffer_s: float) -> float:
        """Proportional catch-up controller around the latency target."""
        error = latency_s - self.latency_target_s
        if abs(error) <= self.rate_deadband_s:
            return 1.0
        if error > 0 and buffer_s < self.min_catchup_buffer_s:
            return 1.0  # don't speed into a stall
        adjust = max(-1.0, min(1.0, error / self.latency_target_s))
        return 1.0 + adjust * self.catchup_rate

    def play(
        self,
        controller: LiveController,
        bandwidth: BandwidthFn,
        rtt_s: float = 0.03,
    ) -> LivePlaybackResult:
        """Chase the live edge against ``bandwidth(t) -> Mbps``."""
        manifest = self.manifest
        controller.reset()
        recorder = TimelineRecorder(self.tick_s)

        t = 0.0  # wall clock == encoder clock (client joins at t=0)
        position = 0.0  # media time of the playhead
        downloaded = 0.0  # contiguous media downloaded
        playing = False
        stalled = False
        startup_s = 0.0
        stall_s = 0.0
        rebuffer_events = 0
        played_s = 0.0
        skipped_s = 0.0
        latency_jumps = 0
        latency_weighted = 0.0
        latency_time = 0.0
        rate_dev_weighted = 0.0
        rate_dev_time = 0.0
        tracks: List[int] = []
        bitrates: List[float] = []
        throughput_history: List[float] = []
        latency_series: List[float] = []
        segment_finish_times: List[float] = []
        last_track = 0

        def advance(dt: float, mbit: float = 0.0) -> None:
            """Advance the wall clock; render media if playing."""
            nonlocal t, position, stalled, stall_s, rebuffer_events
            nonlocal played_s, latency_weighted, latency_time
            nonlocal rate_dev_weighted, rate_dev_time
            if dt <= 0.0:
                return
            recorder.add(mbit, dt)
            if playing:
                rate = self._playback_rate(t - position, downloaded - position)
                need = dt * rate
                available = downloaded - position
                if available >= need - 1e-12:
                    position += need
                    played_s += need
                    rate_dev_weighted += abs(rate - 1.0) * dt
                    rate_dev_time += dt
                    if stalled:
                        stalled = False
                else:
                    # Buffer empties partway through the step -> stall.
                    rendered = available / rate if rate > 0 else 0.0
                    position += available
                    played_s += available
                    rate_dev_weighted += abs(rate - 1.0) * rendered
                    rate_dev_time += rendered
                    stall_add = dt - rendered
                    stall_s += stall_add
                    if not stalled and stall_add > 0:
                        rebuffer_events += 1
                        stalled = True
                latency_weighted += (t + dt - position) * dt
                latency_time += dt
            t += dt

        for segment_index in range(manifest.n_segments):
            first_available = manifest.chunk_available_at_s(segment_index, 0)
            if t < first_available - 1e-12:
                advance(first_available - t)  # waiting on the encoder
            context = LiveContext(
                manifest=manifest,
                segment_index=segment_index,
                buffer_s=downloaded - position,
                live_latency_s=t - position,
                latency_target_s=self.latency_target_s,
                playback_rate=self._playback_rate(
                    t - position, downloaded - position
                ),
                last_track=last_track,
                throughput_history=list(throughput_history),
                rtt_s=rtt_s,
                wall_clock_s=t,
            )
            track = controller.select(context)
            if not 0 <= track < len(manifest.ladder):
                raise ValueError(
                    f"{type(controller).__name__} chose invalid track {track}"
                )
            segment_size = manifest.segment_size_mbit(segment_index, track)
            chunk_mbit = segment_size / manifest.chunks_per_segment

            # One request per segment: chunked transfer keeps the
            # connection open across the segment's CMAF chunks.
            advance(rtt_s)
            active_download_s = 0.0
            for chunk_index in range(manifest.chunks_per_segment):
                available_at = manifest.chunk_available_at_s(
                    segment_index, chunk_index
                )
                if t < available_at - 1e-12:
                    advance(available_at - t)  # encoder idle mid-transfer
                remaining_mbit = chunk_mbit
                while remaining_mbit > 1e-9:
                    rate = max(bandwidth(t), 1e-3)
                    step_mbit = rate * self.tick_s
                    consumed = min(step_mbit, remaining_mbit)
                    tick = self.tick_s * (consumed / step_mbit)
                    remaining_mbit -= consumed
                    advance(tick, consumed)
                    active_download_s += tick
                downloaded = (
                    segment_index * manifest.segment_s
                    + (chunk_index + 1) * manifest.cmaf_chunk_s
                )
                if (
                    not playing
                    and downloaded - position >= self.startup_buffer_s
                ):
                    playing = True
                    startup_s = t

            # Per-segment throughput over *active* transfer time only:
            # chunked-transfer idle must not dilute the estimate (the
            # measurement problem the LL-DASH paper highlights).
            throughput_history.append(
                segment_size / max(active_download_s, 1e-9)
            )
            tracks.append(track)
            bitrates.append(manifest.ladder[track])
            last_track = track
            segment_finish_times.append(t)
            latency_series.append(t - position)

            # Drift guard: jump the playhead back to the target once
            # latency runs away (catch-up alone cannot recover).
            if playing and (t - position) > self.latency_target_s + self.max_drift_s:
                new_position = min(downloaded, t - self.latency_target_s)
                if new_position > position + 1e-9:
                    skipped_s += new_position - position
                    position = new_position
                    latency_jumps += 1

        # Never-started edge case (stream shorter than the startup
        # buffer): playback begins the moment the download completes.
        if not playing:
            playing = True
            startup_s = t

        # Drain what is buffered; the encoder has stopped, so this is
        # zero-rate radio time under the same rate controller.
        while downloaded - position > 1e-9:
            rate = self._playback_rate(t - position, downloaded - position)
            dt = min(self.tick_s, (downloaded - position) / rate)
            advance(dt)

        mean_latency = latency_weighted / latency_time if latency_time > 0 else 0.0
        rate_deviation = (
            rate_dev_weighted / rate_dev_time if rate_dev_time > 0 else 0.0
        )
        series = np.asarray(latency_series, dtype=np.float64)
        p95_latency = float(np.percentile(series, 95)) if series.size else 0.0
        return LivePlaybackResult(
            segment_tracks=tracks,
            segment_bitrates_mbps=bitrates,
            stall_s=stall_s,
            startup_s=startup_s,
            played_s=played_s,
            skipped_s=skipped_s,
            latency_jumps=latency_jumps,
            rebuffer_events=rebuffer_events,
            wall_clock_s=t,
            mean_latency_s=float(mean_latency),
            p95_latency_s=p95_latency,
            rate_deviation=float(rate_deviation),
            latency_series_s=series,
            download_rate_timeline=recorder.finish(),
            segment_finish_times_s=segment_finish_times,
            ladder_top_mbps=manifest.ladder.top_mbps,
            latency_target_s=self.latency_target_s,
            tick_s=self.tick_s,
        )
