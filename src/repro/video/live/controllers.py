"""Live ABR controllers: LoL+, L2A-LL, Stallion.

The three low-latency rate controllers evaluated by "An Experimental
Study of Low-Latency Video Streaming over 5G" (PAPERS.md), implemented
at the algorithmic level the dash.js rules expose:

* **LoL+** — multi-feature scoring (throughput fit, projected latency,
  rebuffer risk, switch magnitude) with a panic mode when latency or
  buffer degrade badly; a deterministic stand-in for the paper's
  learned SOM weighting.
* **L2A-LL** — Learn2Adapt-LowLatency: online learning over the
  probability simplex with a virtual queue penalizing tracks whose
  download time exceeds the segment's real-time budget.
* **Stallion** — sliding-window mean/standard-deviation throughput
  estimate with a safety offset, plus a latency-triggered step-down.

All controllers are deterministic given their inputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.video.abr.base import harmonic_mean
from repro.video.live.manifest import LiveManifest


@dataclass
class LiveContext:
    """Observation handed to a live controller at a segment boundary."""

    manifest: LiveManifest
    segment_index: int
    buffer_s: float
    live_latency_s: float
    latency_target_s: float
    playback_rate: float
    last_track: int
    throughput_history: List[float] = field(default_factory=list)
    rtt_s: float = 0.03
    wall_clock_s: float = 0.0

    @property
    def ladder(self):
        return self.manifest.ladder

    @property
    def n_tracks(self) -> int:
        return len(self.manifest.ladder)

    def recent_throughput(self, window: int = 4) -> List[float]:
        """The last ``window`` per-segment throughput samples (Mbps)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        return self.throughput_history[-window:]


class LiveController(abc.ABC):
    """Base class: stateless between sessions via :meth:`reset`."""

    name: str = "live"

    @abc.abstractmethod
    def select(self, context: LiveContext) -> int:
        """Return the track index for the next segment."""

    def reset(self) -> None:
        """Clear any cross-segment state before a new session."""


@dataclass
class LoLP(LiveController):
    """LoL+-style weighted multi-feature scoring.

    Scores every candidate track on normalized bitrate utility minus
    projected latency overshoot, rebuffer risk, and switch magnitude;
    drops to the bottom track in panic (latency or buffer far out of
    band), mirroring LoL+'s QoE-driven selection under stress.
    """

    weight_bitrate: float = 1.0
    weight_latency: float = 1.0
    weight_rebuffer: float = 2.0
    weight_switch: float = 0.3
    panic_latency_factor: float = 2.0
    window: int = 4
    name: str = "LoL+"

    def select(self, context: LiveContext) -> int:
        ladder = context.ladder
        samples = context.recent_throughput(self.window)
        if not samples:
            return 0
        if (
            context.live_latency_s
            > self.panic_latency_factor * context.latency_target_s
            or context.buffer_s < 0.5 * context.manifest.cmaf_chunk_s
        ):
            return 0
        estimate = max(harmonic_mean(samples), 1e-3)
        top = ladder.top_mbps
        seg_s = context.manifest.segment_s
        sizes = context.manifest.track_sizes_mbit(context.segment_index)
        last_bitrate = ladder[context.last_track]
        best_track = 0
        best_score = -np.inf
        for track in range(context.n_tracks):
            download_s = sizes[track] / estimate + context.rtt_s
            rebuffer_s = max(0.0, download_s - context.buffer_s)
            projected_latency = context.live_latency_s + max(
                0.0, download_s - seg_s
            )
            score = (
                self.weight_bitrate * ladder[track] / top
                - self.weight_latency
                * max(0.0, projected_latency / context.latency_target_s - 1.0)
                - self.weight_rebuffer * rebuffer_s / seg_s
                - self.weight_switch * abs(ladder[track] - last_bitrate) / top
            )
            if score > best_score:
                best_score = score
                best_track = track
        return best_track


@dataclass
class L2A(LiveController):
    """Learn2Adapt-LL: online learning on the probability simplex.

    Maintains a weight per track and a virtual queue ``Q`` that grows
    whenever the chosen track's projected download time exceeds the
    segment's real-time budget; each decision takes an exponentiated-
    gradient step on ``V * utility - Q * violation`` and plays the
    arg-max of the updated weights.
    """

    utility_weight: float = 2.0  # V: bitrate utility vs. queue stability
    learning_rate: float = 1.0
    window: int = 3
    name: str = "L2A"

    _weights: Optional[np.ndarray] = field(default=None, repr=False)
    _queue: float = field(default=0.0, repr=False)
    _last_violation: Optional[float] = field(default=None, repr=False)

    def reset(self) -> None:
        self._weights = None
        self._queue = 0.0
        self._last_violation = None

    def select(self, context: LiveContext) -> int:
        n = context.n_tracks
        if self._weights is None:
            self._weights = np.full(n, 1.0 / n)
        samples = context.recent_throughput(self.window)
        if not samples:
            return 0
        estimate = max(harmonic_mean(samples), 1e-3)
        sizes = np.asarray(context.manifest.track_sizes_mbit(context.segment_index))
        download_s = sizes / estimate + context.rtt_s
        violation = download_s - context.manifest.segment_s
        if self._last_violation is not None:
            self._queue = max(0.0, self._queue + self._last_violation)
        bitrates = np.asarray(context.ladder.bitrates_mbps)
        utility = bitrates / context.ladder.top_mbps
        gradient = self.utility_weight * utility - self._queue * violation
        weights = self._weights * np.exp(self.learning_rate * gradient)
        total = float(weights.sum())
        if not np.isfinite(total) or total <= 0.0:
            weights = np.full(n, 1.0 / n)
            total = 1.0
        self._weights = weights / total
        track = int(np.argmax(self._weights))
        self._last_violation = float(violation[track])
        return track


@dataclass
class Stallion(LiveController):
    """STALLION: sliding-window throughput/latency safety offsets.

    Picks the highest track whose bitrate fits within
    ``mean - throughput_safety * std`` of the recent per-segment
    throughput, stepping down once the live latency breaches its own
    safety factor over the target.
    """

    window: int = 10
    throughput_safety: float = 1.0
    latency_safety: float = 1.25
    name: str = "Stallion"

    def select(self, context: LiveContext) -> int:
        samples = context.recent_throughput(self.window)
        if not samples:
            return 0
        mean = float(np.mean(samples))
        std = float(np.std(samples))
        safe_rate = mean - self.throughput_safety * std
        track = context.ladder.index_for_rate(max(safe_rate, 0.0))
        if (
            context.live_latency_s
            > self.latency_safety * context.latency_target_s
            and track > 0
        ):
            track -= 1
        return track


def make_live_controller(name: str, **kwargs) -> LiveController:
    """Live-controller factory by paper name (case-insensitive)."""
    registry = {
        "lolp": LoLP,
        "lol+": LoLP,
        "l2a": L2A,
        "stallion": Stallion,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown live controller {name!r}; known: {sorted(set(registry))}"
        ) from None
    return cls(**kwargs)


LIVE_CONTROLLER_NAMES = ("LoL+", "L2A", "Stallion")
