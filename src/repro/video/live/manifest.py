"""LL-DASH/CMAF live manifests.

Low-latency DASH serves segments that are themselves split into CMAF
chunks delivered over HTTP chunked transfer: chunk ``j`` of segment
``k`` leaves the encoder at ``k * segment_s + (j + 1) * cmaf_chunk_s``,
so a player sitting at the live edge downloads at sub-segment
granularity and is rate-limited by the *encoder*, not only the network
("An Experimental Study of Low-Latency Video Streaming over 5G").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.video.encoding import BitrateLadder


@dataclass
class LiveManifest:
    """A live CMAF presentation: ladder + segmentation + size table.

    Attributes:
        ladder: bitrate ladder (live ladders top out well below the
            link median so real-time delivery has headroom).
        segment_s: segment duration (LL-DASH deployments use ~1 s).
        chunks_per_segment: CMAF chunks per segment (sub-segment
            delivery granularity).
        n_segments: how many segments the encoder produces.
        vbr_sigma: log-normal per-segment size variability.
        seed: RNG seed for the fixed size table.
    """

    ladder: BitrateLadder
    segment_s: float = 1.0
    chunks_per_segment: int = 5
    n_segments: int = 180
    vbr_sigma: float = 0.08
    seed: int = 20240305
    _sizes_mbit: Optional[np.ndarray] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.segment_s <= 0:
            raise ValueError("segment_s must be positive")
        if self.chunks_per_segment < 1:
            raise ValueError("chunks_per_segment must be >= 1")
        if self.n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        rng = np.random.default_rng(self.seed)
        factors = np.exp(
            rng.normal(0.0, self.vbr_sigma, size=(self.n_segments, len(self.ladder)))
        )
        nominal = np.array(
            [[b * self.segment_s for b in self.ladder.bitrates_mbps]]
            * self.n_segments
        )
        self._sizes_mbit = nominal * factors

    @property
    def duration_s(self) -> float:
        return self.n_segments * self.segment_s

    @property
    def cmaf_chunk_s(self) -> float:
        return self.segment_s / self.chunks_per_segment

    def segment_size_mbit(self, segment_index: int, track: int) -> float:
        """Size of one encoded segment in megabits."""
        if not 0 <= segment_index < self.n_segments:
            raise IndexError(f"segment_index {segment_index} out of range")
        if not 0 <= track < len(self.ladder):
            raise IndexError(f"track {track} out of range")
        return float(self._sizes_mbit[segment_index, track])

    def track_sizes_mbit(self, segment_index: int) -> List[float]:
        """Sizes of every track of one segment (what controllers see)."""
        return [
            self.segment_size_mbit(segment_index, t)
            for t in range(len(self.ladder))
        ]

    def chunk_available_at_s(self, segment_index: int, chunk_index: int) -> float:
        """Wall-clock time the encoder finishes a CMAF chunk."""
        if not 0 <= chunk_index < self.chunks_per_segment:
            raise IndexError(f"chunk_index {chunk_index} out of range")
        return (
            segment_index * self.segment_s
            + (chunk_index + 1) * self.cmaf_chunk_s
        )
