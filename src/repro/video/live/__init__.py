"""LL-DASH/CMAF live streaming (ROADMAP item 3a).

A chunked-transfer live player with a latency target, playback-rate
control, and drift seeks, plus the LoL+/L2A/Stallion controllers and
live-QoE metrics from "An Experimental Study of Low-Latency Video
Streaming over 5G" (PAPERS.md). Shares the time-aligned download
timeline contract with the VoD player (docs/video.md), so live
sessions price energy through the same section 4.5 power model.
"""

from repro.video.live.controllers import (
    L2A,
    LIVE_CONTROLLER_NAMES,
    LiveContext,
    LiveController,
    LoLP,
    Stallion,
    make_live_controller,
)
from repro.video.live.manifest import LiveManifest
from repro.video.live.player import (
    LivePlaybackResult,
    LivePlayer,
    LiveQoEWeights,
    default_live_weights,
)

__all__ = [
    "L2A",
    "LIVE_CONTROLLER_NAMES",
    "LiveContext",
    "LiveController",
    "LiveManifest",
    "LivePlaybackResult",
    "LivePlayer",
    "LiveQoEWeights",
    "LoLP",
    "Stallion",
    "default_live_weights",
    "make_live_controller",
]
