"""Pluggable throughput predictors for MPC (paper section 5.3).

Three predictors are compared in Fig. 18a:

* ``hmMPC`` — the original harmonic-mean-of-past-chunks predictor;
* ``MPC_GDBT`` — a Lumos5G-style gradient-boosted-tree predictor
  trained on mmWave traces (features: recent throughput window plus
  simple trend statistics);
* ``truthMPC`` — an oracle that reads the ground-truth trace, bounding
  what better prediction could buy (the paper: GDBT gets within 1.3%
  of the oracle's QoE, 32% above harmonic mean).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from repro.ml.boosting import GradientBoostedRegressor
from repro.traces.schema import ThroughputTrace
from repro.video.abr.base import ABRContext, harmonic_mean

_WINDOW = 5


class ThroughputPredictor(Protocol):
    """Predictor protocol consumed by the MPC family."""

    def predict(self, context: ABRContext) -> float:
        """Predicted next-chunk throughput in Mbps."""
        ...

    def reset(self) -> None:
        ...


@dataclass
class HarmonicMeanPredictor:
    """hmMPC: harmonic mean of the last ``window`` chunk throughputs."""

    window: int = _WINDOW

    def predict(self, context: ABRContext) -> float:
        history = context.recent_throughput(self.window)
        if not history:
            return context.ladder.bottom_mbps
        return harmonic_mean(history)

    def reset(self) -> None:
        pass


def _window_features(history: List[float]) -> np.ndarray:
    """Feature vector from a length-_WINDOW throughput window."""
    window = np.asarray(history[-_WINDOW:], dtype=float)
    if window.shape[0] < _WINDOW:
        window = np.concatenate(
            [np.full(_WINDOW - window.shape[0], window[0] if window.size else 0.0), window]
        )
    trend = window[-1] - window[0]
    return np.concatenate(
        [window, [window.mean(), window.std(), window.min(), trend]]
    )


def _rsrp_features(
    trace: ThroughputTrace, t_s: float, chunk_s: float
) -> List[float]:
    """UE-observable PHY features at time ``t_s``: current RSRP, its
    short-horizon mean, and trend. Only past samples are read."""
    if trace.rsrp_dbm is None:
        return [0.0, 0.0, 0.0]
    index = min(int(t_s / trace.dt_s), len(trace) - 1)
    lookback = max(0, index - int(chunk_s / trace.dt_s))
    window = trace.rsrp_dbm[lookback : index + 1]
    now = float(trace.rsrp_dbm[index])
    return [now, float(np.mean(window)), now - float(window[0])]


@dataclass
class GBDTPredictor:
    """MPC_GDBT: gradient-boosted trees over throughput windows plus
    UE-observable PHY state (Lumos5G's recipe).

    Lumos5G's predictive power comes from combining recent throughput
    with lower-layer features the UE sees in real time (RSRP and its
    dynamics track mmWave beam/blockage state before the throughput
    collapse fully registers in chunk history). Train with
    :meth:`fit_corpus`; before each playback, :meth:`attach_trace`
    points the predictor at the live session so it can read the current
    (never future) RSRP.
    """

    n_estimators: int = 60
    max_depth: int = 4
    seed: int = 0
    # Operating point below the conditional mean: chunk decisions are
    # asymmetric (over-prediction stalls, under-prediction just lowers
    # one chunk's quality), so the predictor serves a lower quantile of
    # its predictive distribution, estimated from training residuals.
    conservatism_quantile: float = 0.35
    _model: Optional[GradientBoostedRegressor] = field(init=False, default=None)
    _trace: Optional[ThroughputTrace] = field(init=False, default=None)
    _residual_ratio: float = field(init=False, default=1.0)

    def fit_corpus(self, traces: List[ThroughputTrace], chunk_s: float = 4.0) -> "GBDTPredictor":
        """Build (window + PHY) features at chunk-paced boundaries.

        Window features are built with a sliding-window view over the
        chunked series (bit-identical rows to the old per-boundary
        list slicing, which re-copied a growing prefix per row); the
        variable-length PHY lookback stays a small per-boundary loop.
        """
        if not traces:
            raise ValueError("need at least one training trace")
        blocks: List[np.ndarray] = []
        target_blocks: List[np.ndarray] = []
        stride = max(1, int(round(chunk_s)))
        for trace in traces:
            series = trace.throughput_mbps
            n = (series.shape[0] // stride) * stride
            if n == 0:
                continue
            chunked = series[:n].reshape(-1, stride).mean(axis=1)
            m = chunked.shape[0]
            if m <= _WINDOW:
                continue
            windows = np.lib.stride_tricks.sliding_window_view(chunked, _WINDOW)[:-1]
            phy = np.array(
                [
                    _rsrp_features(trace, i * chunk_s, chunk_s)
                    for i in range(_WINDOW, m)
                ]
            )
            blocks.append(
                np.column_stack(
                    [
                        windows,
                        windows.mean(axis=1),
                        windows.std(axis=1),
                        windows.min(axis=1),
                        windows[:, -1] - windows[:, 0],
                        phy,
                    ]
                )
            )
            target_blocks.append(chunked[_WINDOW:])
        if not blocks:
            raise ValueError("traces too short to build training windows")
        model = GradientBoostedRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            learning_rate=0.1,
            random_state=self.seed,
        )
        X = np.vstack(blocks)
        y = np.concatenate(target_blocks)
        # Residual-based quantile shift, estimated OUT-OF-FOLD (in-sample
        # residuals understate the predictive spread): fit on 80%, read
        # the actual/predicted ratio quantile on the held-out 20%, then
        # refit on everything.
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(X.shape[0])
        split = max(1, int(0.8 * X.shape[0]))
        fold = GradientBoostedRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            learning_rate=0.1,
            random_state=self.seed,
        )
        fold.fit(X[order[:split]], y[order[:split]])
        held_pred = np.maximum(fold.predict(X[order[split:]]), 1e-3)
        ratios = y[order[split:]] / held_pred
        self._residual_ratio = float(
            np.clip(np.quantile(ratios, self.conservatism_quantile), 0.2, 1.0)
        )
        model.fit(X, y)
        self._model = model
        return self

    def attach_trace(self, trace: ThroughputTrace) -> None:
        """Point the predictor at the live session's trace (PHY feed)."""
        self._trace = trace

    def predict(self, context: ABRContext) -> float:
        if self._model is None:
            raise RuntimeError("GBDTPredictor is not fitted; call fit_corpus()")
        history = context.throughput_history
        if not history:
            return context.ladder.bottom_mbps
        if self._trace is not None:
            phy = _rsrp_features(
                self._trace, context.wall_clock_s, context.manifest.chunk_s
            )
        else:
            phy = [0.0, 0.0, 0.0]
        row = np.concatenate([_window_features(history), phy])
        prediction = float(self._model.predict(row.reshape(1, -1))[0])
        return max(prediction * self._residual_ratio, 0.1)

    def reset(self) -> None:
        pass


@dataclass
class TruthPredictor:
    """truthMPC: oracle reading the ground-truth trace.

    Predicts the actual mean throughput over the next chunk's expected
    download window.
    """

    trace: ThroughputTrace
    chunk_s: float = 4.0
    _clock_s: float = field(init=False, default=0.0)

    def attach_clock(self, t_s: float) -> None:
        """The player's wall clock, advanced externally per chunk."""
        if t_s < 0:
            raise ValueError("t_s must be non-negative")
        self._clock_s = t_s

    def predict(self, context: ABRContext) -> float:
        t0 = max(self._clock_s, context.wall_clock_s)
        horizon = np.arange(t0, t0 + self.chunk_s, self.trace.dt_s)
        values = self.trace.throughput_at_series(horizon)
        return float(max(np.mean(values), 0.1))

    def predict_horizon(self, context: ABRContext, n: int) -> List[float]:
        """True per-step throughput over the next ``n`` chunk slots.

        Assumes real-time pacing (each slot spans ``chunk_s``), which is
        exact whenever playback keeps up — the regime where planning
        matters.
        """
        t0 = max(self._clock_s, context.wall_clock_s)
        out = []
        for k in range(n):
            # Two-slot windows smooth re-planning flicker: successive
            # decisions then see consistent forecasts, avoiding the
            # oscillation (smoothness) penalty a per-slot oracle incurs.
            window = np.arange(
                t0 + k * self.chunk_s, t0 + (k + 2) * self.chunk_s, self.trace.dt_s
            )
            values = self.trace.throughput_at_series(window)
            out.append(float(max(np.mean(values), 0.1)))
        return out

    def reset(self) -> None:
        self._clock_s = 0.0
