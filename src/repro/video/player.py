"""Chunk-level DASH playback simulator (the section 5.1 testbed).

Replaces the paper's Apache + dash.js + ``tc`` trace-driven emulation
with the standard chunk-level abstraction used by the MPC and Pensieve
papers: chunks download sequentially against the trace bandwidth, the
playout buffer drains in real time, and rebuffering occurs whenever it
empties. The player records a fine-grained download-rate timeline so
network energy can be estimated by the section 4.5 power model; the
timeline is **time-aligned** with the playback's wall clock (see
``repro.video.timeline`` and docs/video.md for the contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.video.abr.base import ABRAlgorithm, ABRContext
from repro.video.encoding import VideoManifest
from repro.video.qoe import (
    QoEWeights,
    default_weights,
    mpc_qoe,
    normalized_bitrate,
    stall_percent,
)
from repro.video.timeline import (
    DOWNLOAD_TICK_S,
    TimelineRecorder,
    tick_durations,
)

BandwidthFn = Callable[[float], float]


@dataclass
class PlaybackResult:
    """Everything the section 5 analyses need from one playback.

    ``download_rate_timeline`` is time-aligned with the wall clock:
    ``timeline.size * DOWNLOAD_TICK_S`` equals ``wall_clock_s`` to
    within one tick, every tick's entry is the duration-weighted mean
    download rate inside it (zero for RTT waits, buffer-cap idling and
    the final buffer drain), and the last tick's true duration is the
    wall-clock remainder (``tick_durations_s``).
    """

    chunk_tracks: List[int]
    chunk_bitrates_mbps: List[float]
    stall_s: float
    startup_s: float
    playback_s: float
    wall_clock_s: float
    download_rate_timeline: np.ndarray  # Mbps at DOWNLOAD_TICK_S steps
    rebuffer_events: int
    ladder_top_mbps: float = 0.0
    chunk_finish_times_s: List[float] = field(default_factory=list)
    tick_s: float = DOWNLOAD_TICK_S

    @property
    def _top_mbps(self) -> float:
        """Ladder-top reference; falls back for hand-built results."""
        if self.ladder_top_mbps > 0:
            return self.ladder_top_mbps
        return max(self.chunk_bitrates_mbps) if self.chunk_bitrates_mbps else 1.0

    @property
    def normalized_bitrate(self) -> float:
        # Normalised against the *ladder* top so identical ladders are
        # comparable across playbacks regardless of the tracks chosen.
        return normalized_bitrate(self.chunk_bitrates_mbps, self._top_mbps)

    @property
    def stall_percent(self) -> float:
        return stall_percent(self.stall_s, self.playback_s)

    @property
    def tick_durations_s(self) -> np.ndarray:
        """True duration of each timeline tick (last tick is partial)."""
        return tick_durations(
            self.download_rate_timeline.size, self.wall_clock_s, self.tick_s
        )

    def qoe(self, weights: Optional[QoEWeights] = None) -> float:
        weights = weights or default_weights(self._top_mbps)
        return mpc_qoe(self.chunk_bitrates_mbps, self.stall_s, weights)


@dataclass
class Player:
    """Sequential chunk downloader with a real-time playout buffer.

    Attributes:
        manifest: video manifest.
        max_buffer_s: buffer cap; the player idles once reached (dash.js
            default behaviour).
        startup_buffer_s: playback begins after this much video is
            buffered.
    """

    manifest: VideoManifest
    max_buffer_s: float = 12.0  # dash.js stableBufferTime default
    startup_buffer_s: float = 4.0

    def __post_init__(self) -> None:
        if self.max_buffer_s <= 0:
            raise ValueError("max_buffer_s must be positive")
        if self.startup_buffer_s <= 0:
            raise ValueError("startup_buffer_s must be positive")

    def play(
        self,
        abr: ABRAlgorithm,
        bandwidth: BandwidthFn,
        rtt_s: float = 0.03,
    ) -> PlaybackResult:
        """Play the whole manifest against ``bandwidth(t) -> Mbps``."""
        manifest = self.manifest
        abr.reset()
        buffer_s = 0.0
        t = 0.0
        started = False
        startup_s = 0.0
        stall_s = 0.0
        rebuffer_events = 0
        stalled = False
        tracks: List[int] = []
        bitrates: List[float] = []
        throughput_history: List[float] = []
        recorder = TimelineRecorder(DOWNLOAD_TICK_S)
        chunk_finish_times: List[float] = []
        last_track = 0

        for chunk_index in range(manifest.n_chunks):
            context = ABRContext(
                manifest=manifest,
                chunk_index=chunk_index,
                buffer_s=buffer_s,
                last_track=last_track,
                throughput_history=list(throughput_history),
                rtt_s=rtt_s,
                wall_clock_s=t,
            )
            track = abr.select(context)
            if not 0 <= track < len(manifest.ladder):
                raise ValueError(
                    f"{type(abr).__name__} chose invalid track {track}"
                )
            size_mbit = manifest.chunk_size_mbit(chunk_index, track)

            # Download loop: drain bandwidth, play out the buffer. The
            # request RTT is dead air on the radio: zero-rate ticks.
            remaining_mbit = size_mbit
            download_time = rtt_s  # request latency
            recorder.add(0.0, rtt_s)
            buffer_s, t, stall_add, stalled, events = self._advance(
                rtt_s, buffer_s, t, started, stalled
            )
            stall_s += stall_add
            rebuffer_events += events
            while remaining_mbit > 1e-9:
                rate = max(bandwidth(t), 1e-3)
                step_mbit = rate * DOWNLOAD_TICK_S
                consumed = min(step_mbit, remaining_mbit)
                tick = DOWNLOAD_TICK_S * (consumed / step_mbit)
                remaining_mbit -= consumed
                # Partial ticks are recorded over their actual duration
                # so the timeline stays aligned with the wall clock.
                recorder.add(consumed, tick)
                buffer_s, t, stall_add, stalled, events = self._advance(
                    tick, buffer_s, t, started, stalled
                )
                stall_s += stall_add
                rebuffer_events += events
                download_time += tick

            throughput = size_mbit / max(download_time, 1e-9)
            throughput_history.append(throughput)
            buffer_s += manifest.chunk_s
            tracks.append(track)
            bitrates.append(manifest.ladder[track])
            last_track = track
            chunk_finish_times.append(t)

            if not started and buffer_s >= self.startup_buffer_s:
                started = True
                startup_s = t

            # Respect the buffer cap: idle until there is room. The
            # idle gap keeps its fractional remainder (no truncation).
            if buffer_s > self.max_buffer_s:
                idle = buffer_s - self.max_buffer_s
                recorder.add(0.0, idle)
                buffer_s, t, stall_add, stalled, events = self._advance(
                    idle, buffer_s, t, started, stalled
                )
                stall_s += stall_add
                rebuffer_events += events

        # Never-started edge case: a manifest shorter than
        # startup_buffer_s finishes downloading before the startup
        # threshold is reached. Playback then begins the moment the
        # download completes, so that is the true startup time.
        if not started:
            started = True
            startup_s = t

        # Drain the remaining buffer to finish playback (zero-rate
        # radio time, still priced at the connected intercept).
        playback_s = manifest.duration_s
        recorder.add(0.0, buffer_s)
        wall_clock = t + buffer_s
        return PlaybackResult(
            chunk_tracks=tracks,
            chunk_bitrates_mbps=bitrates,
            stall_s=stall_s,
            startup_s=startup_s,
            playback_s=playback_s,
            wall_clock_s=wall_clock,
            download_rate_timeline=recorder.finish(),
            rebuffer_events=rebuffer_events,
            ladder_top_mbps=manifest.ladder.top_mbps,
            chunk_finish_times_s=chunk_finish_times,
        )

    @staticmethod
    def _advance(
        dt: float,
        buffer_s: float,
        t: float,
        started: bool,
        stalled: bool,
    ):
        """Advance wall-clock by ``dt``; drain the buffer if playing.

        Returns (buffer, t, stall_added, stalled, rebuffer_events).
        """
        stall_added = 0.0
        events = 0
        if started:
            if buffer_s >= dt:
                buffer_s -= dt
                if stalled:
                    stalled = False
            else:
                # Buffer empties partway through the step -> stall.
                stall_added = dt - buffer_s
                buffer_s = 0.0
                if not stalled and stall_added > 0:
                    events = 1
                    stalled = True
        t += dt
        return buffer_s, t, stall_added, stalled, events
