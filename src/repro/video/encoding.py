"""Bitrate ladders and video manifests (paper section 5.1).

The paper encodes a 4K video into 6 tracks with an encoded-bitrate
ratio of ~1.5 between adjacent tracks, setting the *top* track to the
median network throughput (160 Mbps for the 5G corpus, 20 Mbps for 4G)
so that rate selection is never trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

ADJACENT_TRACK_RATIO = 1.5


@dataclass(frozen=True)
class BitrateLadder:
    """An ascending list of track bitrates in Mbps."""

    bitrates_mbps: tuple

    def __post_init__(self) -> None:
        if len(self.bitrates_mbps) < 2:
            raise ValueError("a ladder needs at least 2 tracks")
        if any(b <= 0 for b in self.bitrates_mbps):
            raise ValueError("bitrates must be positive")
        if list(self.bitrates_mbps) != sorted(self.bitrates_mbps):
            raise ValueError("bitrates must ascend")

    def __len__(self) -> int:
        return len(self.bitrates_mbps)

    def __getitem__(self, index: int) -> float:
        return self.bitrates_mbps[index]

    @property
    def top_mbps(self) -> float:
        return self.bitrates_mbps[-1]

    @property
    def bottom_mbps(self) -> float:
        return self.bitrates_mbps[0]

    def index_for_rate(self, rate_mbps: float) -> int:
        """Highest track whose bitrate fits within ``rate_mbps``
        (track 0 if none fits)."""
        best = 0
        for i, bitrate in enumerate(self.bitrates_mbps):
            if bitrate <= rate_mbps:
                best = i
        return best

    def normalize(self, bitrate_mbps: float) -> float:
        return bitrate_mbps / self.top_mbps


def build_ladder(
    top_mbps: float, n_tracks: int = 6, ratio: float = ADJACENT_TRACK_RATIO
) -> BitrateLadder:
    """The paper's ladder: top track anchored at the corpus median
    throughput, adjacent tracks ~1.5x apart."""
    if top_mbps <= 0:
        raise ValueError("top_mbps must be positive")
    if n_tracks < 2:
        raise ValueError("n_tracks must be >= 2")
    if ratio <= 1.0:
        raise ValueError("ratio must exceed 1")
    bitrates = [top_mbps / ratio**i for i in range(n_tracks)]
    return BitrateLadder(bitrates_mbps=tuple(sorted(bitrates)))


# The paper's two ladders.
LADDER_5G = build_ladder(160.0)
LADDER_4G = build_ladder(20.0)


@dataclass
class VideoManifest:
    """A DASH manifest: ladder + chunking + per-chunk size variation.

    Attributes:
        ladder: bitrate ladder.
        chunk_s: chunk length in seconds (4 s default; section 5.3
            studies 1/2/4 s).
        n_chunks: total chunks.
        vbr_sigma: log-normal chunk-size variability around the nominal
            ``bitrate * chunk_s`` (real encoders are VBR within a track).
        seed: RNG seed for the fixed per-chunk size table.
    """

    ladder: BitrateLadder
    chunk_s: float = 4.0
    n_chunks: int = 75
    vbr_sigma: float = 0.12
    seed: int = 20210823
    _sizes_mbit: Optional[np.ndarray] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        if self.n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        rng = np.random.default_rng(self.seed)
        factors = np.exp(rng.normal(0.0, self.vbr_sigma, size=(self.n_chunks, len(self.ladder))))
        nominal = np.array(
            [[b * self.chunk_s for b in self.ladder.bitrates_mbps]] * self.n_chunks
        )
        self._sizes_mbit = nominal * factors

    @property
    def duration_s(self) -> float:
        return self.n_chunks * self.chunk_s

    def chunk_size_mbit(self, chunk_index: int, track: int) -> float:
        """Size of one encoded chunk in megabits."""
        if not 0 <= chunk_index < self.n_chunks:
            raise IndexError(f"chunk_index {chunk_index} out of range")
        if not 0 <= track < len(self.ladder):
            raise IndexError(f"track {track} out of range")
        return float(self._sizes_mbit[chunk_index, track])

    def track_sizes_mbit(self, chunk_index: int) -> List[float]:
        """Sizes of every track of one chunk (what ABRs see)."""
        return [self.chunk_size_mbit(chunk_index, t) for t in range(len(self.ladder))]
