"""QoE metrics for ABR streaming (section 5's evaluation axes).

Fig. 17 plots two dimensions — normalized bitrate and percentage of
playback time spent stalled — with the "better QoE" region at >= 0.8
normalized bitrate and < 5% stall. The MPC family additionally
optimises the linear QoE function of Yin et al. (bitrate utility minus
rebuffering penalty minus switching penalty), implemented here as
:func:`mpc_qoe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class QoEWeights:
    """Weights of the linear MPC QoE function.

    ``QoE = sum q(R_k) - rebuffer_penalty * total_stall
          - smoothness_penalty * sum |q(R_{k+1}) - q(R_k)|``

    with ``q`` the identity on bitrate in Mbps (the linear-QoE variant
    of the MPC paper).
    """

    rebuffer_penalty: float
    smoothness_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.rebuffer_penalty < 0 or self.smoothness_penalty < 0:
            raise ValueError("penalties must be non-negative")


def default_weights(top_bitrate_mbps: float) -> QoEWeights:
    """The MPC-paper convention: rebuffer penalty equals the top
    bitrate, so one second of stall cancels one top-quality second."""
    if top_bitrate_mbps <= 0:
        raise ValueError("top_bitrate_mbps must be positive")
    return QoEWeights(rebuffer_penalty=top_bitrate_mbps)


def mpc_qoe(
    bitrates_mbps: Sequence[float],
    stall_s: float,
    weights: QoEWeights,
    first_chunk_prev_mbps: float = 0.0,
) -> float:
    """Linear QoE of a chunk sequence."""
    if stall_s < 0:
        raise ValueError("stall_s must be non-negative")
    if not bitrates_mbps:
        raise ValueError("need at least one chunk bitrate")
    utility = float(sum(bitrates_mbps))
    smoothness = 0.0
    previous = first_chunk_prev_mbps
    for bitrate in bitrates_mbps:
        smoothness += abs(bitrate - previous)
        previous = bitrate
    return (
        utility
        - weights.rebuffer_penalty * stall_s
        - weights.smoothness_penalty * smoothness
    )


def normalized_bitrate(bitrates_mbps: Sequence[float], top_mbps: float) -> float:
    """Mean selected bitrate over the top track's bitrate (Fig. 17 y)."""
    if not bitrates_mbps:
        raise ValueError("need at least one chunk bitrate")
    if top_mbps <= 0:
        raise ValueError("top_mbps must be positive")
    return float(sum(bitrates_mbps) / len(bitrates_mbps) / top_mbps)


def stall_percent(stall_s: float, playback_s: float) -> float:
    """Stall time as % of wall-clock playback session (Fig. 17 x)."""
    if stall_s < 0 or playback_s <= 0:
        raise ValueError("invalid stall/playback durations")
    return 100.0 * stall_s / (stall_s + playback_s)
