"""A small stdlib client for the serve HTTP API.

``http.client`` only — the same zero-dependency rule as the server.
One :class:`ServeClient` per base URL; every call opens a fresh
connection (the server closes after each response anyway). Raises
:class:`ServeAPIError` on any non-2xx status, carrying the status code
and the server's JSON error message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlparse


class ServeAPIError(RuntimeError):
    """Non-2xx response from the serve API."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parsed = urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8321
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
    ) -> Any:
        conn = self._connect()
        try:
            payload = (
                json.dumps(body).encode() if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(data.decode()).get("error", "")
                except ValueError:
                    message = data.decode(errors="replace")
                raise ServeAPIError(response.status, message)
            content_type = response.getheader("Content-Type", "")
            if "json" in content_type and "jsonl" not in content_type:
                return json.loads(data.decode())
            return data
        finally:
            conn.close()

    # -- API -------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        artifacts: List[str],
        seed: Optional[int] = None,
        scale: float = 1.0,
        tenant: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "artifacts": list(artifacts),
            "seed": seed,
            "scale": scale,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        payload.update(extra)
        return self._request("POST", "/v1/jobs", body=payload)

    def jobs(
        self, tenant: Optional[str] = None, state: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        query = "&".join(
            f"{name}={value}"
            for name, value in (("tenant", tenant), ("state", state))
            if value is not None
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_s: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.3g}s"
                )
            time.sleep(poll_s)

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def manifest(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/manifest")

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's settled run ledger, parsed."""
        data = self._request("GET", f"/v1/jobs/{job_id}/events")
        return [
            json.loads(line)
            for line in data.decode().splitlines()
            if line.strip()
        ]

    def stream_events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Live-tail the job ledger (``?follow=1``), yielding events.

        Yields each event as it lands; returns when the server ends
        the stream (job settled). Partial trailing bytes are carried
        across chunks, so consumers only ever see whole events.
        """
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?follow=1")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode()).get("error", "")
                except ValueError:
                    message = data.decode(errors="replace")
                raise ServeAPIError(response.status, message)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode())
        finally:
            conn.close()

    def gauges(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/gauges")["gauges"]

    def metrics(self) -> str:
        return self._request("GET", "/v1/metrics").decode()

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def drain(self, timeout: float = 120.0) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("POST", "/v1/drain")
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                raise ServeAPIError(
                    response.status, data.decode(errors="replace")
                )
            return json.loads(data.decode())
        finally:
            conn.close()
