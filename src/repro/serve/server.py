"""The serve core: admission → execution → settlement, transport-free.

:class:`ServeServer` is the synchronous heart of ``repro serve``; the
HTTP layer (:mod:`repro.serve.http`) is a thin asyncio shell over it,
and tests drive it directly. One instance owns:

* a shared :class:`~repro.serve.store.BoundedResultCache` — every
  tenant's sweeps read and write one content-keyed cache under one
  byte budget;
* a :class:`~repro.serve.store.ArtifactStore` for result payloads and
  manifests (content-addressed, deduplicated);
* a :class:`~repro.serve.jobs.JobStore` + submission journal;
* a :class:`~repro.serve.scheduler.FairScheduler` worker pool;
* two ledgers: ``server-events.jsonl`` (every engine event from every
  job, plus ``serve_*`` lifecycle events — ``repro stats`` reconciles
  it) and one ``jobs/<id>/events.jsonl`` per job (what the streaming
  endpoint tails).

Execution runs ``execute()`` serially inside worker threads, so the
engine's thread-timeout fallback (not SIGALRM) enforces per-job
budgets, and cache events route through a thread-local router so each
job's ledger gets its own cache traffic even though the cache is
shared.

Drain is a promise kept: :meth:`drain` stops admissions, every
already-admitted job settles (the crash-recovery machinery inside
``execute`` still applies per job), ledgers and the journal are
flushed, and a restarted server replays the journal — completed
submissions come straight back as 100% cache hits.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.engine.cache import default_code_version
from repro.engine.pool import execute
from repro.obs.events import EventLog, EventSink
from repro.obs.manifest import build_manifest, write_manifest
from repro.serve.config import ServeConfig
from repro.serve.jobs import BadRequest, JobRecord, JobRequest, JobStore
from repro.serve.scheduler import Draining, FairScheduler, QueueFull
from repro.serve.store import ArtifactStore, BoundedResultCache

#: Server-lifecycle event types appended to the engine's JSONL wire
#: format (engine event types are in ``repro.obs.events.EVENT_TYPES``).
SERVE_EVENT_TYPES = frozenset(
    {
        "serve_start",
        "serve_stop",
        "serve_submit",
        "serve_reject",
        "serve_job_start",
        "serve_job_end",
        "serve_drain_begin",
        "serve_drain_end",
        "serve_replay",
    }
)


class TeeSink(EventSink):
    """Forward each event to several sinks (per-job log + server ledger)."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def emit(self, event: str, **fields: Any) -> None:
        for sink in self.sinks:
            sink.emit(event, **fields)


class ThreadEventRouter(EventSink):
    """Route emissions to the sink the *current thread* registered.

    The shared cache holds exactly one ``events`` attribute, but five
    worker threads run five different jobs against it concurrently.
    Each worker registers its job's sink for the duration of the
    sweep; cache events then land in that job's ledger. Threads with
    nothing registered fall back to ``fallback`` (the server ledger),
    so out-of-band traffic — e.g. an eviction sweep triggered from a
    maintenance call — is never dropped.
    """

    def __init__(self, fallback: Optional[EventSink] = None) -> None:
        self._local = threading.local()
        self.fallback = fallback

    def register(self, sink: Optional[EventSink]) -> None:
        self._local.sink = sink

    def unregister(self) -> None:
        self._local.sink = None

    def emit(self, event: str, **fields: Any) -> None:
        sink = getattr(self._local, "sink", None) or self.fallback
        if sink is not None:
            sink.emit(event, **fields)


class ServeServer:
    """Transport-agnostic job server over :func:`repro.engine.execute`."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        config.ensure_layout()
        self.ledger = EventLog(config.ledger_path)
        self.cache = BoundedResultCache(
            config.cache_dir, max_bytes=config.cache_max_bytes
        )
        self._cache_router = ThreadEventRouter(fallback=self.ledger)
        self.cache.events = self._cache_router
        self.artifacts = ArtifactStore(config.artifacts_dir)
        self.jobs = JobStore(journal_path=config.journal_path)
        self.scheduler = FairScheduler(
            self._run_job,
            max_concurrency=config.max_concurrency,
            queue_limit=config.queue_limit,
        )
        # One source scan at startup; every job keys the cache on it.
        self.code_version = default_code_version()
        self._gauge_board: Dict[str, Dict[str, Any]] = {}
        self._board_lock = threading.Lock()
        self._spec_keys_seen: Dict[str, str] = {}  # spec_key -> job_id
        self._started_at = time.monotonic()
        self._state_lock = threading.Lock()
        self._drained = False
        self._close_started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> int:
        """Start worker threads; replay the journal; return replayed count."""
        self.scheduler.start()
        self.ledger.emit(
            "serve_start",
            code_version=self.code_version,
            max_concurrency=self.config.max_concurrency,
            cache_max_bytes=self.config.cache_max_bytes,
        )
        replayed = 0
        if self.config.replay_journal:
            replayed = self._replay_journal()
        return replayed

    def _replay_journal(self) -> int:
        """Re-admit every journaled submission (restart warm-up).

        Settled submissions replay straight into engine-cache hits;
        submissions the previous process admitted but never finished
        actually run — no admitted job is ever lost to a restart.
        """
        entries = JobStore.read_journal(self.config.journal_path)
        replayed = 0
        for entry in entries:
            try:
                request = JobRequest.from_payload(
                    entry.get("request"),
                    default_tenant=self.config.default_tenant,
                )
            except BadRequest:
                continue
            try:
                record = self._admit(request, journal=False)
            except (QueueFull, Draining):
                break
            record.deduplicated = False
            replayed += 1
        if replayed:
            self.ledger.emit("serve_replay", submissions=replayed)
        return replayed

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions and settle the backlog; idempotent."""
        with self._state_lock:
            already = self._drained
            self._drained = True
        if not already:
            self.ledger.emit(
                "serve_drain_begin", **self.scheduler.stats()
            )
        settled = self.scheduler.stop(
            timeout=timeout if timeout is not None
            else self.config.drain_grace_s
        )
        if not already:
            self.ledger.emit(
                "serve_drain_end",
                settled=settled,
                jobs=self.jobs.counts_by_state(),
            )
        return settled

    def close(self) -> None:
        with self._state_lock:
            if self._close_started:
                return
            self._close_started = True
        self.drain()
        self.ledger.emit("serve_stop", uptime_s=round(self.uptime_s, 3))
        self.jobs.close()
        self.ledger.close()
        # Only now is the ledger final: flip `closed` (the follow
        # stream's termination signal) and archive the whole run.
        with self._state_lock:
            self._closed = True
        self._archive_run()

    def _archive_run(self) -> None:
        """Append this server run's record to the data-dir archive.

        One streaming pass over the (now-closed) server ledger folds
        every job's engine events into a single ``kind="serve"``
        record, so drained server runs land in the same cross-run
        timeline as CLI sweeps (``repro history --archive
        <data_dir>/archive``). Best-effort: a broken archive never
        blocks shutdown.
        """
        import warnings

        from repro.obs.history import RunArchive, record_from_ledger

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                record = record_from_ledger(
                    self.config.ledger_path,
                    label=f"serve {self.config.root}",
                    kind="serve",
                    extra={"jobs_by_state": self.jobs.counts_by_state()},
                )
            RunArchive(self.config.archive_dir).append(record)
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"could not archive serve run: {exc}", RuntimeWarning
            )

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._drained

    @property
    def closed(self) -> bool:
        """True once the server ledger is final (nothing more appends)."""
        with self._state_lock:
            return self._closed

    # -- admission -------------------------------------------------------
    def submit(self, payload: Any) -> JobRecord:
        """Validate, journal, and enqueue one submission.

        Raises :class:`~repro.serve.jobs.BadRequest`,
        :class:`~repro.serve.scheduler.QueueFull`, or
        :class:`~repro.serve.scheduler.Draining` — the HTTP layer maps
        them to 400/429/503.
        """
        request = JobRequest.from_payload(
            payload, default_tenant=self.config.default_tenant
        )
        return self._admit(request, journal=True)

    def _admit(self, request: JobRequest, journal: bool) -> JobRecord:
        record = JobRecord(
            job_id=self.jobs.new_job_id(request),
            request=request,
            submitted_t=time.monotonic(),
        )
        spec_key = request.spec_key()
        record.deduplicated = spec_key in self._spec_keys_seen
        self._spec_keys_seen.setdefault(spec_key, record.job_id)
        # Journal before queueing: a server killed right after this
        # line still replays the submission on restart — admitted work
        # is never lost, at worst re-run (and then cache-hit).
        self.jobs.add(record, journal=journal)
        try:
            self.scheduler.submit(record)
        except (QueueFull, Draining) as exc:
            record.state = "cancelled"
            record.error = exc.__class__.__name__
            record.finished_t = time.monotonic()
            self.ledger.emit(
                "serve_reject",
                job_id=record.job_id,
                tenant=request.tenant,
                spec_key=spec_key,
                reason=exc.__class__.__name__,
            )
            raise
        self.ledger.emit(
            "serve_submit",
            job_id=record.job_id,
            tenant=request.tenant,
            spec_key=spec_key,
            artifacts=list(request.artifacts),
            deduplicated=record.deduplicated,
        )
        return record

    # -- execution (worker threads) --------------------------------------
    def _run_job(self, record: JobRecord) -> None:
        record.state = "running"
        record.started_t = time.monotonic()
        request = record.request
        job_dir = self.config.job_dir(record.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        events_path = job_dir / "events.jsonl"
        record.events_path = str(events_path)
        self.ledger.emit(
            "serve_job_start",
            job_id=record.job_id,
            tenant=record.tenant,
            artifacts=list(request.artifacts),
        )
        job_log = EventLog(events_path)
        sink = TeeSink(job_log, self.ledger)
        self._cache_router.register(sink)
        try:
            result = execute(
                request.to_specs(),
                # A submission asking for parallelism wins; otherwise
                # the server-wide default applies.
                workers=(
                    request.workers
                    if request.workers > 1
                    else self.config.job_workers
                ),
                timeout_s=(
                    request.timeout_s
                    if request.timeout_s is not None
                    else self.config.timeout_s
                ),
                retries=(
                    request.retries
                    if request.retries is not None
                    else self.config.retries
                ),
                cache=self.cache,
                code_version=self.code_version,
                events=sink,
                trace=self.config.trace or None,
                dispatch=self.config.dispatch,
                lease_size=self.config.lease_size,
                backend=request.backend or self.config.backend,
            )
            self._settle(record, result, sink, job_dir)
        except Exception as exc:  # defensive: execute() shouldn't raise
            record.state = "failed"
            record.error = f"{exc.__class__.__name__}: {exc}"
        finally:
            record.finished_t = time.monotonic()
            self._cache_router.unregister()
            job_log.close()
            self.ledger.emit(
                "serve_job_end",
                job_id=record.job_id,
                tenant=record.tenant,
                state=record.state,
                latency_s=round(
                    record.finished_t - record.submitted_t, 6
                ),
            )

    def _settle(self, record, result, sink, job_dir) -> None:
        from collections import Counter

        from repro.experiments.export import to_jsonable
        from repro.obs.calib import evaluate_gauges, values_from_result

        # Gauges over this job's results, mirrored into both ledgers
        # and onto the server-wide scoreboard.
        evaluated = evaluate_gauges(values_from_result(result))
        gauge_fields = [g.event_fields() for g in evaluated]
        for fields in gauge_fields:
            sink.emit("gauge", **fields)
        scored = [g for g in gauge_fields if g["status"] != "skipped"]
        record.gauges = scored
        with self._board_lock:
            for fields in scored:
                self._gauge_board[fields["name"]] = dict(
                    fields, job_id=record.job_id
                )

        # The result payload mirrors the sweep CLI's --json export
        # (same display keys, same to_jsonable normalisation), so the
        # two transports return bit-identical data.
        display_counts = Counter(o.spec.display for o in result.outcomes)

        def payload_key(outcome) -> str:
            display = outcome.spec.display
            if display_counts[display] > 1:
                return f"{display}#{outcome.spec.index}"
            return display

        values = {
            payload_key(outcome): to_jsonable(outcome.value)
            for outcome in result.outcomes
            if outcome.status in ("ok", "cached")
        }
        manifest = build_manifest(
            result,
            base_seed=record.request.seed,
            scale=record.request.scale,
            argv=["serve", record.job_id] + list(record.request.artifacts),
            cache_dir=self.config.cache_dir,
            events_path=record.events_path,
        )
        write_manifest(manifest, job_dir / "manifest.json")
        record.manifest_digest = self.artifacts.put_json(manifest)
        record.result_digest = self.artifacts.put_json(
            {
                "job_id": record.job_id,
                "spec_key": record.request.spec_key(),
                "summary": result.summary(),
                "values": values,
                "statuses": {
                    o.spec.display: o.status for o in result.outcomes
                },
            }
        )
        record.counts = {
            "jobs": len(result.outcomes),
            "ok": result.ok_count,
            "cached": result.cached_count,
            "failed": result.failed_count,
            "skipped": result.skipped_count,
        }
        if result.failed_count or result.skipped_count:
            record.state = "failed"
            failures = result.failures()
            if failures:
                record.error = (
                    f"{failures[0].label}: {failures[0].error_type}: "
                    f"{failures[0].error}"
                )
        else:
            record.state = "done"

    # -- introspection ---------------------------------------------------
    def job_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        record = self.jobs.get(job_id)
        if record is None or record.result_digest is None:
            return None
        return self.artifacts.get_json(record.result_digest)

    def gauge_board(self) -> List[Dict[str, Any]]:
        with self._board_lock:
            return [
                self._gauge_board[name]
                for name in sorted(self._gauge_board)
            ]

    def stats(self) -> Dict[str, Any]:
        return {
            "uptime_s": round(self.uptime_s, 3),
            "draining": self.draining,
            "code_version": self.code_version,
            "scheduler": self.scheduler.stats(),
            "cache": self.cache.stats(),
            "artifacts": {
                "blobs": len(self.artifacts),
                "size_bytes": self.artifacts.size_bytes(),
            },
            "jobs": self.jobs.counts_by_state(),
        }

    def metrics_text(self) -> str:
        """OpenMetrics exposition: serve counters + gauge scoreboard."""
        from repro.obs.openmetrics import render_openmetrics

        stats = self.stats()
        lines = []
        lines.append("# TYPE repro_serve_jobs gauge")
        lines.append(
            "# HELP repro_serve_jobs Jobs by lifecycle state."
        )
        for state, count in sorted(stats["jobs"].items()):
            lines.append(
                f'repro_serve_jobs{{state="{state}"}} {count}'
            )
        sched = stats["scheduler"]
        lines.append("# TYPE repro_serve_admitted counter")
        lines.append(f"repro_serve_admitted_total {sched['admitted']}")
        lines.append("# TYPE repro_serve_rejected counter")
        lines.append(f"repro_serve_rejected_total {sched['rejected']}")
        cache = stats["cache"]
        lines.append("# TYPE repro_serve_cache_bytes gauge")
        lines.append(f"repro_serve_cache_bytes {cache['approx_bytes']}")
        lines.append("# TYPE repro_serve_cache_evictions counter")
        lines.append(
            f"repro_serve_cache_evictions_total {cache['evictions']}"
        )
        board = self.gauge_board()
        body = render_openmetrics(board) if board else "# EOF\n"
        return "\n".join(lines) + "\n" + body
