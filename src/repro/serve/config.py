"""Serve configuration: one dataclass, one data directory layout.

Everything the job server persists lives under one ``data_dir``::

    data_dir/
      cache/            shared engine ResultCache (size-bounded LRU)
      artifacts/        content-addressed store for large outputs
      jobs/<id>/        per-job run ledger + manifest
      server-events.jsonl   server lifecycle ledger (serve_* events)
      jobs.jsonl        submission journal (restart replay)
      archive/          cross-run RunArchive; one record per drain

The layout is deliberately plain files: a drained server's state is
inspectable with ``repro stats``/``repro cache ls`` and a restarted
server replays the journal against the same cache to 100% hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

#: Default byte budget for the shared result cache (64 MiB).
DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024

#: Default byte budget for the artifact store (256 MiB).
DEFAULT_ARTIFACTS_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class ServeConfig:
    """Tunables for one :class:`repro.serve.server.ServeServer`.

    ``max_concurrency`` bounds how many sweeps run at once (one worker
    thread each); ``queue_limit`` bounds admitted-but-not-started jobs
    per tenant (excess submissions are rejected with 429, the
    backpressure signal); ``job_workers`` is forwarded to ``execute()``
    per sweep (1 = serial in the worker thread, >1 fans out worker
    processes). ``dispatch``/``lease_size`` pick the parallel executor
    for those fan-outs (batch leases by default — see
    ``docs/performance.md``) and ``backend`` sets a server-wide default
    compute backend (a submission's own ``"backend"`` field wins).
    """

    data_dir: PathLike = ".repro-serve"
    host: str = "127.0.0.1"
    port: int = 8321
    max_concurrency: int = 4
    queue_limit: int = 256
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    artifacts_max_bytes: int = DEFAULT_ARTIFACTS_MAX_BYTES
    job_workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1
    default_tenant: str = "anonymous"
    replay_journal: bool = True
    drain_grace_s: float = 30.0
    trace: bool = False
    dispatch: str = "auto"
    lease_size: Optional[int] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.cache_max_bytes < 0 or self.artifacts_max_bytes < 0:
            raise ValueError("byte budgets must be >= 0")
        if self.dispatch not in ("auto", "batch", "per-job"):
            raise ValueError(
                "dispatch must be 'auto', 'batch', or 'per-job'"
            )
        if self.lease_size is not None and self.lease_size < 1:
            raise ValueError("lease_size must be >= 1")

    # -- layout ----------------------------------------------------------
    @property
    def root(self) -> Path:
        return Path(self.data_dir)

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def ledger_path(self) -> Path:
        return self.root / "server-events.jsonl"

    @property
    def journal_path(self) -> Path:
        return self.root / "jobs.jsonl"

    @property
    def archive_dir(self) -> Path:
        return self.root / "archive"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def ensure_layout(self) -> None:
        for path in (self.root, self.cache_dir, self.artifacts_dir,
                     self.jobs_dir):
            path.mkdir(parents=True, exist_ok=True)
