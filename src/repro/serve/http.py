"""Stdlib asyncio HTTP/JSONL transport over :class:`ServeServer`.

No frameworks, no dependencies: ``asyncio.start_server`` plus a small
HTTP/1.1 request parser. Every response is JSON (or raw JSONL/text
where noted) and the connection closes after each exchange — the API
is poll-and-stream shaped, not keep-alive shaped.

Routes::

    GET  /healthz                  liveness + drain state
    GET  /v1/stats                 scheduler/cache/job counters
    GET  /v1/metrics               OpenMetrics text (counters + gauges)
    GET  /v1/gauges                server-wide calibration scoreboard
    POST /v1/jobs                  submit a sweep (JSON body) -> 202
    GET  /v1/jobs[?tenant=&state=] list jobs
    GET  /v1/jobs/<id>             one job record
    GET  /v1/jobs/<id>/result      result payload (values keyed like
                                   the sweep CLI's --json export)
    GET  /v1/jobs/<id>/manifest    the run manifest
    GET  /v1/jobs/<id>/events      the job's run ledger (JSONL);
                                   ?follow=1 streams chunked until the
                                   job settles (SSE-style tail)
    GET  /v1/events                the server-wide ledger (JSONL);
                                   ?follow=1 tails every job's events
                                   live until drain/stop (what
                                   ``repro watch URL`` consumes)
    GET  /v1/artifacts/<digest>    raw content-addressed blob
    POST /v1/drain                 stop admissions, settle, report

Error mapping: :class:`BadRequest` → 400, unknown id → 404,
:class:`QueueFull` → 429, :class:`Draining` → 503.

``run_in_thread`` hosts the whole stack on a background thread with
its own event loop — what the tests, the load generator, and the
benchmark use; ``serve_forever`` is the blocking entry point the CLI
uses, with SIGTERM/SIGINT wired to graceful drain.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.config import ServeConfig
from repro.serve.jobs import BadRequest
from repro.serve.scheduler import Draining, QueueFull
from repro.serve.server import ServeServer

_MAX_BODY_BYTES = 8 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, target, _version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if n > _MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(n)
    return method.upper(), target, headers, body


def _response_bytes(
    status: int, body: bytes, content_type: str
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _json_response(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, indent=1, allow_nan=False) + "\n").encode()
    return _response_bytes(status, body, "application/json")


class ServeHTTP:
    """The asyncio shell: sockets in, :class:`ServeServer` calls out."""

    def __init__(self, core: ServeServer) -> None:
        self.core = core
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = None  # asyncio.Event, created on the loop
        self._active_tails = 0
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------
    async def start(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> int:
        """Bind and start accepting; returns the bound port."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host if host is not None else self.core.config.host,
            port if port is not None else self.core.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`; then drain and close."""
        assert self._server is not None
        async with self._server:
            await self._server.start_serving()
            await self._shutdown.wait()
            # Stop accepting before draining: new connections are
            # refused while in-flight jobs settle.
            self._server.close()
            await asyncio.get_running_loop().run_in_executor(
                None, self.core.close
            )
            # In-flight follow streams need a couple more polls to see
            # the ledger's final bytes (serve_stop) and send their
            # chunked terminator; don't kill the loop under them.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 5.0
            while self._active_tails and loop.time() < deadline:
                await asyncio.sleep(0.05)
            # One more tick so the drained connection handlers can run
            # writer.wait_closed() before the loop is torn down (else
            # their sockets leak past the loop as destroyed tasks).
            await asyncio.sleep(0.1)

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_forever(self, install_signals: bool = True) -> None:
        """The CLI entry point: bind, wire SIGTERM/SIGINT, serve, drain."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
        await self.serve_until_shutdown()

    # -- request handling ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, target, _headers, body = await _read_request(reader)
            except HttpError as exc:
                writer.write(
                    _json_response(exc.status, {"error": exc.message})
                )
                await writer.drain()
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            try:
                await self._route(method, target, body, writer)
            except HttpError as exc:
                writer.write(
                    _json_response(exc.status, {"error": exc.message})
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # never let one request kill the loop
            try:
                writer.write(
                    _json_response(
                        500,
                        {"error": f"{exc.__class__.__name__}: {exc}"},
                    )
                )
                await writer.drain()
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _route(self, method, target, body, writer) -> None:
        parsed = urlparse(target)
        path = parsed.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        parts = [p for p in path.split("/") if p]
        core = self.core

        if path == "/healthz" and method == "GET":
            status = "draining" if core.draining else "ok"
            writer.write(_json_response(200, {"status": status}))
        elif path == "/v1/stats" and method == "GET":
            writer.write(_json_response(200, core.stats()))
        elif path == "/v1/metrics" and method == "GET":
            writer.write(
                _response_bytes(
                    200,
                    core.metrics_text().encode(),
                    "application/openmetrics-text",
                )
            )
        elif path == "/v1/gauges" and method == "GET":
            writer.write(
                _json_response(200, {"gauges": core.gauge_board()})
            )
        elif path == "/v1/events" and method == "GET":
            follow = query.get("follow") in ("1", "true", "yes")
            await self._tail_chunked(
                writer,
                lambda: str(core.config.ledger_path),
                follow,
                lambda: core.closed,
            )
        elif path == "/v1/drain" and method == "POST":
            settled = await asyncio.get_running_loop().run_in_executor(
                None, core.drain
            )
            writer.write(
                _json_response(
                    200,
                    {"settled": settled, "jobs": core.jobs.counts_by_state()},
                )
            )
        elif path == "/v1/jobs" and method == "POST":
            self._submit(body, writer)
        elif path == "/v1/jobs" and method == "GET":
            records = core.jobs.list(
                tenant=query.get("tenant"), state=query.get("state")
            )
            writer.write(
                _json_response(
                    200,
                    {"jobs": [r.as_public_dict() for r in records]},
                )
            )
        elif (
            len(parts) == 3 and parts[:2] == ["v1", "jobs"]
            and method == "GET"
        ):
            record = self._record_or_404(parts[2])
            writer.write(_json_response(200, record.as_public_dict()))
        elif (
            len(parts) == 4 and parts[:2] == ["v1", "jobs"]
            and method == "GET"
        ):
            await self._job_subresource(parts[2], parts[3], query, writer)
        elif (
            len(parts) == 3 and parts[:2] == ["v1", "artifacts"]
            and method == "GET"
        ):
            data = core.artifacts.get_bytes(parts[2])
            if data is None:
                raise HttpError(404, f"unknown artifact {parts[2]!r}")
            writer.write(
                _response_bytes(200, data, "application/octet-stream")
            )
        else:
            raise HttpError(404, f"no route for {method} {path}")
        await writer.drain()

    def _record_or_404(self, job_id: str):
        record = self.core.jobs.get(job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return record

    def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except ValueError:
            raise HttpError(400, "body is not valid JSON") from None
        try:
            record = self.core.submit(payload)
        except BadRequest as exc:
            raise HttpError(400, str(exc)) from None
        except QueueFull as exc:
            raise HttpError(429, str(exc)) from None
        except Draining as exc:
            raise HttpError(503, str(exc)) from None
        writer.write(_json_response(202, record.as_public_dict()))

    async def _job_subresource(self, job_id, sub, query, writer) -> None:
        record = self._record_or_404(job_id)
        if sub == "result":
            payload = self.core.job_result(job_id)
            if payload is None:
                raise HttpError(
                    409, f"job {job_id} has no result (state={record.state})"
                )
            writer.write(_json_response(200, payload))
        elif sub == "manifest":
            if record.manifest_digest is None:
                raise HttpError(
                    409,
                    f"job {job_id} has no manifest (state={record.state})",
                )
            payload = self.core.artifacts.get_json(record.manifest_digest)
            writer.write(_json_response(200, payload))
        elif sub == "events":
            follow = query.get("follow") in ("1", "true", "yes")
            await self._stream_events(record, follow, writer)
        else:
            raise HttpError(404, f"no job subresource {sub!r}")

    async def _stream_events(self, record, follow, writer) -> None:
        """Send the job ledger as chunked JSONL; ``follow`` tails it."""
        await self._tail_chunked(
            writer,
            lambda: record.events_path,
            follow,
            lambda: record.terminal,
        )

    async def _tail_chunked(self, writer, path_fn, follow, done_fn) -> None:
        """Chunked-JSONL tail of a ledger file until ``done_fn()``.

        The existing EventLog file *is* the wire format — each chunk
        carries whatever complete bytes have landed since the last
        poll, and the stream ends when ``done_fn`` says the writer is
        finished (job settled, server stopped) — or right away without
        ``follow``. Serves both the per-job tail and the server-wide
        ``/v1/events`` follow stream.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/jsonl\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        pos = 0
        self._active_tails += 1
        try:
            while True:
                data = b""
                path = path_fn()
                if path is not None:
                    try:
                        with open(path, "rb") as handle:
                            handle.seek(pos)
                            data = handle.read()
                    except OSError:
                        data = b""
                if data:
                    pos += len(data)
                    writer.write(
                        f"{len(data):x}\r\n".encode() + data + b"\r\n"
                    )
                    await writer.drain()
                if not follow or done_fn():
                    if done_fn() and data:
                        continue  # one more sweep for late-flushed lines
                    break
                await asyncio.sleep(0.05)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            self._active_tails -= 1


class ServerHandle:
    """A serve stack running on a background thread (tests, loadgen)."""

    def __init__(self, core: ServeServer, http: ServeHTTP, thread, loop):
        self.core = core
        self.http = http
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        assert self.http.port is not None
        return self.http.port

    @property
    def url(self) -> str:
        return f"http://{self.core.config.host}:{self.port}"

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain + shutdown; joins the server thread."""
        self._loop.call_soon_threadsafe(self.http.request_shutdown)
        self._thread.join(timeout=timeout)


def run_in_thread(
    config: ServeConfig, start_timeout: float = 10.0
) -> ServerHandle:
    """Start a full serve stack on a daemon thread; wait until bound."""
    core = ServeServer(config)
    http = ServeHTTP(core)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop

        async def _run() -> None:
            await http.start(port=config.port)
            core.start()
            started.set()
            await http.serve_until_shutdown()

        try:
            loop.run_until_complete(_run())
        finally:
            loop.close()

    thread = threading.Thread(
        target=_main, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise RuntimeError("serve stack failed to start in time")
    return ServerHandle(core, http, thread, box["loop"])
