"""Job model: submissions, lifecycle records, and the journal.

A submission is a small JSON object::

    {"artifacts": ["fig2", "fig9"], "seed": 7, "scale": 0.25,
     "tenant": "alice", "workers": 1}

:class:`JobRequest` validates it and expands it to the *same*
:class:`~repro.engine.spec.JobSpec` list the ``sweep`` CLI would build
(via :func:`repro.engine.spec.artifact_jobs`), which is what makes
results bit-identical across transports. ``spec_key()`` is a stable
content hash of the submission — two identical submissions share it,
so the server can report deduplication and a restarted server replays
journaled submissions straight into cache hits.

:class:`JobStore` is the in-memory registry of every
:class:`JobRecord` plus an append-only JSONL *journal* of submissions:
the ledger a restarted server replays. Lost jobs are impossible to
miss — every submission is journaled before it is admitted, and every
record settles in exactly one terminal state.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine import registry
from repro.engine.spec import JobSpec, artifact_jobs

PathLike = Union[str, Path]

#: Terminal job states (a record never leaves one of these).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Every state a job record can be in.
JOB_STATES = frozenset({"queued", "running"}) | TERMINAL_STATES


class BadRequest(ValueError):
    """A submission payload the server must reject with 400."""


@dataclass(frozen=True)
class JobRequest:
    """One validated sweep submission."""

    artifacts: tuple
    seed: Optional[int] = None
    scale: float = 1.0
    workers: int = 1
    timeout_s: Optional[float] = None
    retries: Optional[int] = None
    tenant: str = "anonymous"
    backend: Optional[str] = None

    @classmethod
    def from_payload(
        cls, payload: Any, default_tenant: str = "anonymous"
    ) -> "JobRequest":
        if not isinstance(payload, dict):
            raise BadRequest("submission body must be a JSON object")
        artifacts = payload.get("artifacts")
        if (
            not isinstance(artifacts, list)
            or not artifacts
            or not all(isinstance(a, str) and a for a in artifacts)
        ):
            raise BadRequest(
                "'artifacts' must be a non-empty list of runner names"
            )
        known = set(registry.available())
        unknown = [a for a in artifacts if a not in known and ":" not in a]
        if unknown:
            raise BadRequest(f"unknown artifact id(s): {', '.join(unknown)}")
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise BadRequest("'seed' must be an integer")
        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise BadRequest("'scale' must be a positive number")
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise BadRequest("'workers' must be an integer >= 1")
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or timeout_s <= 0
        ):
            raise BadRequest("'timeout_s' must be a positive number")
        retries = payload.get("retries")
        if retries is not None and (
            not isinstance(retries, int) or retries < 0
        ):
            raise BadRequest("'retries' must be an integer >= 0")
        tenant = payload.get("tenant", default_tenant)
        if not isinstance(tenant, str) or not tenant:
            raise BadRequest("'tenant' must be a non-empty string")
        backend = payload.get("backend")
        if backend is not None:
            if not isinstance(backend, str) or not backend:
                raise BadRequest("'backend' must be a non-empty string")
            from repro.kernels.backend import (
                BackendUnavailableError,
                UnknownBackendError,
                validate_backend,
            )

            try:
                validate_backend(backend)
            except (UnknownBackendError, BackendUnavailableError) as exc:
                raise BadRequest(str(exc)) from None
        unknown_keys = set(payload) - {
            "artifacts", "seed", "scale", "workers", "timeout_s",
            "retries", "tenant", "backend",
        }
        if unknown_keys:
            raise BadRequest(
                f"unknown field(s): {', '.join(sorted(unknown_keys))}"
            )
        return cls(
            artifacts=tuple(artifacts),
            seed=seed,
            scale=float(scale),
            workers=workers,
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            retries=retries,
            tenant=tenant,
            backend=backend,
        )

    def to_specs(self) -> List[JobSpec]:
        """The canonical spec list — identical to the ``sweep`` CLI's."""
        return artifact_jobs(
            list(self.artifacts),
            base_seed=self.seed,
            scale=self.scale,
            backend=self.backend,
        )

    def as_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "artifacts": list(self.artifacts),
            "seed": self.seed,
            "scale": self.scale,
            "workers": self.workers,
            "tenant": self.tenant,
        }
        if self.timeout_s is not None:
            payload["timeout_s"] = self.timeout_s
        if self.retries is not None:
            payload["retries"] = self.retries
        if self.backend is not None:
            payload["backend"] = self.backend
        return payload

    def spec_key(self) -> str:
        """Stable content hash of what will actually run.

        Execution knobs that cannot change results (workers, timeout,
        retries, tenant) are excluded, so the key identifies the
        *work*, mirroring the engine cache's key philosophy. A
        non-default ``backend`` changes numbers, so it is part of the
        key — and the default is omitted (not stamped) to keep every
        pre-backend journal entry's key stable.
        """
        body: Dict[str, Any] = {
            "artifacts": list(self.artifacts),
            "seed": self.seed,
            "scale": self.scale,
        }
        if self.backend is not None:
            from repro.kernels.backend import DEFAULT_BACKEND

            if self.backend != DEFAULT_BACKEND:
                body["backend"] = self.backend
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class JobRecord:
    """Lifecycle record of one admitted submission."""

    job_id: str
    request: JobRequest
    state: str = "queued"
    submitted_t: float = 0.0
    started_t: Optional[float] = None
    finished_t: Optional[float] = None
    counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    result_digest: Optional[str] = None
    manifest_digest: Optional[str] = None
    events_path: Optional[str] = None
    gauges: List[Dict[str, Any]] = field(default_factory=list)
    deduplicated: bool = False

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_public_dict(self) -> Dict[str, Any]:
        """What the HTTP API returns for this job."""
        record: Dict[str, Any] = {
            "id": self.job_id,
            "state": self.state,
            "tenant": self.tenant,
            "spec_key": self.request.spec_key(),
            "request": self.request.as_payload(),
            "submitted_t": round(self.submitted_t, 6),
            "deduplicated": self.deduplicated,
        }
        if self.started_t is not None:
            record["started_t"] = round(self.started_t, 6)
        if self.finished_t is not None:
            record["finished_t"] = round(self.finished_t, 6)
            record["latency_s"] = round(
                self.finished_t - self.submitted_t, 6
            )
        if self.counts:
            record["counts"] = dict(self.counts)
        if self.error is not None:
            record["error"] = self.error
        if self.result_digest is not None:
            record["result_digest"] = self.result_digest
        if self.manifest_digest is not None:
            record["manifest_digest"] = self.manifest_digest
        if self.events_path is not None:
            record["events_path"] = self.events_path
        if self.gauges:
            record["gauges"] = self.gauges
        return record


class JobStore:
    """Thread-safe registry of job records + the submission journal.

    The journal is append-only JSONL, one line per admitted
    submission (``{"job_id", "spec_key", "request"}``). It is written
    *before* the job is queued, so even a server killed immediately
    after admission can replay the submission on restart.
    """

    def __init__(self, journal_path: Optional[PathLike] = None) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._counter = itertools.count(1)
        self.journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self._journal_handle = None

    def new_job_id(self, request: JobRequest) -> str:
        seq = next(self._counter)
        return f"j{seq:06d}-{request.spec_key()[:8]}"

    def add(self, record: JobRecord, journal: bool = True) -> None:
        with self._lock:
            self._records[record.job_id] = record
            self._order.append(record.job_id)
            if journal and self.journal_path is not None:
                if self._journal_handle is None:
                    self.journal_path.parent.mkdir(
                        parents=True, exist_ok=True
                    )
                    self._journal_handle = self.journal_path.open("a")
                line = json.dumps(
                    {
                        "job_id": record.job_id,
                        "spec_key": record.request.spec_key(),
                        "request": record.request.as_payload(),
                    },
                    separators=(",", ":"),
                )
                self._journal_handle.write(line + "\n")
                self._journal_handle.flush()

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def list(
        self, tenant: Optional[str] = None, state: Optional[str] = None
    ) -> List[JobRecord]:
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def counts_by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in sorted(JOB_STATES)}
        for record in self.list():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def unsettled(self) -> List[JobRecord]:
        return [r for r in self.list() if not r.terminal]

    def close(self) -> None:
        with self._lock:
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None

    @staticmethod
    def read_journal(path: PathLike) -> List[Dict[str, Any]]:
        """Parse a submission journal; a torn final line is dropped."""
        entries: List[Dict[str, Any]] = []
        try:
            lines = Path(path).read_text().splitlines()
        except OSError:
            return entries
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                if lineno == len(lines) - 1:
                    break
                raise ValueError(
                    f"{path}: malformed journal entry on line {lineno + 1}"
                ) from None
        return entries
