"""``repro.serve`` — the engine as a long-running sweep service.

The repo's sweeps have so far been one-shot CLI invocations; this
package wraps :func:`repro.engine.execute` in a job server so many
clients can share one warm, size-bounded result cache:

* :mod:`~repro.serve.config` — :class:`ServeConfig` and the on-disk
  data-directory layout;
* :mod:`~repro.serve.jobs` — submissions, job records, the journal;
* :mod:`~repro.serve.store` — :class:`BoundedResultCache` (LRU byte
  budget) and the content-addressed :class:`ArtifactStore`;
* :mod:`~repro.serve.scheduler` — bounded concurrency with per-tenant
  round-robin fairness;
* :mod:`~repro.serve.server` — the transport-free core
  (:class:`ServeServer`): admission → execution → settlement, gauge
  scoreboard, graceful drain, journal replay;
* :mod:`~repro.serve.http` — the stdlib asyncio HTTP/JSONL API;
* :mod:`~repro.serve.client` — an ``http.client`` client;
* :mod:`~repro.serve.loadgen` — closed-loop load generator.

Start one from the CLI with ``repro serve``; everything it persists
lives under one ``--data-dir`` and stays inspectable with ``repro
stats`` and ``repro cache ls``.
"""

from repro.serve.config import ServeConfig
from repro.serve.jobs import BadRequest, JobRecord, JobRequest, JobStore
from repro.serve.scheduler import Draining, FairScheduler, QueueFull
from repro.serve.server import SERVE_EVENT_TYPES, ServeServer
from repro.serve.store import ArtifactStore, BoundedResultCache

__all__ = [
    "ArtifactStore",
    "BadRequest",
    "BoundedResultCache",
    "Draining",
    "FairScheduler",
    "JobRecord",
    "JobRequest",
    "JobStore",
    "QueueFull",
    "SERVE_EVENT_TYPES",
    "ServeConfig",
    "ServeServer",
]
