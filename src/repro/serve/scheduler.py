"""Admission control and per-tenant fair scheduling.

The server admits jobs into per-tenant FIFO queues and a fixed pool of
worker threads drains them **round-robin across tenants**: a tenant
that floods the queue with a thousand sweeps delays its own tail, not
the single job another tenant submitted a millisecond later. Two
bounds provide backpressure:

* ``max_concurrency`` — worker threads, i.e. sweeps in flight;
* ``queue_limit`` — queued-but-not-started jobs *per tenant*; excess
  submissions raise :class:`QueueFull` (the HTTP layer maps it to
  429).

Draining flips one flag: :meth:`FairScheduler.drain` stops admissions
(:class:`Draining` → 503) and then waits until every already-admitted
job has settled. Nothing is cancelled — admitted work is a promise,
and the submission journal makes the promise durable across restarts.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.serve.jobs import JobRecord


class QueueFull(RuntimeError):
    """Per-tenant queue limit hit; the client should back off."""


class Draining(RuntimeError):
    """The server is draining and admits nothing new."""


class FairScheduler:
    """Round-robin-across-tenants job queue + worker thread pool."""

    def __init__(
        self,
        run_job: Callable[[JobRecord], None],
        max_concurrency: int = 4,
        queue_limit: int = 256,
    ) -> None:
        self._run_job = run_job
        self.max_concurrency = int(max_concurrency)
        self.queue_limit = int(queue_limit)
        self._cond = threading.Condition()
        self._queues: Dict[str, deque] = {}
        self._ring: deque = deque()  # tenants with queued work
        self._running = 0
        self._draining = False
        self._stopped = False
        self._threads = []
        self.admitted = 0
        self.rejected = 0
        self.completed = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        for i in range(self.max_concurrency):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions; wait for every admitted job to settle.

        Returns True when the backlog fully settled within
        ``timeout`` (None = wait forever).
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            return self._cond.wait_for(
                lambda: self._running == 0 and not self._ring,
                timeout=timeout,
            )

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Drain, then shut the worker threads down."""
        settled = self.drain(timeout=timeout)
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        return settled

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    # -- admission -------------------------------------------------------
    def submit(self, record: JobRecord) -> None:
        with self._cond:
            if self._draining or self._stopped:
                raise Draining("server is draining; not admitting jobs")
            queue = self._queues.get(record.tenant)
            if queue is None:
                queue = self._queues[record.tenant] = deque()
            if len(queue) >= self.queue_limit:
                self.rejected += 1
                raise QueueFull(
                    f"tenant {record.tenant!r} has {len(queue)} queued "
                    f"job(s) (limit {self.queue_limit})"
                )
            queue.append(record)
            if record.tenant not in self._ring:
                self._ring.append(record.tenant)
            self.admitted += 1
            self._cond.notify()

    # -- scheduling ------------------------------------------------------
    def _pick_locked(self) -> Optional[JobRecord]:
        """Next job, rotating the tenant ring (caller holds the lock)."""
        while self._ring:
            tenant = self._ring[0]
            queue = self._queues.get(tenant)
            if not queue:
                self._ring.popleft()
                continue
            record = queue.popleft()
            self._ring.rotate(-1)
            if not queue:
                # Tenant's backlog is spent; drop it from the ring
                # (it re-enters on its next submit).
                try:
                    self._ring.remove(tenant)
                except ValueError:
                    pass
            return record
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                record = self._pick_locked()
                while record is None and not self._stopped:
                    self._cond.wait(timeout=0.5)
                    record = self._pick_locked()
                if record is None:
                    return
                self._running += 1
            try:
                self._run_job(record)
            except Exception:
                # A job callback that raises must not take its worker
                # thread down with it; the record's own state carries
                # the failure.
                pass
            finally:
                with self._cond:
                    self._running -= 1
                    self.completed += 1
                    self._cond.notify_all()

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "running": self._running,
                "queued": sum(len(q) for q in self._queues.values()),
                "queued_by_tenant": {
                    tenant: len(queue)
                    for tenant, queue in sorted(self._queues.items())
                    if queue
                },
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "draining": self._draining,
            }
