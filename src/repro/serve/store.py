"""Multi-tenant storage fronts for the job server.

Two stores, both plain directories:

* :class:`BoundedResultCache` — the engine's
  :class:`~repro.engine.cache.ResultCache` with its byte budget
  enforced *continuously*: every ``put`` updates an incremental size
  account and triggers an LRU sweep (``ResultCache.gc``) the moment
  the directory exceeds ``max_bytes``. All tenants share one cache —
  identical sweeps submitted by different tenants hit the same
  entries, which is the point of content-keyed results.
* :class:`ArtifactStore` — content-addressed blobs for outputs too
  large or too numerous for job records: result payloads, manifests,
  rendered reports. Keyed by SHA-256, sharded two-hex-deep, written
  atomically, deduplicated by construction (same bytes, same path).

Both are safe for concurrent writers: the cache inherits the engine's
unique-temp-name + ``os.replace`` protocol, the artifact store uses
the same, and size accounting is lock-guarded.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.engine.cache import ResultCache
from repro.engine.spec import JobSpec

PathLike = Union[str, Path]


#: Serialization overhead a cache record adds on top of its value
#: bytes (runner/kwargs/seed/scale envelope). Deliberately generous —
#: an over-estimate only evicts slightly early, an under-estimate
#: would let a commit overshoot the budget.
_RECORD_OVERHEAD_BYTES = 1024


class BoundedResultCache(ResultCache):
    """A :class:`ResultCache` that never exceeds ``max_bytes`` on disk.

    The budget holds *throughout* a put, not just after it: each
    writer reserves a conservative size estimate up front, evicts LRU
    entries until committed-bytes + all in-flight reservations fit,
    and only then commits. The committed account starts from a
    directory scan and is maintained incrementally, so steady-state
    puts cost one ``stat``, not a directory walk. Eviction order is
    LRU by mtime; ``get`` touches entries on hit, so recently *used*
    entries survive. Quarantined entries never count. The single
    exception to the invariant is a value bigger than the whole
    budget, which is committed and then immediately evicted.
    """

    def __init__(
        self,
        root: PathLike,
        max_bytes: int,
        events: Optional[Any] = None,
    ) -> None:
        super().__init__(root, events=events)
        self.max_bytes = int(max_bytes)
        self._size_lock = threading.Lock()
        self._disk_bytes = self.size_bytes()
        self._reserved_bytes = 0
        self.evictions = 0
        self.evicted_bytes = 0

    @property
    def approx_bytes(self) -> int:
        """The incrementally maintained committed-size account."""
        with self._size_lock:
            return self._disk_bytes

    @staticmethod
    def _estimate_bytes(value: Any) -> int:
        try:
            body = len(
                json.dumps(value, separators=(",", ":"), default=str)
            )
        except (TypeError, ValueError):
            body = 4096
        return body + _RECORD_OVERHEAD_BYTES

    def put(self, spec: JobSpec, key: str, value: Any) -> Path:
        estimate = self._estimate_bytes(value)
        with self._size_lock:
            self._reserved_bytes += estimate
            over = (
                self._disk_bytes + self._reserved_bytes > self.max_bytes
            )
        try:
            if over:
                # Make room *before* committing so the directory never
                # exceeds the budget mid-put, even with concurrent
                # writers (each one's reservation is accounted).
                self.enforce_budget()
            path = super().put(spec, key, value)
            try:
                added = path.stat().st_size
            except OSError:
                added = estimate
            with self._size_lock:
                self._disk_bytes += added
        finally:
            with self._size_lock:
                self._reserved_bytes -= estimate
                over = self._disk_bytes > self.max_bytes
        if over:
            # Only reachable when the entry alone dwarfs the budget
            # (or the estimate was somehow beaten): evict immediately.
            self.enforce_budget()
        return path

    def enforce_budget(self) -> Dict[str, Any]:
        """Evict LRU entries until committed + reserved bytes fit.

        Reconciles the committed account against the exact directory
        scan ``gc`` performs.
        """
        with self._size_lock:
            reserved = self._reserved_bytes
        summary = self.gc(max(0, self.max_bytes - reserved))
        with self._size_lock:
            self._disk_bytes = summary["size_bytes"]
        self.evictions += summary["evicted"]
        self.evicted_bytes += summary["freed_bytes"]
        return summary

    def stats(self) -> Dict[str, Any]:
        return {
            "max_bytes": self.max_bytes,
            "approx_bytes": self.approx_bytes,
            "entries": len(self),
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
        }


class ArtifactStore:
    """Content-addressed blob store: ``root/<aa>/<digest><suffix>``.

    ``put_bytes`` returns the SHA-256 hex digest — the only handle a
    caller ever needs. Storing the same bytes twice is free (the
    second write sees the path already exists and skips the copy), so
    a thousand identical small-sweep results occupy one blob.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def _path_for(self, digest: str, suffix: str = "") -> Path:
        return self.root / digest[:2] / f"{digest}{suffix}"

    def put_bytes(self, data: bytes, suffix: str = "") -> str:
        digest = hashlib.sha256(data).hexdigest()
        path = self._path_for(digest, suffix)
        if path.exists():
            # Content-addressed: an existing path IS the same bytes.
            # Touch it so LRU gc sees the reuse.
            try:
                os.utime(path)
            except OSError:
                pass
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent),
            prefix=f".tmp-{os.getpid()}-{threading.get_ident()}-",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return digest

    def put_json(self, payload: Any, suffix: str = ".json") -> str:
        data = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode()
        return self.put_bytes(data, suffix)

    def find(self, digest: str) -> Optional[Path]:
        """The blob's path (any suffix), or None when absent."""
        shard = self.root / digest[:2]
        if not shard.is_dir():
            return None
        for path in sorted(shard.glob(f"{digest}*")):
            return path
        return None

    def get_bytes(self, digest: str) -> Optional[bytes]:
        path = self.find(digest)
        if path is None:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def get_json(self, digest: str) -> Optional[Any]:
        data = self.get_bytes(digest)
        if data is None:
            return None
        return json.loads(data.decode())

    def __contains__(self, digest: str) -> bool:
        return self.find(digest) is not None

    # -- maintenance -----------------------------------------------------
    def _blob_stats(self) -> List[Tuple[Path, int, int]]:
        stats: List[Tuple[Path, int, int]] = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                stats.append((path, stat.st_size, stat.st_mtime_ns))
        stats.sort(key=lambda item: item[2])
        return stats

    def iter_digests(self) -> Iterator[str]:
        for path, _, _ in self._blob_stats():
            yield path.name.split(".", 1)[0]

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._blob_stats())

    def __len__(self) -> int:
        return len(self._blob_stats())

    def gc(self, max_bytes: int) -> Dict[str, Any]:
        """Evict least-recently-used blobs until ≤ ``max_bytes``."""
        with self._lock:
            stats = self._blob_stats()
            total = sum(size for _, size, _ in stats)
            evicted = 0
            freed = 0
            for path, size, _ in stats:
                if total - freed <= max(0, int(max_bytes)):
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                evicted += 1
                freed += size
            return {
                "evicted": evicted,
                "freed_bytes": freed,
                "kept": len(stats) - evicted,
                "size_bytes": total - freed,
            }
