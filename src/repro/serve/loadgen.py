"""Closed-loop load generator for the serve API (bench + smoke).

``run_load`` fires ``submissions`` sweep submissions at a running
server from ``concurrency`` client threads, waits for every admitted
job to settle, and returns an accounting dict: throughput, p50/p95
submit-to-result latency, admission/rejection counts, and an
invariant check that **no job was lost or duplicated** — every
submitted id appears exactly once in the server's job list, settled.

429 (queue full) responses are retried with backoff rather than
dropped, so the generator measures the server's sustained throughput
under backpressure, not its rejection rate.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.serve.client import ServeAPIError, ServeClient


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def run_load(
    base_url: str,
    submissions: int,
    concurrency: int = 8,
    artifacts: Optional[List[str]] = None,
    seed_base: int = 0,
    distinct_seeds: Optional[int] = None,
    tenants: int = 1,
    wait_timeout: float = 300.0,
) -> Dict[str, Any]:
    """Submit ``submissions`` sweeps and wait for all of them to settle.

    ``distinct_seeds`` caps how many different seeds are used (None =
    every submission unique); a small value makes most submissions
    dedupe into cache hits, which is how the benchmark exercises the
    cache under a byte budget.
    """
    artifact_list = artifacts if artifacts is not None else ["test.echo"]
    lock = threading.Lock()
    job_ids: List[str] = []
    latencies: List[float] = []
    rejected_retries = 0
    errors: List[str] = []
    next_index = [0]

    def _seed_for(index: int) -> int:
        if distinct_seeds is not None and distinct_seeds > 0:
            return seed_base + (index % distinct_seeds)
        return seed_base + index

    def _worker() -> None:
        nonlocal rejected_retries
        client = ServeClient(base_url)
        while True:
            with lock:
                index = next_index[0]
                if index >= submissions:
                    return
                next_index[0] += 1
            tenant = f"tenant-{index % max(1, tenants)}"
            submitted = time.monotonic()
            backoff = 0.01
            while True:
                try:
                    record = client.submit(
                        artifact_list,
                        seed=_seed_for(index),
                        tenant=tenant,
                    )
                    break
                except ServeAPIError as exc:
                    if exc.status == 429:
                        with lock:
                            rejected_retries += 1
                        time.sleep(backoff)
                        backoff = min(backoff * 2, 0.5)
                        continue
                    with lock:
                        errors.append(str(exc))
                    return
            try:
                final = client.wait(record["id"], timeout=wait_timeout)
            except (ServeAPIError, TimeoutError) as exc:
                with lock:
                    errors.append(str(exc))
                return
            latency = time.monotonic() - submitted
            with lock:
                job_ids.append(record["id"])
                latencies.append(latency)
            if final["state"] != "done":
                with lock:
                    errors.append(
                        f"{record['id']} settled {final['state']}: "
                        f"{final.get('error')}"
                    )

    started = time.monotonic()
    threads = [
        threading.Thread(target=_worker, name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    # Invariant: every submitted job id is unique and every one of
    # them is settled on the server — nothing lost, nothing duplicated.
    client = ServeClient(base_url)
    server_jobs = {job["id"]: job for job in client.jobs()}
    lost = [jid for jid in job_ids if jid not in server_jobs]
    unsettled = [
        jid
        for jid in job_ids
        if jid in server_jobs
        and server_jobs[jid]["state"] not in ("done", "failed", "cancelled")
    ]
    duplicated = len(job_ids) - len(set(job_ids))

    latencies.sort()
    return {
        "submissions": submissions,
        "completed": len(job_ids),
        "elapsed_s": round(elapsed, 6),
        "throughput_jobs_per_s": round(
            len(job_ids) / elapsed if elapsed > 0 else 0.0, 3
        ),
        "latency_p50_s": round(_percentile(latencies, 0.50), 6),
        "latency_p95_s": round(_percentile(latencies, 0.95), 6),
        "latency_max_s": round(latencies[-1], 6) if latencies else 0.0,
        "rejected_retries": rejected_retries,
        "lost_jobs": len(lost),
        "duplicated_jobs": duplicated,
        "unsettled_jobs": len(unsettled),
        "errors": errors[:10],
        "error_count": len(errors),
    }
