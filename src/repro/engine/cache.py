"""On-disk result store: repeated sweeps become incremental.

Each completed job is persisted as one JSON file keyed by a stable
SHA-256 of ``(runner, kwargs, seed, scale, code-version tag)``. Values
are normalised through :func:`repro.experiments.export.to_jsonable`
before hashing and before storage, so a cache hit returns exactly what
a fresh (normalised) execution would, byte for byte, across processes
and machines.

The default code-version tag hashes every ``.py`` file under the
``repro`` package: editing any source invalidates prior entries, which
keeps stale results from leaking into regenerated artifacts.

The store is bounded on demand, not on write: :meth:`ResultCache.gc`
evicts least-recently-used entries (by mtime — :meth:`get` touches an
entry on every hit, so recency tracks *use*, not creation) until the
directory fits a byte budget. The quarantine directory never counts
against the budget and is never evicted — corrupt entries are kept for
post-mortems until explicitly cleared. ``python -m repro cache``
exposes both (``ls``, ``gc --max-bytes``), and
:class:`repro.serve.store.BoundedResultCache` enforces the budget
continuously for the long-running job server.

Concurrent writers are safe: :meth:`put` stages each entry under a
PID/thread-unique temp name in the cache directory and ``os.replace``s
it over the target, so two processes (or two threads of the serve
pool) racing to persist the same key both land whole files — last
writer wins, readers never observe a torn entry.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.experiments.export import (
    _MAX_ARRAY_EXPORT,
    NEG_INF_SENTINEL,
    POS_INF_SENTINEL,
    to_jsonable,
)
from repro.engine.shm import array_digest
from repro.engine.spec import JobSpec
from repro.kernels.backend import DEFAULT_BACKEND
from repro.obs.events import EventSink

PathLike = Union[str, Path]

_SENTINEL = object()

#: Marker key for a value stored out-of-line as an ``.npy`` sidecar.
NPY_MARKER = "__npy__"

#: Arrays with at least this many elements go to sidecars rather than
#: inflated JSON lists (a 10k-float list is ~19x the binary size and
#: ~100x the decode cost).
SIDECAR_MIN_ELEMS = 1024


def _array_to_lists(arr: "np.ndarray", decoded: bool) -> Any:
    """One ndarray → the nested lists ``to_jsonable`` would produce.

    ``decoded=False`` yields the strict-JSON form (NaN → ``None``,
    ±inf → sentinel strings) that stored records use; ``decoded=True``
    yields the post-``from_jsonable`` form (±inf back to floats) that
    the engine hands callers. Keeping both paths here is what makes
    sidecar-backed entries type-identical to inline ones.
    """
    if arr.dtype.kind == "f":
        finite = np.isfinite(arr)
        if not finite.all():
            out = arr.astype(object)
            out[np.isnan(arr)] = None
            if not decoded:
                out[np.isposinf(arr)] = POS_INF_SENTINEL
                out[np.isneginf(arr)] = NEG_INF_SENTINEL
            return out.tolist()
    return arr.tolist()

# Memo for default_code_version, keyed per source root on a cheap
# (path, mtime_ns, size) scan rather than process lifetime: a
# long-lived session that edits sources gets a fresh tag on the next
# sweep instead of silently writing cache entries under the stale one.
_CODE_VERSION_MEMO: Dict[str, Tuple[Tuple, str]] = {}


def _source_signature(root: Path) -> Tuple:
    """Stat-level fingerprint of every ``.py`` file under ``root``."""
    signature = []
    for path in sorted(root.rglob("*.py")):
        try:
            stat = path.stat()
        except OSError:
            continue
        signature.append(
            (path.relative_to(root).as_posix(), stat.st_mtime_ns, stat.st_size)
        )
    return tuple(signature)


def default_code_version(root: Optional[PathLike] = None) -> str:
    """A short digest over the ``repro`` package sources (or ``root``).

    Re-hashing ~200 files on every call would be wasteful, so the
    digest is memoised — but on a (path, mtime, size) scan of the
    tree, not for the process lifetime. Editing, adding, or removing
    any module invalidates the memo and yields a new tag.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    signature = _source_signature(root)
    memo = _CODE_VERSION_MEMO.get(str(root))
    if memo is not None and memo[0] == signature:
        return memo[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
    version = digest.hexdigest()[:16]
    _CODE_VERSION_MEMO[str(root)] = (signature, version)
    return version


def clear_code_version_memo() -> None:
    """Drop every memoised code-version tag (tests, forced refresh)."""
    _CODE_VERSION_MEMO.clear()


class ResultCache:
    """A directory of ``<runner>-<key>.json`` result files.

    With an :class:`repro.obs.events.EventSink` attached (``events``,
    usually wired by ``execute``), every hit and store emits a
    ``cache_hit``/``cache_put`` event into the run ledger.

    Corrupt entries — unparsable JSON, or JSON without the expected
    record shape — are *quarantined*: moved into
    ``<root>/quarantine/`` (preserved for post-mortems, with a ``.N``
    suffix on name collisions), warned about, recorded as a
    ``cache_quarantine`` event, and treated as a miss so the job is
    simply recomputed. A merely unreadable entry (permissions, I/O
    error) is left in place and counts as a miss.

    ``faults`` accepts a :class:`repro.faults.FaultPlan` (wired by
    ``execute`` for the duration of a sweep); ``cache_corrupt``
    damages an entry on disk just before it is read and
    ``cache_put_fail`` makes :meth:`put` raise ``ENOSPC``.
    """

    def __init__(
        self, root: PathLike, events: Optional[EventSink] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.events = events
        self.faults: Optional[Any] = None

    def key_for(self, spec: JobSpec, code_version: Optional[str] = None) -> str:
        """Stable content key for one job under one code version."""
        payload = {
            "runner": spec.runner,
            "kwargs": to_jsonable(dict(spec.kwargs)),
            "seed": spec.seed,
            "scale": spec.scale,
            "code_version": code_version or default_code_version(),
        }
        # Non-default backends change numeric results, so they key the
        # entry; the default is deliberately *omitted* (not stamped as
        # "numpy64") to keep every pre-backend cache entry valid.
        if spec.backend is not None and spec.backend != DEFAULT_BACKEND:
            payload["backend"] = spec.backend
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def path_for(self, spec: JobSpec, key: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", spec.runner)
        return self.root / f"{safe}-{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are preserved (not auto-created)."""
        return self.root / "quarantine"

    @property
    def arrays_dir(self) -> Path:
        """Content-addressed ``.npy`` sidecars (not auto-created)."""
        return self.root / "arrays"

    # -- array sidecars --------------------------------------------------
    def _store_array(self, arr: "np.ndarray") -> str:
        """Persist one ndarray as ``arrays/<digest>.npy``; returns digest.

        Content-addressed, so identical arrays across entries share one
        file and a re-put of the same key is a no-op. Written via temp
        file + ``os.replace`` like entries: concurrent writers of the
        same digest both land whole files with identical bytes.
        """
        arr = np.ascontiguousarray(arr)
        digest = array_digest(arr)
        path = self.arrays_dir / f"{digest}.npy"
        if path.exists():
            return digest
        self.arrays_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.arrays_dir),
            prefix=f".tmp-{os.getpid()}-{threading.get_ident()}-",
            suffix=".npy",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, arr, allow_pickle=False)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return digest

    def _load_array(self, desc: Dict[str, Any]) -> "np.ndarray":
        """Load one sidecar and verify it matches its descriptor.

        Raises ``OSError`` (missing/unreadable) or ``ValueError``
        (corrupt ``.npy``, or content drift vs the descriptor) — the
        caller quarantines the referencing entry and misses.
        """
        path = self.arrays_dir / f"{desc['digest']}.npy"
        arr = np.load(path, allow_pickle=False)
        if arr.dtype.str != desc.get("dtype") or list(arr.shape) != list(
            desc.get("shape", [])
        ):
            raise ValueError(
                f"sidecar {desc['digest']}.npy does not match its descriptor"
            )
        return arr

    def encode_value(
        self, value: Any
    ) -> Tuple[Any, Dict[str, "np.ndarray"]]:
        """Normalise a job result, diverting large arrays to sidecars.

        Returns ``(normalised, arrays)``: the strict-JSON record value
        (large ndarrays replaced by ``{NPY_MARKER: {...}}`` descriptors)
        plus a digest→array memo so :meth:`decode_value` on the fresh
        path never re-reads what was just written. Arrays below
        ``SIDECAR_MIN_ELEMS``, above the export cap, or of non-numeric
        dtype decline the hook and take the normal inline path — the
        cap stays enforced so cached and uncached sweeps fail (or not)
        identically. A sidecar write error also declines to inline:
        storage trouble degrades performance, never correctness.
        """
        arrays: Dict[str, np.ndarray] = {}

        def hook(arr: "np.ndarray") -> Optional[Dict[str, Any]]:
            if (
                arr.size < SIDECAR_MIN_ELEMS
                or arr.size > _MAX_ARRAY_EXPORT
                or arr.dtype.kind not in "biuf"
            ):
                return None
            try:
                digest = self._store_array(arr)
            except OSError:
                return None
            contiguous = np.ascontiguousarray(arr)
            arrays[digest] = contiguous
            return {
                NPY_MARKER: {
                    "digest": digest,
                    "dtype": contiguous.dtype.str,
                    "shape": list(contiguous.shape),
                }
            }

        return to_jsonable(value, array_hook=hook), arrays

    def decode_value(
        self,
        value: Any,
        arrays: Optional[Dict[str, "np.ndarray"]] = None,
    ) -> Any:
        """One pass of ``from_jsonable`` + sidecar materialisation.

        The engine's normalised return path: sentinel strings become
        ±inf, sidecar descriptors become the nested lists the inline
        path would have produced (NaN → ``None``, infinities as
        floats). ``arrays`` is the fresh-put memo; descriptors not in
        it fall back to disk.
        """
        if isinstance(value, str):
            if value == POS_INF_SENTINEL:
                return float("inf")
            if value == NEG_INF_SENTINEL:
                return float("-inf")
            return value
        if isinstance(value, dict):
            if len(value) == 1 and NPY_MARKER in value:
                desc = value[NPY_MARKER]
                arr = None
                if arrays is not None:
                    arr = arrays.get(desc.get("digest"))
                if arr is None:
                    arr = self._load_array(desc)
                return _array_to_lists(arr, decoded=True)
            return {
                key: self.decode_value(item, arrays)
                for key, item in value.items()
            }
        if isinstance(value, list):
            return [self.decode_value(item, arrays) for item in value]
        return value

    def _resolve_sidecars(self, value: Any) -> Any:
        """Descriptors → jsonable lists (the pre-sidecar ``get`` shape).

        Hits must return exactly what an inline entry stores, so the
        pool's existing ``from_jsonable`` pass stays the single decode
        point regardless of how the entry was persisted.
        """
        if isinstance(value, dict):
            if len(value) == 1 and NPY_MARKER in value:
                return _array_to_lists(
                    self._load_array(value[NPY_MARKER]), decoded=False
                )
            return {
                key: self._resolve_sidecars(item)
                for key, item in value.items()
            }
        if isinstance(value, list):
            return [self._resolve_sidecars(item) for item in value]
        return value

    def _purge_bad_sidecars(self, value: Any) -> None:
        """Unlink every sidecar referenced by ``value`` that fails to load."""
        if isinstance(value, dict):
            if len(value) == 1 and NPY_MARKER in value:
                desc = value[NPY_MARKER]
                try:
                    self._load_array(desc)
                except (OSError, ValueError, KeyError, TypeError):
                    try:
                        (self.arrays_dir / f"{desc['digest']}.npy").unlink()
                    except (OSError, KeyError, TypeError):
                        pass
                return
            for item in value.values():
                self._purge_bad_sidecars(item)
        elif isinstance(value, list):
            for item in value:
                self._purge_bad_sidecars(item)

    def _quarantine(self, path: Path, spec: JobSpec, reason: str) -> None:
        """Move a corrupt entry aside (for post-mortems) and warn."""
        target_dir = self.quarantine_dir
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            n = 0
            while target.exists():
                n += 1
                target = target_dir / f"{path.name}.{n}"
            os.replace(str(path), str(target))
        except OSError:
            # Quarantine is best-effort: an unmovable corrupt entry
            # still counts as a miss and gets overwritten by the put.
            target = path
        warnings.warn(
            f"quarantined corrupt cache entry {path.name} ({reason}); "
            "the job will be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )
        if self.events is not None:
            self.events.emit(
                "cache_quarantine",
                index=spec.index,
                runner=spec.runner,
                label=spec.display,
                entry=path.name,
                quarantined_to=str(target),
                reason=reason,
            )

    def get(self, spec: JobSpec, key: str) -> Tuple[bool, Any]:
        """(hit, value). Corrupt entries are quarantined and miss."""
        path = self.path_for(spec, key)
        if self.faults is not None and path.exists():
            fault = self.faults.decide(
                "cache_corrupt", index=spec.index, runner=spec.runner
            )
            if fault is not None:
                from repro.faults.corrupt import truncate_tail

                truncate_tail(path)
        try:
            with path.open() as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return False, None
        except OSError:
            # Unreadable but maybe intact (permissions, I/O error):
            # leave it alone, recompute this time.
            return False, None
        except ValueError as exc:
            self._quarantine(path, spec, f"invalid JSON: {exc}")
            return False, None
        if not isinstance(record, dict) or "value" not in record:
            self._quarantine(path, spec, "not a cache record")
            return False, None
        try:
            value = self._resolve_sidecars(record["value"])
        except (OSError, ValueError) as exc:
            # A record whose sidecar is gone or corrupt is itself
            # unusable: quarantine the entry and drop the bad sidecar
            # files too — content-addressed puts skip existing paths,
            # so a poisoned sidecar left in place would survive the
            # recompute and fail every future hit.
            self._quarantine(path, spec, f"unusable array sidecar: {exc}")
            self._purge_bad_sidecars(record["value"])
            return False, None
        try:
            # Touch on hit: gc evicts by mtime, so recency must track
            # *use* — a daily-hit entry outlives a week-old write-once.
            os.utime(path)
        except OSError:
            pass
        if self.events is not None:
            self.events.emit(
                "cache_hit",
                index=spec.index,
                runner=spec.runner,
                label=spec.display,
                key=key,
            )
        return True, value

    def put(self, spec: JobSpec, key: str, value: Any) -> Path:
        """Atomically persist one normalised job result.

        Written to a temp file in the same directory, fsync'd, then
        ``os.replace``d over the target, so a crash mid-write can
        never leave a half-written entry under the real name — readers
        see the old entry, the new entry, or nothing.
        """
        path = self.path_for(spec, key)
        if self.faults is not None:
            fault = self.faults.decide(
                "cache_put_fail", index=spec.index, runner=spec.runner
            )
            if fault is not None:
                raise OSError(
                    errno.ENOSPC, "injected cache put failure (disk full)"
                )
        record = {
            "runner": spec.runner,
            "label": spec.display,
            "seed": spec.seed,
            "scale": spec.scale,
            "key": key,
            "value": value,
        }
        # mkstemp alone is collision-free, but a PID/thread-unique
        # prefix keeps concurrent writers' staging files attributable
        # (which process left this behind?) and guarantees two racing
        # put()s of the same key can never share a staging name even on
        # filesystems with weak O_EXCL semantics.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root),
            prefix=f".tmp-{os.getpid()}-{threading.get_ident()}-",
            suffix=".json",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, allow_nan=False)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.events is not None:
            self.events.emit(
                "cache_put",
                index=spec.index,
                runner=spec.runner,
                label=spec.display,
                key=key,
            )
        return path

    # -- maintenance -----------------------------------------------------
    def entries(self) -> Dict[str, Path]:
        """Committed cache records only, keyed by filename stem.

        ``path_for`` always ends a record name with the 24-hex content
        key, which is what distinguishes records from other residents
        of the directory (``last-sweep.manifest.json``, quarantine,
        ``.tmp-*`` staging files) — a manifest must never be counted
        against the byte budget or LRU-evicted as if it were a result.
        """
        return {
            path.stem: path
            for path in sorted(self.root.glob("*-*.json"))
            if re.fullmatch(r"[0-9a-f]{24}", path.stem.rsplit("-", 1)[-1])
        }

    def __len__(self) -> int:
        return len(self.entries())

    def entry_stats(self) -> List[Tuple[Path, int, int]]:
        """``(path, size_bytes, mtime_ns)`` per entry, LRU-first.

        Quarantined entries and in-flight ``.tmp-*`` staging files are
        excluded — only real, committed cache records count against a
        byte budget. Entries that vanish mid-scan (a concurrent gc or
        clear) are simply skipped.
        """
        stats: List[Tuple[Path, int, int]] = []
        for path in self.entries().values():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((path, stat.st_size, stat.st_mtime_ns))
        stats.sort(key=lambda item: item[2])
        return stats

    def size_bytes(self) -> int:
        """Total committed entry bytes (quarantine excluded)."""
        return sum(size for _, size, _ in self.entry_stats())

    def gc(self, max_bytes: int) -> Dict[str, Any]:
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        Returns a summary dict: ``evicted``/``freed_bytes`` for what
        was removed, ``kept``/``size_bytes`` for what remains. Each
        eviction emits a ``cache_evict`` event when a sink is attached.
        An entry another process removes first just doesn't count as
        freed here; the budget still ends up respected.
        """
        max_bytes = max(0, int(max_bytes))
        stats = self.entry_stats()
        total = sum(size for _, size, _ in stats)
        evicted = 0
        freed = 0
        for path, size, _ in stats:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
            freed += size
            if self.events is not None:
                self.events.emit(
                    "cache_evict",
                    entry=path.name,
                    bytes=size,
                    reason=f"lru (max_bytes={max_bytes})",
                )
        return {
            "evicted": evicted,
            "freed_bytes": freed,
            "kept": len(stats) - evicted,
            "size_bytes": total - freed,
            "arrays_removed": self._gc_orphan_arrays(),
        }

    def _referenced_digests(self) -> set:
        """Digests referenced by any surviving cache entry."""

        def _walk(node: Any, into: set) -> None:
            if isinstance(node, dict):
                if len(node) == 1 and NPY_MARKER in node:
                    desc = node[NPY_MARKER]
                    if isinstance(desc, dict) and "digest" in desc:
                        into.add(str(desc["digest"]))
                    return
                for item in node.values():
                    _walk(item, into)
            elif isinstance(node, list):
                for item in node:
                    _walk(item, into)

        referenced: set = set()
        for path in self.entries().values():
            try:
                with path.open() as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                _walk(record.get("value"), referenced)
        return referenced

    def _gc_orphan_arrays(self) -> int:
        """Remove sidecars no surviving entry references; returns count.

        Only runs when the arrays dir actually holds files — the
        common no-sidecar cache pays nothing. A concurrent put can
        momentarily orphan its own sidecar (array written, entry not
        yet replaced); that put simply rewrites it, content-addressing
        makes the race idempotent.
        """
        arrays_dir = self.arrays_dir
        try:
            sidecars = [p for p in arrays_dir.iterdir() if p.suffix == ".npy"]
        except OSError:
            return 0
        if not sidecars:
            return 0
        referenced = self._referenced_digests()
        removed = 0
        for path in sidecars:
            if path.stem in referenced:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def clear(self) -> int:
        """Delete every cached entry (and all sidecars); returns the
        number of entries removed."""
        removed = 0
        for path in self.entries().values():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            for sidecar in self.arrays_dir.iterdir():
                try:
                    sidecar.unlink()
                except OSError:
                    pass
        except OSError:
            pass
        return removed
