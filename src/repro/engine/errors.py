"""Engine exception taxonomy.

The pool distinguishes *transient* failures (worth a bounded
retry-with-backoff: timeouts, connection hiccups, anything a runner
raises as :class:`TransientJobError`) from *permanent* ones (logic
errors that retrying cannot fix). Both end as a structured
``JobFailure`` record instead of aborting the sweep.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for scenario-engine errors."""


class UnknownRunnerError(EngineError, KeyError):
    """A job named a runner that is not registered and not importable."""


class TransientJobError(EngineError):
    """A failure the submitting runner believes is worth retrying."""


class JobTimeoutError(TransientJobError):
    """A job exceeded its per-job wall-clock budget."""


class WorkerCrashError(EngineError):
    """A worker process died without delivering its job's result.

    Raised nowhere in worker code (a real crash raises nothing — the
    process is simply gone); the pool synthesises it parent-side when a
    worker exits without sending a result record, and the serial
    executor uses it to *simulate* an injected crash without killing
    the orchestrating process. Permanent: the job is not retried, the
    sweep keeps going.
    """


#: Exception types the pool retries (bounded, with backoff). Everything
#: else fails fast on the first attempt.
TRANSIENT_ERRORS = (TransientJobError, ConnectionError, OSError)
