"""Engine exception taxonomy.

The pool distinguishes *transient* failures (worth a bounded
retry-with-backoff: timeouts, connection hiccups, anything a runner
raises as :class:`TransientJobError`) from *permanent* ones (logic
errors that retrying cannot fix). Both end as a structured
``JobFailure`` record instead of aborting the sweep.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for scenario-engine errors."""


class UnknownRunnerError(EngineError, KeyError):
    """A job named a runner that is not registered and not importable."""


class TransientJobError(EngineError):
    """A failure the submitting runner believes is worth retrying."""


class JobTimeoutError(TransientJobError):
    """A job exceeded its per-job wall-clock budget."""


#: Exception types the pool retries (bounded, with backoff). Everything
#: else fails fast on the first attempt.
TRANSIENT_ERRORS = (TransientJobError, ConnectionError, OSError)
