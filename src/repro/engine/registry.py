"""Runner registry: every dispatchable job body, addressable by name.

Jobs cross process boundaries as *names*, not callables, so worker
processes resolve the body locally by importing this module. Three
kinds of entries exist:

* ``artifact`` — one per paper table/figure (``fig2`` … ``table9``),
  wrapping the :mod:`repro.experiments` runners with uniform
  ``(scale, seed)`` handling. These are what the CLI lists and sweeps.
* ``campaign`` — per-setting inner-loop bodies that
  :class:`repro.core.campaign.Campaign` fans out through the pool.
* ``test`` — deterministic sleepy/flaky/failing runners from
  :mod:`repro.engine.testing` used by the test-suite and for failure
  injection (``python -m repro sweep fig2 test.fail``).

Entries may be *lazy* (a ``"module:attr"`` dotted target) so
registering them costs nothing until first dispatch, and any
module-level function is dispatchable by dotted path without prior
registration.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro import experiments as ex
from repro.engine.errors import UnknownRunnerError
from repro.engine.spec import spawn_seeds


@dataclass(frozen=True)
class RunnerEntry:
    """One registered runner: a callable or a lazy ``module:attr`` path."""

    name: str
    target: Union[Callable, str]
    description: str = ""
    kind: str = "runner"

    def resolve(self) -> Callable:
        if callable(self.target):
            return self.target
        return _import_target(self.target)


_REGISTRY: Dict[str, RunnerEntry] = {}


def _import_target(target: str) -> Callable:
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise UnknownRunnerError(
            f"dotted runner target must look like 'package.module:function', got {target!r}"
        )
    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise UnknownRunnerError(f"{target!r} does not name a callable")
    return fn


def register(
    name: str,
    target: Union[Callable, str],
    *,
    description: str = "",
    kind: str = "runner",
    overwrite: bool = False,
) -> None:
    """Register a runner under ``name`` (callable or ``module:attr``)."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"runner {name!r} is already registered")
    _REGISTRY[name] = RunnerEntry(
        name=name, target=target, description=description, kind=kind
    )


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_entry(name: str) -> RunnerEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownRunnerError(
            f"unknown runner {name!r}; see repro.engine.registry.available()"
        ) from None


def resolve(name: str) -> Callable:
    """Name → callable; falls back to ``module:attr`` import syntax."""
    if name in _REGISTRY:
        return _REGISTRY[name].resolve()
    if ":" in name:
        return _import_target(name)
    raise UnknownRunnerError(
        f"unknown runner {name!r}; register it or use 'module:function' syntax"
    )


def available(kind: Optional[str] = None) -> List[str]:
    """Sorted registered names, optionally filtered by entry kind."""
    return sorted(
        name for name, entry in _REGISTRY.items() if kind in (None, entry.kind)
    )


def describe(name: str) -> str:
    return get_entry(name).description


def _accepted_params(fn: Callable) -> Optional[set]:
    """Keyword names ``fn`` accepts, or None if it takes ``**kwargs``."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return None
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return None
    return {
        name
        for name, p in params.items()
        if p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }


def call(
    name: str,
    kwargs: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
) -> Any:
    """Dispatch one job body.

    ``seed`` and ``scale`` are injected only when the runner's
    signature accepts them (explicit ``kwargs`` entries win), so
    seed-less runners like ``table2`` stay callable from seeded sweeps.
    """
    fn = resolve(name)
    merged = dict(kwargs or {})
    accepted = _accepted_params(fn)
    for key, value in (("seed", seed), ("scale", scale)):
        if value is None or key in merged:
            continue
        if accepted is None or key in accepted:
            merged[key] = value
    return fn(**merged)


# ---------------------------------------------------------------------------
# Artifact runners (one per paper table/figure), uniform (scale, seed).
# ---------------------------------------------------------------------------

def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _seed_kw(seed: Optional[int], offset: int = 0) -> Dict[str, int]:
    """A ``seed=`` kwarg when one was requested, else runner defaults."""
    return {} if seed is None else {"seed": int(seed) + offset}


def _sub_seeds(seed: Optional[int], n: int) -> List[Optional[int]]:
    """Independent child seeds for composite artifacts."""
    return spawn_seeds(seed, n)


def artifact_table1(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_table1_campaign(
        speedtest_repetitions=_scaled(3, scale),
        walking_traces_per_setting=_scaled(2, scale),
        **_seed_kw(seed),
    )


def artifact_fig2(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_latency_vs_distance(
        n_servers=_scaled(20, scale, 3), **_seed_kw(seed)
    )


def artifact_fig3(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_throughput_vs_distance(
        n_servers=_scaled(10, scale, 2),
        repetitions=_scaled(8, scale, 2),
        **_seed_kw(seed),
    )


def artifact_fig6(scale: float = 1.0, seed: Optional[int] = None):
    sa_seed, nsa_seed = _sub_seeds(seed, 2)
    common = dict(n_servers=_scaled(8, scale, 2), repetitions=_scaled(6, scale, 2))
    return {
        "sa": ex.run_throughput_vs_distance(
            network_key="tmobile-sa-lowband", **common, **_seed_kw(sa_seed)
        ),
        "nsa": ex.run_throughput_vs_distance(
            network_key="tmobile-nsa-lowband", **common, **_seed_kw(nsa_seed)
        ),
    }


def artifact_fig8(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_azure_transport(**_seed_kw(seed))


def artifact_fig9(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_handoff_drive(**_seed_kw(seed))


def artifact_fig10(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_rrc_inference(**_seed_kw(seed))


def artifact_table2(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_tail_power()


def artifact_fig11(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_throughput_power(**_seed_kw(seed))


def artifact_fig12(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_energy_efficiency(**_seed_kw(seed))


def artifact_fig13(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_walking_power(**_seed_kw(seed))


def artifact_fig15(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_power_models(**_seed_kw(seed))


def artifact_table9(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_software_monitor(**_seed_kw(seed))


def artifact_fig17(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_abr_comparison(
        n_traces=_scaled(20, scale, 4), n_chunks=50, duration_s=260, **_seed_kw(seed)
    )


def artifact_fig18(scale: float = 1.0, seed: Optional[int] = None):
    s_pred, s_chunk, s_iface = _sub_seeds(seed, 3)
    return {
        "predictors": ex.run_video_predictors(
            n_traces=_scaled(14, scale, 4), **_seed_kw(s_pred)
        ),
        "chunk_lengths": ex.run_chunk_lengths(
            n_traces=_scaled(14, scale, 4), **_seed_kw(s_chunk)
        ),
        "interface_selection": ex.run_video_interface_selection(
            n_pairs=_scaled(16, scale, 4), **_seed_kw(s_iface)
        ),
    }


def artifact_live(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_live_streaming(
        n_traces=_scaled(12, scale, 3), **_seed_kw(seed)
    )


def artifact_energy_abr(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_energy_abr(n_traces=_scaled(12, scale, 3), **_seed_kw(seed))


def artifact_fig19(scale: float = 1.0, seed: Optional[int] = None):
    result = ex.run_web_factors(n_sites=_scaled(600, scale, 50), **_seed_kw(seed))
    result.pop("dataset", None)  # raw arrays are bulky; keep the summaries
    result.pop("cdfs", None)
    return result


def artifact_table6(scale: float = 1.0, seed: Optional[int] = None):
    result = ex.run_web_selection(n_sites=_scaled(600, scale, 50), **_seed_kw(seed))
    result.pop("reports", None)
    return result


def artifact_fig23(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_carrier_aggregation(**_seed_kw(seed))


def artifact_fig24(scale: float = 1.0, seed: Optional[int] = None):
    return ex.run_server_survey(**_seed_kw(seed))


_ARTIFACTS = {
    "table1": (artifact_table1, "dataset statistics"),
    "fig2": (artifact_fig2, "RTT vs UE-server distance (also fig1/fig5)"),
    "fig3": (artifact_fig3, "Verizon mmWave DL/UL vs distance (also fig4)"),
    "fig6": (artifact_fig6, "T-Mobile SA vs NSA throughput (also fig7)"),
    "fig8": (artifact_fig8, "Azure transport settings"),
    "fig9": (artifact_fig9, "handoffs while driving"),
    "fig10": (artifact_fig10, "RRC-Probe sweeps (also fig25)"),
    "table2": (artifact_table2, "tail/switch power"),
    "fig11": (artifact_fig11, "throughput vs power (also fig26, table8)"),
    "fig12": (artifact_fig12, "energy efficiency (also fig27)"),
    "fig13": (artifact_fig13, "power-RSRP-throughput walking data (also fig14)"),
    "fig15": (artifact_fig15, "power-model MAPE comparison"),
    "table9": (artifact_table9, "software monitor benchmark (also table3, fig16)"),
    "fig17": (artifact_fig17, "seven ABRs on 5G vs 4G"),
    "fig18": (artifact_fig18, "predictors / chunk length / interface selection (also table4)"),
    "live": (artifact_live, "LL-DASH live QoE: LoL+/L2A/Stallion over mmWave walks"),
    "energy_abr": (artifact_energy_abr, "energy-aware ABR energy/QoE trade-off (DTR + RRC)"),
    "fig19": (artifact_fig19, "web PLT & energy factors (also fig20, fig21)"),
    "table6": (artifact_table6, "DT radio interface selection (also fig22)"),
    "fig23": (artifact_fig23, "4CC vs 8CC carrier aggregation"),
    "fig24": (artifact_fig24, "Minnesota server survey"),
}

for _name, (_fn, _desc) in _ARTIFACTS.items():
    register(_name, _fn, description=_desc, kind="artifact")

# Fleet sweeps (lazy: repro.fleet imports the engine's JobSpec, not vice versa).
register(
    "fleet",
    "repro.fleet.sweep:artifact_fleet",
    description="city-scale fleet sweep summary (streaming reducers)",
    kind="artifact",
)
register(
    "fleet.shard",
    "repro.fleet.shard:run_shard_job",
    description="one fleet shard: UEs [start, stop) folded into reducer partials",
    kind="fleet",
)

# Campaign inner-loop bodies (lazy: Campaign imports the engine, not vice versa).
register(
    "campaign.speedtest-setting",
    "repro.core.campaign:speedtest_setting_job",
    description="Speedtest phase for one (network, device) setting",
    kind="campaign",
)
register(
    "campaign.walking-setting",
    "repro.core.campaign:walking_setting_job",
    description="Walking-trace phase for one (network, device) setting",
    kind="campaign",
)

# Deterministic test runners (failure injection, scaling benchmarks).
register(
    "test.sleep",
    "repro.engine.testing:sleepy_runner",
    description="sleeps then echoes (scaling benchmarks)",
    kind="test",
)
register(
    "test.flaky",
    "repro.engine.testing:flaky_runner",
    description="fails transiently N times, then succeeds",
    kind="test",
)
register(
    "test.fail",
    "repro.engine.testing:failing_runner",
    description="always fails (failure-path injection)",
    kind="test",
)
register(
    "test.echo",
    "repro.engine.testing:echo_runner",
    description="echoes its kwargs and injected seed",
    kind="test",
)
register(
    "test.crash",
    "repro.engine.testing:crashing_runner",
    description="kills its worker process outright (crash recovery)",
    kind="test",
)
register(
    "test.hang",
    "repro.engine.testing:hanging_runner",
    description="hangs ignoring SIGALRM (watchdog exercises)",
    kind="test",
)
register(
    "test.array",
    "repro.engine.testing:array_runner",
    description="returns a large seeded ndarray (shm/sidecar exercises)",
    kind="test",
)
