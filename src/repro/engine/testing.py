"""Deterministic runners for exercising the engine itself.

Registered as ``test.sleep`` / ``test.flaky`` / ``test.fail`` /
``test.echo``; being module-level functions they resolve by name in
worker processes regardless of the multiprocessing start method.
``flaky_runner`` keeps its attempt count in a caller-supplied state
file so retry behaviour is observable across processes.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from repro.engine.errors import TransientJobError


def sleepy_runner(
    duration_s: float = 0.2, value: Any = 0, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Sleep for ``duration_s`` then echo — a pure wall-clock load."""
    time.sleep(float(duration_s))
    return {"value": value, "seed": seed, "duration_s": float(duration_s)}


def flaky_runner(
    state_file: str,
    fail_times: int = 2,
    value: Any = "ok",
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Raise :class:`TransientJobError` on the first ``fail_times`` calls.

    The per-job attempt counter lives in ``state_file`` (give each job
    its own file), so the failure schedule survives process boundaries.
    """
    try:
        with open(state_file) as handle:
            count = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        count = 0
    count += 1
    tmp = f"{state_file}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(str(count))
    os.replace(tmp, state_file)
    if count <= int(fail_times):
        raise TransientJobError(
            f"injected transient failure {count}/{fail_times}"
        )
    return {"value": value, "attempts_used": count, "seed": seed}


def failing_runner(
    message: str = "injected permanent failure", seed: Optional[int] = None
) -> None:
    """Always raise — exercises the sweep's graceful-degradation path."""
    raise RuntimeError(message)


def echo_runner(seed: Optional[int] = None, **kwargs: Any) -> Dict[str, Any]:
    """Return the injected seed plus whatever kwargs were passed."""
    out = dict(kwargs)
    out["seed"] = seed
    return out
