"""Deterministic runners for exercising the engine itself.

Registered as ``test.sleep`` / ``test.flaky`` / ``test.fail`` /
``test.echo`` / ``test.crash`` / ``test.hang``; being module-level
functions they resolve by name in worker processes regardless of the
multiprocessing start method. ``flaky_runner`` keeps its attempt count
in a caller-supplied state file so retry behaviour is observable
across processes.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Optional

import multiprocessing

from repro.engine.errors import TransientJobError, WorkerCrashError


def sleepy_runner(
    duration_s: float = 0.2, value: Any = 0, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Sleep for ``duration_s`` then echo — a pure wall-clock load."""
    time.sleep(float(duration_s))
    return {"value": value, "seed": seed, "duration_s": float(duration_s)}


def flaky_runner(
    state_file: str,
    fail_times: int = 2,
    value: Any = "ok",
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Raise :class:`TransientJobError` on the first ``fail_times`` calls.

    The per-job attempt counter lives in ``state_file`` (give each job
    its own file), so the failure schedule survives process boundaries.
    """
    try:
        with open(state_file) as handle:
            count = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        count = 0
    count += 1
    tmp = f"{state_file}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(str(count))
    os.replace(tmp, state_file)
    if count <= int(fail_times):
        raise TransientJobError(
            f"injected transient failure {count}/{fail_times}"
        )
    return {"value": value, "attempts_used": count, "seed": seed}


def failing_runner(
    message: str = "injected permanent failure", seed: Optional[int] = None
) -> None:
    """Always raise — exercises the sweep's graceful-degradation path."""
    raise RuntimeError(message)


def echo_runner(seed: Optional[int] = None, **kwargs: Any) -> Dict[str, Any]:
    """Return the injected seed plus whatever kwargs were passed."""
    out = dict(kwargs)
    out["seed"] = seed
    return out


def crashing_runner(
    exit_code: int = 70, seed: Optional[int] = None
) -> None:
    """Die without a trace, like a segfault or OOM kill.

    In a worker process the whole process exits via ``os._exit`` (no
    result record, no cleanup); in the parent (serial executor) it
    raises :class:`WorkerCrashError` instead, so a serial sweep sees
    the same failure type without losing its own process.
    """
    if multiprocessing.current_process().daemon:
        os._exit(int(exit_code))
    raise WorkerCrashError(
        "crashing_runner called in the parent process "
        "(simulated crash: serial executor)"
    )


def hanging_runner(
    hang_s: float = 3600.0, seed: Optional[int] = None
) -> None:
    """Hang in a way the worker-side SIGALRM timeout cannot reclaim.

    Ignores SIGALRM (a stand-in for a hang inside C code, where no
    Python signal handler ever runs) and sleeps in a deadline loop, so
    only the parent watchdog can end the job. For an *interruptible*
    hang, use the ``hang`` fault of :mod:`repro.faults` instead.
    """
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
    deadline = time.monotonic() + float(hang_s)
    while time.monotonic() < deadline:
        time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))


def array_runner(
    n: int = 50_000,
    dtype: str = "float64",
    with_nan: bool = False,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Return a deterministic large ndarray (shm / sidecar exercises).

    The payload is seeded and sized to cross the zero-copy transport
    and cache-sidecar thresholds, with optional NaN/±inf contamination
    so type-parity through every encode path stays observable.
    """
    import numpy as np

    rng = np.random.default_rng(0 if seed is None else int(seed))
    values = rng.standard_normal(int(n)).astype(dtype)
    if with_nan and values.size >= 4:
        values[0] = np.nan
        values[1] = np.inf
        values[2] = -np.inf
    return {
        "values": values,
        "n": int(n),
        "checksum": float(np.nansum(values[np.isfinite(values)])),
        "seed": seed,
    }


def interrupt_runner(seed: Optional[int] = None) -> None:
    """Raise ``KeyboardInterrupt`` mid-job (Ctrl-C propagation tests).

    Deliberately *not* registered: dispatch it by dotted path
    (``repro.engine.testing:interrupt_runner``) so casual sweeps never
    trip over it.
    """
    raise KeyboardInterrupt
