"""Zero-copy ndarray transport over shared-memory ring buffers.

The batch-lease executor (:mod:`repro.engine.pool`) streams one result
record per job back through a pipe. Pickling a multi-megabyte ndarray
through that pipe costs two copies and a serialisation pass; this
module ships the *bytes* of large arrays through one
``multiprocessing.shared_memory`` segment per worker instead, leaving
only a tiny descriptor in the pickled record.

Design:

* :class:`ShmRing` — a single-producer/single-consumer byte ring. The
  first 16 bytes of the segment hold two little-endian ``uint64``
  cursors (``write_pos``, ``read_pos``), both *monotonic* byte counts;
  ``pos % capacity`` locates data, and ``write_pos - read_pos`` is the
  occupancy. Payloads are contiguous: a write that would straddle the
  wrap point pads to the ring start first. One writer (the worker) and
  one reader (the parent) never write the same cursor, so plain
  aligned stores are race-free on every platform CPython runs on.
* :func:`encode_arrays` / :func:`decode_arrays` — recursive descriptor
  substitution over job kwargs/results. Numeric ndarrays at or above
  ``min_bytes`` are written into the ring and replaced with a
  ``{"__shm.ndarray__": {...}}`` marker; everything else passes
  through untouched (and still rides the pipe pickled). A full ring is
  *never* an error: the array simply stays inline — shared memory here
  is an optimisation with a correctness-preserving fallback.

Ownership is explicit and crash-proof: the **parent** creates every
segment, is the only process that ever unlinks it, and does so in a
``finally`` — a worker crash (or an aborted sweep) cannot leak
segments, which the chaos tests assert via :func:`active_segments`.
Workers only attach and ``close()``.
"""

from __future__ import annotations

import hashlib
import struct
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

#: Marker key for an array shipped out-of-band through the ring.
SHM_MARKER = "__shm.ndarray__"

#: Default per-worker ring capacity (payload bytes, header excluded).
DEFAULT_RING_BYTES = 8 * 1024 * 1024

#: Arrays smaller than this ride the pipe: below ~64 KiB the pickle
#: copy is cheaper than the descriptor indirection.
DEFAULT_MIN_BYTES = 64 * 1024

#: How long a writer waits for the reader to drain a full ring before
#: falling back to inline transport. The parent consumes each record's
#: arrays as soon as it lands, so waits are short in practice.
DEFAULT_WRITE_TIMEOUT_S = 10.0

_HEADER = 16
_CURSOR = struct.Struct("<Q")

#: Names of live segments created by this process (the owner side).
_LIVE_SEGMENTS: Set[str] = set()


def active_segments() -> Tuple[str, ...]:
    """Names of segments this process created and has not unlinked.

    The leak oracle for tests: after any ``execute()`` — clean,
    crashing, or aborted — this must be empty again.
    """
    return tuple(sorted(_LIVE_SEGMENTS))


class ShmRing:
    """SPSC byte ring over one shared-memory segment.

    Create in the parent (``owner=True``), attach by name in the
    worker. ``capacity`` is payload bytes; the segment is 16 bytes
    larger for the cursor header.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self.owner = owner
        self.capacity = shm.size - _HEADER
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        capacity = max(1, int(capacity))
        shm = shared_memory.SharedMemory(create=True, size=capacity + _HEADER)
        shm.buf[:_HEADER] = b"\x00" * _HEADER
        _LIVE_SEGMENTS.add(shm.name)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track= parameter
            shm = shared_memory.SharedMemory(name=name)
            # Pre-3.13 registers with the resource tracker on *attach*
            # too, and a spawn-context child's own tracker would unlink
            # the parent-owned segment at child exit. Deregister — but
            # only when this child has its own tracker: under fork the
            # tracker process (and its name cache, a set) is shared, so
            # the attach-side registration was a no-op and deregistering
            # would strip the parent's own entry out from under its
            # eventual unlink.
            import multiprocessing as _mp

            if _mp.get_start_method(allow_none=True) != "fork":
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Free the segment (owner only); idempotent."""
        name = self._shm.name
        self.close()
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        _LIVE_SEGMENTS.discard(name)

    # -- cursors ---------------------------------------------------------
    def _get(self, offset: int) -> int:
        return _CURSOR.unpack_from(self._shm.buf, offset)[0]

    def _set(self, offset: int, value: int) -> None:
        _CURSOR.pack_into(self._shm.buf, offset, value)

    @property
    def write_pos(self) -> int:
        return self._get(0)

    @property
    def read_pos(self) -> int:
        return self._get(8)

    def pending_bytes(self) -> int:
        """Bytes written but not yet consumed."""
        return self.write_pos - self.read_pos

    # -- data path -------------------------------------------------------
    def write(
        self, data: memoryview, timeout_s: float = DEFAULT_WRITE_TIMEOUT_S
    ) -> Optional[int]:
        """Copy ``data`` into the ring; returns its absolute position.

        Returns ``None`` (caller falls back to inline transport) when
        the payload exceeds the capacity outright or the reader does
        not free enough space within ``timeout_s``.
        """
        n = data.nbytes
        cap = self.capacity
        if n > cap:
            return None
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            w = self.write_pos
            r = self.read_pos
            off = w % cap
            # Payloads are contiguous: pad to the ring start rather
            # than straddle the wrap point.
            pad = cap - off if off + n > cap else 0
            if n + pad <= cap - (w - r):
                pos = w + pad
                start = pos % cap
                self._shm.buf[_HEADER + start : _HEADER + start + n] = data
                self._set(0, pos + n)
                return pos
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.0005)

    def read(self, pos: int, nbytes: int) -> bytearray:
        """Copy ``nbytes`` at absolute position ``pos`` out of the ring.

        Returns a ``bytearray`` so arrays built over it are writable
        (decoded kwargs must behave like freshly constructed inputs).
        """
        start = pos % self.capacity
        out = bytearray(nbytes)
        out[:] = self._shm.buf[_HEADER + start : _HEADER + start + nbytes]
        return out

    def consume(self, pos: int, nbytes: int) -> None:
        """Release everything up to and including ``[pos, pos+nbytes)``."""
        end = pos + nbytes
        if end > self.read_pos:
            self._set(8, end)


def _shippable(value: Any, min_bytes: int) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in "biuf"
        and value.nbytes >= min_bytes
    )


def contains_large_array(value: Any, min_bytes: int = DEFAULT_MIN_BYTES) -> bool:
    """Whether ``value`` holds any ndarray worth shipping out-of-band."""
    if _shippable(value, min_bytes):
        return True
    if isinstance(value, dict):
        return any(contains_large_array(v, min_bytes) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(contains_large_array(v, min_bytes) for v in value)
    return False


def encode_arrays(
    value: Any,
    ring: ShmRing,
    min_bytes: int = DEFAULT_MIN_BYTES,
    timeout_s: float = DEFAULT_WRITE_TIMEOUT_S,
) -> Tuple[Any, int]:
    """Replace large numeric ndarrays in ``value`` with ring descriptors.

    Returns ``(encoded, shipped_count)``. Traversal order is
    deterministic (dict insertion order, list order), which is what
    lets the decoder consume ring bytes strictly in write order.
    """
    shipped = 0

    def _walk(node: Any) -> Any:
        nonlocal shipped
        if _shippable(node, min_bytes):
            arr = np.ascontiguousarray(node)
            pos = ring.write(memoryview(arr).cast("B"), timeout_s=timeout_s)
            if pos is None:
                return node  # ring full/too small: stay inline
            shipped += 1
            return {
                SHM_MARKER: {
                    "pos": pos,
                    "nbytes": arr.nbytes,
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                }
            }
        if isinstance(node, dict):
            if len(node) == 1 and SHM_MARKER in node:
                return node  # never double-encode a marker
            return {k: _walk(v) for k, v in node.items()}
        if isinstance(node, list):
            return [_walk(v) for v in node]
        if isinstance(node, tuple):
            return tuple(_walk(v) for v in node)
        return node

    return _walk(value), shipped


def decode_arrays(value: Any, ring: ShmRing) -> Any:
    """Rebuild ndarrays from ring descriptors (inverse of encode).

    Must be called on whole records in the order they were produced:
    each descriptor's bytes are consumed (released back to the writer)
    as it is decoded.
    """
    if isinstance(value, dict):
        if len(value) == 1 and SHM_MARKER in value:
            desc = value[SHM_MARKER]
            data = ring.read(desc["pos"], desc["nbytes"])
            ring.consume(desc["pos"], desc["nbytes"])
            return np.frombuffer(data, dtype=np.dtype(desc["dtype"])).reshape(
                desc["shape"]
            )
        return {k: decode_arrays(v, ring) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_arrays(v, ring) for v in value]
    if isinstance(value, tuple):
        return tuple(decode_arrays(v, ring) for v in value)
    return value


def array_digest(arr: np.ndarray) -> str:
    """Content address of one ndarray (dtype + shape + bytes)."""
    arr = np.ascontiguousarray(arr)
    digest = hashlib.sha256()
    digest.update(arr.dtype.str.encode())
    digest.update(str(arr.shape).encode())
    digest.update(memoryview(arr).cast("B"))
    return digest.hexdigest()[:32]
