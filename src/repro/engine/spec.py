"""Declarative job and sweep specifications.

A :class:`JobSpec` names a registered runner plus the kwargs/seed/scale
it should be called with; a :class:`SweepSpec` expands a (runners ×
parameter grid × repetitions) cartesian product into a job list.

Seeding contract: per-job seeds are derived **at expansion time** from
one base seed via :class:`numpy.random.SeedSequence` spawning
(:func:`spawn_seeds`), so a sweep's seeds depend only on the spec — not
on worker count or completion order. Serial and parallel executions of
the same spec therefore produce bit-identical results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np


def spawn_seeds(base_seed: Optional[int], n: int) -> List[Optional[int]]:
    """Derive ``n`` independent child seeds from ``base_seed``.

    ``None`` propagates (each runner keeps its built-in default seed);
    otherwise children come from ``SeedSequence(base_seed).spawn(n)`` so
    they are statistically independent and reproducible.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if base_seed is None:
        return [None] * n
    children = np.random.SeedSequence(int(base_seed)).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


def artifact_jobs(
    artifacts: Sequence[str],
    base_seed: Optional[int] = None,
    scale: Optional[float] = None,
    backend: Optional[str] = None,
) -> List["JobSpec"]:
    """The canonical job list for a plain artifact sweep.

    Both transports that accept "run these artifacts with this seed and
    scale" — the ``sweep`` CLI and the ``repro.serve`` HTTP API — build
    their specs here, so the same submission produces bit-identical
    jobs (same per-artifact seeds, same indices, same labels) no matter
    how it arrived.
    """
    seeds = spawn_seeds(base_seed, len(artifacts))
    return [
        JobSpec(
            runner=name,
            seed=seed,
            scale=scale,
            index=i,
            label=name,
            backend=backend,
        )
        for i, (name, seed) in enumerate(zip(artifacts, seeds))
    ]


@dataclass(frozen=True)
class JobSpec:
    """One dispatchable unit of work: a registered runner + arguments.

    ``seed`` and ``scale`` are kept out of ``kwargs`` so the pool can
    inject them only when the runner's signature accepts them (e.g.
    ``run_tail_power`` takes neither).

    ``backend`` names the compute backend the job's kernels run on
    (see :mod:`repro.kernels.backend`); ``None`` means the process
    default. Non-default backends change numeric results, so they are
    part of the cache key.
    """

    runner: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    scale: Optional[float] = None
    index: int = 0
    label: str = ""
    backend: Optional[str] = None

    @property
    def display(self) -> str:
        """Human-readable job name for progress lines and failures."""
        return self.label or f"{self.runner}#{self.index}"

    def span_attrs(self) -> Dict[str, Any]:
        """Identifying attributes for this job's trace spans."""
        attrs: Dict[str, Any] = {"runner": self.runner, "index": self.index}
        if self.seed is not None:
            attrs["seed"] = self.seed
        if self.scale is not None:
            attrs["scale"] = self.scale
        if self.backend is not None:
            attrs["backend"] = self.backend
        return attrs

    def replace(self, **changes: Any) -> "JobSpec":
        import dataclasses

        return dataclasses.replace(self, **changes)


@dataclass
class SweepSpec:
    """A (runners × grid × repetitions) scenario sweep.

    ``grid`` maps kwarg names to candidate value lists; :meth:`expand`
    takes the cartesian product in insertion order, layered on top of
    ``base_kwargs``, once per runner and repetition. Expansion order —
    runner, then grid point, then repetition — is deterministic, and
    per-job seeds are assigned positionally from ``base_seed``.

    ``max_failures`` is the sweep's failure budget: once more than
    that many jobs fail, the pool stops launching new ones and settles
    the rest as skipped (``None`` = unlimited tolerance, the default —
    every job always runs). ``backend`` stamps every expanded job with
    one compute backend (``None`` = process default).
    """

    runners: Sequence[str]
    base_kwargs: Dict[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    repetitions: int = 1
    base_seed: Optional[int] = None
    scale: Optional[float] = None
    max_failures: Optional[int] = None
    backend: Optional[str] = None

    def grid_points(self) -> List[Dict[str, Any]]:
        """The grid's cartesian product as kwarg overlay dicts."""
        if not self.grid:
            return [{}]
        keys = list(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[k] for k in keys))
        ]

    def expand(self) -> List[JobSpec]:
        """Materialise the sweep as a seeded, ordered job list."""
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        shells = []
        for runner in self.runners:
            for point in self.grid_points():
                for rep in range(self.repetitions):
                    kwargs = dict(self.base_kwargs)
                    kwargs.update(point)
                    shells.append((runner, kwargs, point, rep))
        seeds = spawn_seeds(self.base_seed, len(shells))
        jobs = []
        for index, ((runner, kwargs, point, rep), seed) in enumerate(
            zip(shells, seeds)
        ):
            suffix = ",".join(f"{k}={v}" for k, v in point.items())
            label = runner
            if suffix:
                label += f"[{suffix}]"
            if self.repetitions > 1:
                label += f"/r{rep}"
            jobs.append(
                JobSpec(
                    runner=runner,
                    kwargs=kwargs,
                    seed=seed,
                    scale=self.scale,
                    index=index,
                    label=label,
                    backend=self.backend,
                )
            )
        return jobs


@dataclass(frozen=True)
class BatchSpec:
    """One worker *lease*: consecutive jobs dispatched as a unit.

    The batch executor hands a whole lease to one persistent worker,
    which streams one result record per job back — amortising the
    process-dispatch cost over ``size`` jobs. A lease is a grouping,
    not a semantic unit: each member job keeps its own seed, cache
    key, failure record, and ledger events, and a job that crashes its
    worker fails alone (the lease's unstarted remainder is re-leased
    to another worker).
    """

    jobs: Sequence[JobSpec]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a lease must contain at least one job")

    @property
    def size(self) -> int:
        return len(self.jobs)

    @property
    def display(self) -> str:
        first, last = self.jobs[0], self.jobs[-1]
        if first is last:
            return f"lease[{first.display}]"
        return f"lease[{first.display}..{last.display}]"


def fuse_jobs(
    jobs: Sequence[JobSpec], lease_size: int
) -> List[BatchSpec]:
    """Chunk an ordered job list into :class:`BatchSpec` leases.

    Jobs stay in index order and every job lands in exactly one lease;
    the final lease may be short. ``lease_size=1`` degenerates to
    per-job dispatch (useful for differential testing).
    """
    lease_size = int(lease_size)
    if lease_size < 1:
        raise ValueError("lease_size must be >= 1")
    return [
        BatchSpec(jobs=tuple(jobs[start : start + lease_size]))
        for start in range(0, len(jobs), lease_size)
    ]
