"""Progress hooks: jobs done/failed/cached, wall-time, jobs/sec.

The pool calls :meth:`ProgressTracker.start` once and
:meth:`ProgressTracker.update` as each outcome lands (completion
order, not submission order). With a ``stream`` attached the tracker
prints one line per job plus a closing summary — that is what
``python -m repro sweep`` surfaces on stderr. With an
:class:`repro.obs.events.EventSink` attached the tracker also emits
the run ledger's ``sweep_start``/``sweep_end`` events (the job-level
events come from the pool and the cache).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import IO, Any, Optional

from repro.obs.events import EventSink


@dataclass
class ProgressSnapshot:
    """Point-in-time counters for a running sweep."""

    total: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0

    @property
    def done(self) -> int:
        return self.ok + self.failed + self.cached + self.skipped

    @property
    def jobs_per_sec(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.done / self.elapsed_s


class ProgressTracker:
    """Counts outcomes and (optionally) narrates them to a stream."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        events: Optional[EventSink] = None,
    ) -> None:
        self.stream = stream
        self.events = events
        self.total = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.skipped = 0
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None

    # -- pool interface --------------------------------------------------
    def start(self, total: int, **info: Any) -> None:
        self.total = total
        self._started_at = time.monotonic()
        self._finished_at = None
        if self.events is not None:
            self.events.emit("sweep_start", jobs=total, **info)

    def update(self, outcome) -> None:
        """Record one :class:`repro.engine.pool.JobOutcome`."""
        if outcome.status == "ok":
            self.ok += 1
        elif outcome.status == "cached":
            self.cached += 1
        elif outcome.status == "skipped":
            self.skipped += 1
        else:
            self.failed += 1
        if self.stream is not None:
            snap = self.snapshot()
            detail = f"{outcome.duration_s:.2f}s"
            if outcome.status == "cached":
                detail = "cache hit"
            elif outcome.status == "skipped":
                detail = "failure budget exhausted"
            elif outcome.status == "failed" and outcome.failure is not None:
                detail = outcome.failure.error
            print(
                f"[{snap.done}/{snap.total}] {outcome.spec.display}: "
                f"{outcome.status} ({detail})",
                file=self.stream,
                flush=True,
            )

    def finish(self) -> None:
        self._finished_at = time.monotonic()
        if self.events is not None:
            snap = self.snapshot()
            self.events.emit(
                "sweep_end",
                jobs=snap.total,
                ok=snap.ok,
                cached=snap.cached,
                failed=snap.failed,
                skipped=snap.skipped,
                elapsed_s=round(snap.elapsed_s, 6),
            )
        if self.stream is not None:
            print(self.summary(), file=self.stream, flush=True)

    # -- reporting -------------------------------------------------------
    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        # `is None`, not truthiness: time.monotonic() may legitimately
        # be 0.0 at finish time, and `or` would keep the clock running.
        end = (
            time.monotonic() if self._finished_at is None else self._finished_at
        )
        return end - self._started_at

    def snapshot(self) -> ProgressSnapshot:
        # A tracker driven without start() (finish-before-start, or
        # update()s alone) has total=0; report what was actually seen
        # rather than a nonsensical "3/0 jobs".
        done = self.ok + self.failed + self.cached + self.skipped
        return ProgressSnapshot(
            total=max(self.total, done),
            ok=self.ok,
            failed=self.failed,
            cached=self.cached,
            skipped=self.skipped,
            elapsed_s=self.elapsed_s(),
        )

    def summary(self) -> str:
        snap = self.snapshot()
        parts = [f"{snap.done}/{snap.total} jobs", f"{snap.ok} ok"]
        parts.append(f"{snap.cached} cached")
        parts.append(f"{snap.failed} failed")
        if snap.skipped:
            parts.append(f"{snap.skipped} skipped")
        return (
            f"{parts[0]}: {', '.join(parts[1:])} in {snap.elapsed_s:.2f}s "
            f"({snap.jobs_per_sec:.2f} jobs/s)"
        )
